//! Fingerprint-prefilter equivalence.
//!
//! The footprint-fingerprint fast path must be *semantically invisible*:
//! skipping a history segment whose fingerprint is disjoint from the
//! transaction's may never change a verdict, for any detector, any
//! random segmentation of the committed history, and any clock-advance
//! interleaving — including footprints wide enough to force Bloom-bit
//! collisions (false "may intersect" answers are allowed to cost a scan,
//! never a wrong answer). Beyond verdicts, the per-cell work must be
//! bit-identical: a sound prefilter only dismisses segments that index
//! no transaction-touched location, so `ops_scanned` with the filter on
//! equals `ops_scanned` with it off.

use std::sync::Arc;

use janus::detect::{
    CachedSequenceDetector, ConflictDetector, MapState, SequenceDetector, WriteSetDetector,
};
use janus::log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus::relational::{Scalar, Value};
use janus::train::{train, TrainConfig, TrainingRun};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
    Max(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
        K::Max(v) => OpKind::Scalar(ScalarOp::Max(v)),
    }
}

/// How many distinct locations the generators draw from. Wide enough
/// that multi-segment histories regularly touch locations that hash onto
/// colliding Bloom bits, narrow enough that genuine overlaps also occur.
const LOC_SPACE: u64 = 40;

fn access_strategy() -> impl Strategy<Value = (u64, K)> {
    (
        0u64..LOC_SPACE,
        prop_oneof![
            Just(K::Read),
            (-2i64..3).prop_map(K::Add),
            (0i64..3).prop_map(K::Write),
            (0i64..3).prop_map(K::Max),
        ],
    )
}

/// Executes accesses against an evolving state, producing a log with
/// real footprints. Locations share classes in groups of four, so the
/// class filter sees both overlap and disjointness.
fn mk_log(accesses: &[(u64, K)], state: &mut MapState) -> Vec<Op> {
    accesses
        .iter()
        .map(|&(loc, k)| {
            let v = state
                .0
                .get_mut(&LocId(loc))
                .expect("all locations preallocated");
            Op::execute(
                LocId(loc),
                ClassId::new(format!("g{}", loc / 4)),
                kind(k),
                v,
            )
            .0
        })
        .collect()
}

fn initial_state() -> MapState {
    let mut s = MapState::default();
    for loc in 0..LOC_SPACE {
        s.0.insert(LocId(loc), Value::int(0));
    }
    s
}

fn mk_segments(committed: &[Vec<(u64, K)>], state: &mut MapState) -> Vec<Arc<CommittedLog>> {
    committed
        .iter()
        .map(|accesses| Arc::new(CommittedLog::new(mk_log(accesses, state))))
        .collect()
}

/// Runs one incremental validation (deltas grouped by `cuts`) and
/// returns (verdict, ops_scanned, segments_skipped, segments_scanned)
/// attributable to this session alone.
fn session_verdict(
    det: &dyn ConflictDetector,
    entry: &MapState,
    txn: &CommittedLog,
    segments: &[Arc<CommittedLog>],
    cuts: &[bool],
) -> (bool, u64, u64, u64) {
    let ops0 = det.stats().ops_scanned();
    let skip0 = det.stats().segments_skipped();
    let scan0 = det.stats().segments_scanned();
    let mut session = det.begin_validation(entry, txn);
    let mut verdict = false;
    let mut batch_start = 0;
    for i in 0..=segments.len() {
        let at_cut = i == segments.len() || (i > 0 && cuts.get(i).copied().unwrap_or(false));
        if at_cut {
            verdict = session.extend(&HistoryWindow::new(&segments[batch_start..i]));
            batch_start = i;
        }
    }
    (
        verdict,
        det.stats().ops_scanned() - ops0,
        det.stats().segments_skipped() - skip0,
        det.stats().segments_scanned() - scan0,
    )
}

fn trained_cached_detector(prefilter: bool) -> CachedSequenceDetector<janus::train::FrozenCache> {
    let mut initial = initial_state();
    let mut mk = |accesses: &[(u64, K)]| mk_log(accesses, &mut initial);
    let task_logs = vec![
        mk(&[(0, K::Add(1)), (0, K::Add(-1))]),
        mk(&[(1, K::Write(2)), (1, K::Read)]),
        mk(&[(2, K::Max(1)), (2, K::Max(2))]),
        mk(&[(0, K::Read), (1, K::Add(1))]),
    ];
    let run = TrainingRun {
        initial: initial_state(),
        task_logs,
    };
    let (cache, _) = train(&[run], TrainConfig::default());
    CachedSequenceDetector::new(cache.freeze()).prefilter(prefilter)
}

/// Asserts filtered-vs-unfiltered equivalence for one detector pair and
/// returns the filtered run's (skipped, scanned) split.
fn assert_equivalent(
    label: &str,
    on: &dyn ConflictDetector,
    off: &dyn ConflictDetector,
    entry: &MapState,
    txn: &CommittedLog,
    segments: &[Arc<CommittedLog>],
    cuts: &[bool],
) -> (u64, u64) {
    let (v_on, ops_on, skip_on, scan_on) = session_verdict(on, entry, txn, segments, cuts);
    let (v_off, ops_off, skip_off, scan_off) = session_verdict(off, entry, txn, segments, cuts);
    prop_assert_eq!(v_on, v_off, "{}: prefilter changed the verdict", label);
    prop_assert_eq!(
        ops_on,
        ops_off,
        "{}: prefilter changed per-cell work (unsound skip)",
        label
    );
    prop_assert_eq!(skip_off, 0, "{}: disabled prefilter still skipped", label);
    // A conflicted session returns early from later extensions, so full
    // segment coverage is only guaranteed for conflict-free runs.
    if !v_off {
        prop_assert_eq!(
            scan_off,
            segments.len() as u64,
            "{}: unfiltered run must scan every segment",
            label
        );
        prop_assert_eq!(
            skip_on + scan_on,
            segments.len() as u64,
            "{}: every segment is either skipped or scanned",
            label
        );
    }
    (skip_on, scan_on)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three detectors: the fingerprint-filtered session and the
    /// unfiltered session render bit-identical verdicts and identical
    /// per-cell work, for every random log, segmentation and
    /// clock-advance interleaving.
    #[test]
    fn prefilter_is_semantically_invisible(
        txn_accesses in proptest::collection::vec(access_strategy(), 0..8),
        committed in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..6,
        ),
        cuts in proptest::collection::vec(any::<bool>(), 0..7),
    ) {
        let entry = initial_state();
        let mut evolving = initial_state();
        let segments = mk_segments(&committed, &mut evolving);
        let txn = CommittedLog::new(mk_log(&txn_accesses, &mut initial_state()));

        assert_equivalent(
            "write-set",
            &WriteSetDetector::new(),
            &WriteSetDetector::new().prefilter(false),
            &entry, &txn, &segments, &cuts,
        );
        assert_equivalent(
            "sequence",
            &SequenceDetector::new(),
            &SequenceDetector::new().prefilter(false),
            &entry, &txn, &segments, &cuts,
        );
        assert_equivalent(
            "cached",
            &trained_cached_detector(true),
            &trained_cached_detector(false),
            &entry, &txn, &segments, &cuts,
        );
    }

    /// Adversarial collision pressure: transaction and history each touch
    /// many distinct locations, so the 128-bit filters operate near
    /// saturation where false "may intersect" answers are the norm. The
    /// equivalence must hold regardless; the only legal failure mode of
    /// a collision is a wasted scan.
    #[test]
    fn prefilter_survives_collision_pressure(
        seed in 0u64..1000,
        committed in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 1..4),
            1..5,
        ),
    ) {
        // A wide-footprint transaction: ~90 distinct locations drawn
        // from a seed-offset range, disjoint from the generated history
        // locations except where the hash collides.
        let mut state = MapState::default();
        let wide: Vec<(u64, K)> = (0..90u64)
            .map(|i| (1_000 + seed * 97 + i, K::Add(1)))
            .collect();
        for &(loc, _) in &wide {
            state.0.insert(LocId(loc), Value::int(0));
        }
        let txn = CommittedLog::new(mk_log(&wide, &mut state));

        let entry = initial_state();
        let mut evolving = initial_state();
        let segments = mk_segments(&committed, &mut evolving);

        let (skip_on, scan_on) = assert_equivalent(
            "write-set/wide",
            &WriteSetDetector::new(),
            &WriteSetDetector::new().prefilter(false),
            &entry, &txn, &segments, &[],
        );
        prop_assert!(skip_on + scan_on <= segments.len() as u64);
    }
}

/// A transaction whose footprint saturates both Bloom filters degrades
/// the fast path to scan-everything — it may never skip a segment, and
/// verdicts stay correct.
#[test]
fn saturated_fingerprint_degrades_to_scan_everything() {
    // ~700 distinct locations, each with its own class: with two bits
    // per member the 128-bit filters are saturated with overwhelming
    // margin (the hash is deterministic, so this either always passes
    // or never does).
    let mut state = MapState::default();
    for loc in 0..700u64 {
        state.0.insert(LocId(loc), Value::int(0));
    }
    let txn_ops: Vec<Op> = (0..700u64)
        .map(|loc| {
            let v = state.0.get_mut(&LocId(loc)).unwrap();
            Op::execute(
                LocId(loc),
                ClassId::new(format!("s{loc}")),
                kind(K::Add(1)),
                v,
            )
            .0
        })
        .collect();
    let txn = CommittedLog::new(txn_ops);
    assert!(
        txn.fingerprint().is_saturated(),
        "700 distinct members must saturate the 128-bit filters"
    );

    // Foreign segments on locations the transaction never touches.
    let mut foreign_state = MapState::default();
    for loc in 10_000..10_020u64 {
        foreign_state.0.insert(LocId(loc), Value::int(0));
    }
    let segments: Vec<Arc<CommittedLog>> = (10_000..10_020u64)
        .map(|loc| {
            let accesses = [(loc, K::Add(1)), (loc, K::Add(-1))];
            Arc::new(CommittedLog::new(mk_log(&accesses, &mut foreign_state)))
        })
        .collect();

    let entry = initial_state();
    let det = SequenceDetector::new();
    let mut session = det.begin_validation(&entry, &txn);
    let conflict = session.extend(&HistoryWindow::new(&segments));
    assert!(!conflict, "foreign segments cannot conflict");
    assert_eq!(
        det.stats().segments_skipped(),
        0,
        "a saturated fingerprint must never skip"
    );
    assert_eq!(det.stats().segments_scanned(), segments.len() as u64);

    // The empty-footprint transaction is the opposite pole: it can skip
    // everything, because an empty log conflicts with nothing.
    let empty_txn = CommittedLog::new(Vec::new());
    assert!(empty_txn.fingerprint().is_empty());
    let det = SequenceDetector::new();
    let mut session = det.begin_validation(&entry, &empty_txn);
    assert!(!session.extend(&HistoryWindow::new(&segments)));
    assert_eq!(det.stats().segments_skipped(), segments.len() as u64);
    assert_eq!(det.stats().segments_scanned(), 0);
}
