//! Allocation guarantees of the frozen commutativity cache.
//!
//! Production conflict queries against a [`janus::train::FrozenCache`]
//! must be free of per-query heap traffic: the abstraction buffers are
//! inline, the compact NFA simulates in `u128` registers, the bucket
//! lookup borrows the caller's `ClassId`, and the statistics are atomic
//! counters plus a CAS-claimed signature table — no `Mutex`, no
//! `BTreeMap` insert, no `Vec` per query. The mutable training-time
//! cache, by contrast, allocates its abstraction vectors on every query;
//! the contrast assertion keeps this test honest if either path changes.
//!
//! Everything lives in one `#[test]` so concurrent tests in this binary
//! cannot pollute the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use janus::detect::{Relaxation, SequenceOracle};
use janus::log::{CellKey, ClassId, LocId, Op, OpKind, ScalarOp};
use janus::relational::Value;
use janus::train::{
    AbstractOp, CellShape, CommutativityCache, Condition, Element, Pattern, INLINE_OPS,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Balanced add/subtract operations on one location of class `work`.
fn mk_ops(n: usize) -> Vec<Op> {
    let mut v = Value::int(0);
    (0..n)
        .map(|i| {
            let delta = if i % 2 == 0 { 1 } else { -1 };
            Op::execute(
                LocId(0),
                ClassId::new("work"),
                OpKind::Scalar(ScalarOp::Add(delta)),
                &mut v,
            )
            .0
        })
        .collect()
}

fn add_pattern() -> Pattern {
    Pattern(vec![Element::Plus(vec![
        Element::Atom(AbstractOp::Add),
        Element::Atom(AbstractOp::Add),
    ])])
}

fn trained() -> CommutativityCache {
    let mut cache = CommutativityCache::new(true);
    cache.insert(
        ClassId::new("work"),
        CellShape::Whole,
        add_pattern(),
        add_pattern(),
        Condition::CommutesAlways,
    );
    cache
}

#[test]
fn frozen_cache_query_allocation_budget() {
    const QUERIES: u64 = 10_000;

    let frozen = trained().freeze();
    let ops = mk_ops(8);
    assert!(ops.len() <= INLINE_OPS);
    let txn: Vec<&Op> = ops.iter().collect();
    let work = ClassId::new("work");
    let unknown = ClassId::new("unknown");

    // Warm up lazy one-offs (thread-locals, the first stats slots).
    for _ in 0..16 {
        frozen.query(
            &work,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
        frozen.query(
            &unknown,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
    }

    // --- Hit path: zero allocations per query. ---
    let before = allocs();
    for _ in 0..QUERIES {
        let ans = frozen.query(
            &work,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
        assert_eq!(ans, Some(false));
    }
    let hit_path = allocs() - before;
    assert_eq!(
        hit_path, 0,
        "frozen hit path must not allocate (got {hit_path} allocations / {QUERIES} queries)"
    );

    // --- Miss path (unknown class): equally free. ---
    let before = allocs();
    for _ in 0..QUERIES {
        let ans = frozen.query(
            &unknown,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
        assert_eq!(ans, None);
    }
    let miss_path = allocs() - before;
    assert_eq!(
        miss_path, 0,
        "frozen miss path must not allocate (got {miss_path} allocations / {QUERIES} queries)"
    );

    // Totals survived the hot loops (the lock-free stats recorded every
    // query; unique signatures were claimed exactly once each).
    assert_eq!(frozen.stats().hits.load(Ordering::Relaxed), QUERIES + 16);
    assert_eq!(frozen.stats().misses.load(Ordering::Relaxed), QUERIES + 16);
    assert_eq!(frozen.stats().unique_counts(), (1, 1));

    // --- Contrast: the mutable training-time cache allocates per query
    // (abstraction vectors + stats map), which is exactly why production
    // freezes it. If this ever reaches zero, the frozen path is no
    // longer buying anything and the design note in DESIGN.md is stale.
    let mutable = trained();
    for _ in 0..16 {
        mutable.query(
            &work,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
    }
    let before = allocs();
    for _ in 0..100 {
        mutable.query(
            &work,
            None,
            &CellKey::Whole,
            &txn,
            &txn,
            Relaxation::strict(),
        );
    }
    let mutable_allocs = allocs() - before;
    assert!(
        mutable_allocs >= 100,
        "expected the mutable cache to allocate per query, got {mutable_allocs} for 100 queries"
    );

    // --- Spill path: transactions beyond INLINE_OPS may allocate their
    // abstraction buffers, but must still answer identically. ---
    let big_ops = mk_ops(INLINE_OPS + 6);
    let big: Vec<&Op> = big_ops.iter().collect();
    let ans = frozen.query(
        &work,
        None,
        &CellKey::Whole,
        &big,
        &big,
        Relaxation::strict(),
    );
    assert_eq!(ans, Some(false), "spill path must reach the same entries");
}
