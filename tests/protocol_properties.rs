//! Property-based tests of the protocol itself: random task sets, random
//! thread counts — the unordered outcome must equal some serial order,
//! and the ordered outcome must equal the sequential one (Theorem 4.1).

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::log::LocId;
use janus::relational::Value;
use proptest::prelude::*;

/// A miniature task language over two shared integer locations.
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(u8, i64),
    Write(u8, i64),
    ReadIntoNext(u8, u8), // next = read(a) * 2 + 1 written to b
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, -3i64..4).prop_map(|(l, d)| Step::Add(l, d)),
        (0u8..2, 0i64..5).prop_map(|(l, v)| Step::Write(l, v)),
        (0u8..2, 0u8..2).prop_map(|(a, b)| Step::ReadIntoNext(a, b)),
    ]
}

fn task_of(steps: Vec<Step>, locs: [LocId; 2]) -> Task {
    Task::new(move |tx: &mut TxView| {
        for &s in &steps {
            match s {
                Step::Add(l, d) => tx.add(locs[l as usize], d),
                Step::Write(l, v) => tx.write(locs[l as usize], v),
                Step::ReadIntoNext(a, b) => {
                    let v = tx.read_int(locs[a as usize]);
                    tx.write(locs[b as usize], v.wrapping_mul(2).wrapping_add(1));
                }
            }
        }
    })
}

/// Final (x, y) for a given execution order of the tasks.
fn serial_outcome(order: &[usize], tasks: &[Vec<Step>]) -> (i64, i64) {
    let mut xs = [0i64, 0];
    for &i in order {
        for &s in &tasks[i] {
            match s {
                Step::Add(l, d) => xs[l as usize] = xs[l as usize].wrapping_add(d),
                Step::Write(l, v) => xs[l as usize] = v,
                Step::ReadIntoNext(a, b) => {
                    xs[b as usize] = xs[a as usize].wrapping_mul(2).wrapping_add(1)
                }
            }
        }
    }
    (xs[0], xs[1])
}

fn all_permutation_outcomes(tasks: &[Vec<Step>]) -> Vec<(i64, i64)> {
    fn go(
        rest: &mut Vec<usize>,
        acc: &mut Vec<usize>,
        tasks: &[Vec<Step>],
        out: &mut Vec<(i64, i64)>,
    ) {
        if rest.is_empty() {
            out.push(serial_outcome(acc, tasks));
            return;
        }
        for k in 0..rest.len() {
            let i = rest.remove(k);
            acc.push(i);
            go(rest, acc, tasks, out);
            acc.pop();
            rest.insert(k, i);
        }
    }
    let mut out = Vec::new();
    go(
        &mut (0..tasks.len()).collect(),
        &mut Vec::new(),
        tasks,
        &mut out,
    );
    out
}

fn run_parallel(
    tasks: &[Vec<Step>],
    detector: Arc<dyn ConflictDetector>,
    threads: usize,
    ordered: bool,
) -> (i64, i64) {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(0));
    let y = store.alloc("y", Value::int(0));
    let built: Vec<Task> = tasks
        .iter()
        .map(|steps| task_of(steps.clone(), [x, y]))
        .collect();
    let outcome = Janus::new(detector)
        .threads(threads)
        .ordered(ordered)
        .run(store, built);
    (
        outcome.store.value(x).and_then(Value::as_int).expect("int"),
        outcome.store.value(y).and_then(Value::as_int).expect("int"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unordered_runs_land_on_a_serial_outcome(
        tasks in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 1..4),
            1..5
        ),
        threads in 1usize..4,
        use_sequence in any::<bool>(),
    ) {
        let detector: Arc<dyn ConflictDetector> = if use_sequence {
            Arc::new(SequenceDetector::new())
        } else {
            Arc::new(WriteSetDetector::new())
        };
        let got = run_parallel(&tasks, detector, threads, false);
        let valid = all_permutation_outcomes(&tasks);
        prop_assert!(
            valid.contains(&got),
            "{got:?} is not among the serial outcomes {valid:?} for {tasks:?}"
        );
    }

    #[test]
    fn ordered_runs_equal_the_sequential_outcome(
        tasks in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 1..4),
            1..5
        ),
        threads in 1usize..4,
        use_sequence in any::<bool>(),
    ) {
        let detector: Arc<dyn ConflictDetector> = if use_sequence {
            Arc::new(SequenceDetector::new())
        } else {
            Arc::new(WriteSetDetector::new())
        };
        let got = run_parallel(&tasks, detector, threads, true);
        let order: Vec<usize> = (0..tasks.len()).collect();
        prop_assert_eq!(got, serial_outcome(&order, &tasks));
    }
}
