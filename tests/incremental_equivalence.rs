//! Incremental-vs-full validation equivalence.
//!
//! The incremental pipeline must be *semantically invisible*: for any
//! transaction log, any committed history split into any segments, and
//! any interleaving of clock advances (i.e. any grouping of those
//! segments into delta extensions), the verdict must equal both
//!
//! * the one-shot zero-copy verdict over the full window, and
//! * the legacy flat verdict over the concatenated operation slice,
//!
//! for the write-set, online-sequence and cached-sequence detectors.
//! This is the safety net behind the zero-copy commit pipeline: segments
//! are decomposed once, windows share them, and mid-validation clock
//! advances re-validate only deltas — none of which may change what is
//! (or is not) a conflict.

use std::sync::Arc;

use janus::detect::{
    CachedSequenceDetector, ConflictDetector, MapState, SequenceDetector, WriteSetDetector,
};
use janus::log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus::relational::{Scalar, Value};
use janus::train::{train, TrainConfig, TrainingRun};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
    Max(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
        K::Max(v) => OpKind::Scalar(ScalarOp::Max(v)),
    }
}

/// One random logged access: a location choice plus an operation kind.
fn access_strategy() -> impl Strategy<Value = (u64, K)> {
    (
        0u64..3,
        prop_oneof![
            Just(K::Read),
            (-2i64..3).prop_map(K::Add),
            (0i64..3).prop_map(K::Write),
            (0i64..3).prop_map(K::Max),
        ],
    )
}

/// Executes a sequence of accesses against an evolving per-location
/// state, producing a log with real footprints and results.
fn mk_log(accesses: &[(u64, K)], state: &mut MapState) -> Vec<Op> {
    accesses
        .iter()
        .map(|&(loc, k)| {
            let v = state
                .0
                .get_mut(&LocId(loc))
                .expect("all locations preallocated");
            Op::execute(LocId(loc), ClassId::new("x"), kind(k), v).0
        })
        .collect()
}

fn initial_state() -> MapState {
    let mut s = MapState::default();
    for loc in 0..3 {
        s.0.insert(LocId(loc), Value::int(0));
    }
    s
}

/// The three verdicts that must agree:
/// flat (legacy slice), one-shot window, and incremental extensions
/// grouped by `cuts` (a new delta starts before segment `i` iff
/// `cuts[i]` — the random clock-advance interleaving).
fn verdicts(
    det: &dyn ConflictDetector,
    entry: &MapState,
    txn_ops: &[Op],
    segments: &[Arc<CommittedLog>],
    cuts: &[bool],
) -> (bool, bool, bool) {
    let flat_committed: Vec<Op> = segments
        .iter()
        .flat_map(|s| s.ops().iter().cloned())
        .collect();
    let flat = det.detect_ops(entry, txn_ops, &flat_committed);

    let txn = CommittedLog::new(txn_ops.to_vec());
    let one_shot = det.detect(entry, &txn, HistoryWindow::new(segments));

    let mut session = det.begin_validation(entry, &txn);
    let mut incremental = false;
    let mut batch_start = 0;
    for i in 0..=segments.len() {
        let at_cut = i == segments.len() || (i > 0 && cuts.get(i).copied().unwrap_or(false));
        if at_cut {
            incremental = session.extend(&HistoryWindow::new(&segments[batch_start..i]));
            batch_start = i;
        }
    }
    // A trailing empty extension must never change the verdict.
    assert_eq!(incremental, session.extend(&HistoryWindow::empty()));

    (flat, one_shot, incremental)
}

fn mk_segments(committed: &[Vec<(u64, K)>], state: &mut MapState) -> Vec<Arc<CommittedLog>> {
    committed
        .iter()
        .map(|accesses| Arc::new(CommittedLog::new(mk_log(accesses, state))))
        .collect()
}

fn trained_cached_detector() -> CachedSequenceDetector<janus::train::CommutativityCache> {
    let mut initial = initial_state();
    let mut mk = |accesses: &[(u64, K)]| mk_log(accesses, &mut initial);
    let task_logs = vec![
        mk(&[(0, K::Add(1)), (0, K::Add(-1))]),
        mk(&[(1, K::Write(2)), (1, K::Read)]),
        mk(&[(2, K::Max(1)), (2, K::Max(2))]),
        mk(&[(0, K::Read), (1, K::Add(1))]),
    ];
    let run = TrainingRun {
        initial: initial_state(),
        task_logs,
    };
    let (cache, _) = train(&[run], TrainConfig::default());
    CachedSequenceDetector::new(cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write-set and online-sequence detection: flat, one-shot-window and
    /// incremental validation all agree, for every random log and every
    /// random clock-advance interleaving.
    #[test]
    fn incremental_matches_full_for_both_detectors(
        txn_accesses in proptest::collection::vec(access_strategy(), 0..8),
        committed in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..5,
        ),
        cuts in proptest::collection::vec(any::<bool>(), 0..6),
    ) {
        let entry = initial_state();
        let mut evolving = initial_state();
        let segments = mk_segments(&committed, &mut evolving);
        let txn_ops = mk_log(&txn_accesses, &mut initial_state());

        let ws = WriteSetDetector::new();
        let (flat, one_shot, incremental) =
            verdicts(&ws, &entry, &txn_ops, &segments, &cuts);
        prop_assert_eq!(flat, one_shot, "write-set: flat vs one-shot window");
        prop_assert_eq!(flat, incremental, "write-set: flat vs incremental");

        let seq = SequenceDetector::new();
        let (flat, one_shot, incremental) =
            verdicts(&seq, &entry, &txn_ops, &segments, &cuts);
        prop_assert_eq!(flat, one_shot, "sequence: flat vs one-shot window");
        prop_assert_eq!(flat, incremental, "sequence: flat vs incremental");
    }

    /// The cached production detector agrees with itself across the three
    /// validation shapes as well (its verdict is per-cell, so hit/miss
    /// bookkeeping may differ but verdicts may not).
    #[test]
    fn incremental_matches_full_for_cached_detector(
        txn_accesses in proptest::collection::vec(access_strategy(), 0..8),
        committed in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..5,
        ),
        cuts in proptest::collection::vec(any::<bool>(), 0..6),
    ) {
        let entry = initial_state();
        let mut evolving = initial_state();
        let segments = mk_segments(&committed, &mut evolving);
        let txn_ops = mk_log(&txn_accesses, &mut initial_state());

        let cached = trained_cached_detector();
        let (flat, one_shot, incremental) =
            verdicts(&cached, &entry, &txn_ops, &segments, &cuts);
        prop_assert_eq!(flat, one_shot, "cached: flat vs one-shot window");
        prop_assert_eq!(flat, incremental, "cached: flat vs incremental");
    }

    /// Segmentation invariance: how the committed ops are carved into
    /// segments (commit boundaries) does not change the verdict either —
    /// one big segment equals many small ones.
    #[test]
    fn segment_boundaries_are_invisible(
        txn_accesses in proptest::collection::vec(access_strategy(), 0..8),
        committed_flat in proptest::collection::vec(access_strategy(), 0..10),
        cuts in proptest::collection::vec(any::<bool>(), 0..10),
    ) {
        let entry = initial_state();
        let txn_ops = mk_log(&txn_accesses, &mut initial_state());
        let txn = CommittedLog::new(txn_ops.clone());

        // One big segment.
        let mut evolving = initial_state();
        let whole = [Arc::new(CommittedLog::new(mk_log(&committed_flat, &mut evolving)))];

        // The same ops carved at every cut point.
        let mut evolving = initial_state();
        let mut pieces: Vec<Vec<(u64, K)>> = vec![Vec::new()];
        for (i, &a) in committed_flat.iter().enumerate() {
            if cuts.get(i).copied().unwrap_or(false) && !pieces.last().unwrap().is_empty() {
                pieces.push(Vec::new());
            }
            pieces.last_mut().unwrap().push(a);
        }
        let carved = mk_segments(&pieces, &mut evolving);

        for det in [
            &WriteSetDetector::new() as &dyn ConflictDetector,
            &SequenceDetector::new(),
        ] {
            let v_whole = det.detect(&entry, &txn, HistoryWindow::new(&whole));
            let v_carved = det.detect(&entry, &txn, HistoryWindow::new(&carved));
            prop_assert_eq!(v_whole, v_carved, "{} verdict changed with segmentation", det.name());
        }
    }
}
