//! Block-pipeline equivalence: streaming K batches through the
//! [`janus::block::BlockExecutor`] is observably the same computation as
//! one flat run of their concatenation.
//!
//! * Commutative batches: pipelined `execute_blocks` commits every
//!   transaction exactly once and lands on the sequential sums, across
//!   shard counts × detectors × schedule policies × pipeline modes.
//! * Ordered mode: order-sensitive (non-commuting) bodies split across
//!   batches reproduce the flat sequential execution bit for bit — the
//!   cross-batch gate preserves batch order, and commit order within a
//!   batch follows submission order.

use std::sync::Arc;

use janus::block::{BlockExecutor, BlockStatus, PipelineMode};
use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::relational::Value;
use janus::sched::{Backoff, SchedulePolicy, WorkSteal};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 2] = [1, 8];
const MODES: [PipelineMode; 2] = [PipelineMode::Barrier, PipelineMode::Pipelined];

/// One add-only transaction: bump location `loc` by `delta`.
#[derive(Debug, Clone, Copy)]
struct AddTask {
    loc: usize,
    delta: i64,
}

/// Skewed generator: ~60% of tasks hit location 0 (the hotspot), so
/// consecutive batches genuinely overlap in footprint and the
/// cross-batch gate engages.
fn add_task_strategy(cold: usize) -> impl Strategy<Value = AddTask> {
    (0u32..100, 0usize..cold.max(1), -5i64..6).prop_map(move |(roll, c, delta)| AddTask {
        loc: if roll < 60 { 0 } else { 1 + c },
        delta,
    })
}

/// A stream of 1..=4 batches with 1..=6 transactions each.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<AddTask>>> {
    proptest::collection::vec(proptest::collection::vec(add_task_strategy(3), 1..7), 1..5)
}

fn alloc_locs(store: &mut Store, n: usize) -> Vec<janus::log::LocId> {
    (0..n)
        .map(|i| store.alloc(format!("cls{i}").as_str(), Value::int(0)))
        .collect()
}

/// Read-modify-write form: real conflicts under write-set detection.
fn build_rmw(tasks: &[AddTask], locs: &[janus::log::LocId]) -> Vec<Task> {
    tasks
        .iter()
        .map(|&t| {
            let loc = locs[t.loc];
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(loc);
                tx.write(loc, v + t.delta);
            })
        })
        .collect()
}

fn final_sums(outcome_store: &Store, n_locs: usize) -> Vec<i64> {
    let mut probe = Store::new();
    (0..n_locs)
        .map(|i| {
            let loc = probe.alloc(format!("cls{i}").as_str(), Value::int(0));
            outcome_store
                .value(loc)
                .and_then(Value::as_int)
                .expect("int")
        })
        .collect()
}

fn schedules() -> Vec<(&'static str, Arc<dyn SchedulePolicy>)> {
    vec![
        ("fifo", Arc::new(janus::sched::Fifo)),
        ("backoff", Arc::new(Backoff::default())),
        ("steal", Arc::new(WorkSteal::new(5))),
        ("steal-off", Arc::new(WorkSteal::new(5).without_stealing())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pipelined `execute_blocks` over K batches equals one flat
    /// sequential run of the concatenation: same sums, every
    /// transaction committed exactly once — for every combination of
    /// shard count, detector, schedule policy, and pipeline mode.
    #[test]
    fn pipelined_blocks_equal_the_flat_sequential_run(
        batches in batches_strategy(),
        threads in 1usize..4,
    ) {
        let n_locs = 4;
        let total: usize = batches.iter().map(Vec::len).sum();
        let mut expected = vec![0i64; n_locs];
        for t in batches.iter().flatten() {
            expected[t.loc] += t.delta;
        }
        let detectors: [(&str, Arc<dyn ConflictDetector>); 2] = [
            ("sequence", Arc::new(SequenceDetector::new())),
            ("write-set", Arc::new(WriteSetDetector::new())),
        ];
        for (det_label, det) in &detectors {
            for (sched_label, sched) in schedules() {
                for shards in SHARD_COUNTS {
                    for mode in MODES {
                        let mut store = Store::new();
                        let locs = alloc_locs(&mut store, n_locs);
                        let janus = Janus::new(Arc::clone(det))
                            .threads(threads)
                            .shards(shards)
                            .schedule(Arc::clone(&sched));
                        let mut exec = BlockExecutor::new(janus, store, mode);
                        let blocks: Vec<Vec<Task>> = batches
                            .iter()
                            .map(|b| build_rmw(b, &locs))
                            .collect();
                        let outcomes = exec.execute_blocks(blocks);
                        let ctx = format!(
                            "{det_label}/{sched_label} @ {shards} shards, \
                             {threads} threads, {mode:?}"
                        );
                        prop_assert_eq!(outcomes.len(), batches.len(), "{}", &ctx);
                        prop_assert!(
                            outcomes.iter().all(|o| o.status == BlockStatus::Committed),
                            "{}: every block commits", &ctx
                        );
                        let committed: u64 = outcomes.iter().map(|o| o.commits()).sum();
                        prop_assert_eq!(
                            committed, total as u64,
                            "{}: each transaction commits exactly once", &ctx
                        );
                        let (final_store, _, tail) = exec.finish();
                        prop_assert!(tail.is_empty());
                        prop_assert_eq!(
                            &final_sums(&final_store, n_locs),
                            &expected,
                            "{}", &ctx
                        );
                    }
                }
            }
        }
    }

    /// Ordered mode preserves cross-batch order exactly: splitting an
    /// order-sensitive chain (`x = x*3 + d`) into batches at arbitrary
    /// points changes nothing — the pipelined stream still equals the
    /// flat sequential execution.
    #[test]
    fn ordered_mode_preserves_cross_batch_order_exactly(
        deltas in proptest::collection::vec(1i64..7, 1..12),
        cut_roll in 0usize..1000,
        threads in 1usize..4,
    ) {
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        let build = |deltas: &[i64]| -> Vec<Task> {
            deltas
                .iter()
                .map(|&d| {
                    Task::new(move |tx: &mut TxView| {
                        let v = tx.read_int(x);
                        tx.write(x, v.wrapping_mul(3).wrapping_add(d));
                    })
                })
                .collect()
        };
        let (seq_store, _) = Janus::run_sequential(store.clone(), &build(&deltas));
        let expected = seq_store.value(x).and_then(Value::as_int).expect("int");

        // Deterministic arbitrary split of the chain into 1..=3 batches.
        let cut1 = cut_roll % (deltas.len() + 1);
        let cut2 = (cut_roll / 31) % (deltas.len() + 1);
        let (lo, hi) = (cut1.min(cut2), cut1.max(cut2));
        let batches = [&deltas[..lo], &deltas[lo..hi], &deltas[hi..]];

        for mode in MODES {
            for shards in SHARD_COUNTS {
                let janus = Janus::new(Arc::new(SequenceDetector::new()))
                    .threads(threads)
                    .shards(shards)
                    .ordered(true);
                let mut exec = BlockExecutor::new(janus, store.clone(), mode);
                let outcomes = exec.execute_blocks(
                    batches
                        .iter()
                        .filter(|b| !b.is_empty())
                        .map(|b| build(b))
                        .collect(),
                );
                let committed: u64 = outcomes.iter().map(|o| o.commits()).sum();
                prop_assert_eq!(committed, deltas.len() as u64);
                let (final_store, _, _) = exec.finish();
                let got = final_store.value(x).and_then(Value::as_int).expect("int");
                prop_assert_eq!(
                    got, expected,
                    "ordered {:?} @ {} shards, {} threads, cuts ({}, {})",
                    mode, shards, threads, lo, hi
                );
            }
        }
    }
}

/// Stealing composes with gate parking: an ordered pipelined stream
/// over one hot location makes block N+1's workers park on block N's
/// tracker while the steal source is live. A parked worker's queue is
/// published by construction, and the chain must still reproduce the
/// flat sequential result with more workers than queued tasks per lane.
#[test]
fn gate_parked_blocks_with_stealing_match_sequential() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(1));
    let build = |deltas: &[i64]| -> Vec<Task> {
        deltas
            .iter()
            .map(|&d| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(x);
                    tx.write(x, v.wrapping_mul(3).wrapping_add(d));
                })
            })
            .collect()
    };
    let deltas: Vec<i64> = (1..=18).collect();
    let (seq_store, _) = Janus::run_sequential(store.clone(), &build(&deltas));
    let expected = seq_store.value(x).and_then(Value::as_int).expect("int");
    let batches: Vec<&[i64]> = deltas.chunks(6).collect();
    // 4 workers over 6-task blocks: lanes hold 1-2 tasks each, so any
    // worker that drains its lane early must steal or park, and the
    // successor block's workers park on the ordered cross-batch gate.
    let janus = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(4)
        .ordered(true)
        .schedule(Arc::new(WorkSteal::new(9)));
    let mut exec = BlockExecutor::new(janus, store, PipelineMode::Pipelined);
    let outcomes = exec.execute_blocks(batches.iter().map(|b| build(b)).collect());
    assert!(outcomes.iter().all(|o| o.status == BlockStatus::Committed));
    let committed: u64 = outcomes.iter().map(|o| o.commits()).sum();
    assert_eq!(committed, deltas.len() as u64);
    let (final_store, _, _) = exec.finish();
    assert_eq!(final_store.value(x).and_then(Value::as_int), Some(expected));
}

/// The pipelined stream reports overlap only when batches can actually
/// overlap: a stream of disjoint-footprint batches lets successor
/// commits pass the gate while the predecessor is still running.
#[test]
fn disjoint_batches_commit_through_the_open_gate() {
    let mut store = Store::new();
    let locs = alloc_locs(&mut store, 8);
    let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(2);
    let mut exec = BlockExecutor::new(janus, store, PipelineMode::Pipelined);
    let blocks: Vec<Vec<Task>> = locs
        .chunks(2)
        .map(|pair| {
            pair.iter()
                .map(|&l| {
                    Task::new(move |tx: &mut TxView| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        tx.add(l, 1);
                    })
                })
                .collect()
        })
        .collect();
    let outcomes = exec.execute_blocks(blocks);
    assert!(outcomes.iter().all(|o| o.status == BlockStatus::Committed));
    let (final_store, _, _) = exec.finish();
    assert_eq!(final_sums(&final_store, 8), vec![1i64; 8]);
}
