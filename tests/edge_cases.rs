//! Edge cases of the public API: empty task lists, single tasks,
//! degenerate inputs, thread counts exceeding tasks, GC under ordered
//! contention.

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{SequenceDetector, WriteSetDetector};
use janus::relational::Value;
use janus::workloads::{all_workloads, InputSpec};

#[test]
fn empty_task_list() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(7));
    let outcome = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(4)
        .run(store, Vec::new());
    assert_eq!(outcome.stats.commits, 0);
    assert_eq!(outcome.stats.retries, 0);
    assert_eq!(outcome.store.value(x), Some(&Value::int(7)));
}

#[test]
fn single_task_many_threads() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(0));
    let tasks = vec![Task::new(move |tx: &mut TxView| tx.add(x, 1))];
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(8)
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 1);
    assert_eq!(outcome.store.value(x), Some(&Value::int(1)));
}

#[test]
fn more_threads_than_tasks_ordered() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(0));
    let tasks: Vec<Task> = (0..3)
        .map(|i| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(x);
                tx.write(x, v * 10 + i);
            })
        })
        .collect();
    let outcome = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(8)
        .ordered(true)
        .run(store, tasks);
    assert_eq!(outcome.store.value(x), Some(&Value::int(12)));
}

#[test]
fn task_with_no_shared_accesses() {
    let mut store = Store::new();
    let _x = store.alloc("x", Value::int(0));
    let tasks: Vec<Task> = (0..4)
        .map(|_| Task::new(|_tx: &mut TxView| { /* pure compute */ }))
        .collect();
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(2)
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 4);
    assert_eq!(outcome.stats.retries, 0, "empty logs never conflict");
}

#[test]
fn workloads_accept_tiny_inputs() {
    for w in all_workloads() {
        for scale in [1usize, 2] {
            let scenario = w.build(&InputSpec::new(scale, 1, 5));
            assert_eq!(scenario.tasks.len(), scale, "{}", w.name());
            let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
            assert!(
                (scenario.check)(&final_store),
                "{} @ scale {scale}",
                w.name()
            );
        }
    }
}

#[test]
fn gc_with_ordered_contention() {
    // Ordered mode keeps early begins alive while successors wait; GC
    // must respect the horizon and the run must stay correct.
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(1));
    let tasks: Vec<Task> = (1..=20)
        .map(|i| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(x);
                tx.write(x, v.wrapping_mul(3).wrapping_add(i));
            })
        })
        .collect();
    let seq_tasks: Vec<Task> = (1..=20)
        .map(|i| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(x);
                tx.write(x, v.wrapping_mul(3).wrapping_add(i));
            })
        })
        .collect();
    let (seq_store, _) = Janus::run_sequential(store.clone(), &seq_tasks);
    let outcome = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(4)
        .ordered(true)
        .gc_history(true)
        .run(store, tasks);
    assert_eq!(outcome.store.value(x), seq_store.value(x));
}

#[test]
fn repeated_runs_share_one_detector() {
    // A detector is reusable across runs; stats accumulate.
    let detector = Arc::new(SequenceDetector::new());
    for round in 0..3 {
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(0));
        let tasks: Vec<Task> = (0..5)
            .map(|_| Task::new(move |tx: &mut TxView| tx.add(x, 1)))
            .collect();
        let outcome = Janus::new(Arc::clone(&detector) as Arc<_>)
            .threads(2)
            .run(store, tasks);
        assert_eq!(
            outcome.store.value(x),
            Some(&Value::int(5)),
            "round {round}"
        );
    }
}
