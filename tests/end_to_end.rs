//! End-to-end integration: the full train → parallel-run pipeline over
//! every evaluation workload, under every detector.

use std::sync::Arc;

use janus::core::Janus;
use janus::detect::{CachedSequenceDetector, ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::train::{train, TrainConfig};
use janus::workloads::{all_workloads, training_runs, InputSpec};

/// Every workload, trained and run in parallel, ends in a valid state
/// under every detector configuration.
#[test]
fn all_workloads_all_detectors_valid_final_state() {
    for workload in all_workloads() {
        let w = workload.as_ref();
        let runs = training_runs(w);
        let input = InputSpec::new(12, 4, 4242);

        let detectors: Vec<(String, Arc<dyn ConflictDetector>)> = vec![
            ("write-set".into(), Arc::new(WriteSetDetector::new())),
            (
                "sequence-online".into(),
                Arc::new(SequenceDetector::with_relaxations(w.relaxations())),
            ),
            (
                "cached+abs".into(),
                Arc::new(CachedSequenceDetector::with_relaxations(
                    train(&runs, TrainConfig::default()).0,
                    w.relaxations(),
                )),
            ),
            (
                "cached-noabs".into(),
                Arc::new(CachedSequenceDetector::with_relaxations(
                    train(
                        &runs,
                        TrainConfig {
                            use_abstraction: false,
                            verify_symbolic: false,
                        },
                    )
                    .0,
                    w.relaxations(),
                )),
            ),
        ];
        for (label, detector) in detectors {
            let scenario = w.build(&input);
            let outcome = Janus::new(detector)
                .threads(3)
                .ordered(w.ordered())
                .run(scenario.store, scenario.tasks);
            assert!(
                (scenario.check)(&outcome.store),
                "{} under {label}: invalid final state",
                w.name()
            );
            assert_eq!(outcome.stats.commits, 12, "{} under {label}", w.name());
        }
    }
}

/// Training reports make sense: pairs are mined, entries added, and the
/// summary-based conditions never disagree with the online oracle on the
/// training data.
#[test]
fn training_reports_are_consistent() {
    for workload in all_workloads() {
        let w = workload.as_ref();
        let runs = training_runs(w);
        let (cache, report) = train(&runs, TrainConfig::default());
        assert!(report.pairs_mined > 0, "{} mined nothing", w.name());
        assert!(report.entries_added > 0, "{} learned nothing", w.name());
        assert_eq!(
            report.pairs_rejected,
            0,
            "{}: condition evaluation disagreed with the online check",
            w.name()
        );
        assert!(!cache.is_empty());
    }
}

/// The cached detector with a trained cache produces no more retries than
/// the write-set baseline on the same workload and inputs.
#[test]
fn cached_detection_never_aborts_more_than_write_set() {
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = InputSpec::new(14, 4, 99);

        let scenario = w.build(&input);
        let ws = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(4)
            .ordered(w.ordered())
            .run(scenario.store, scenario.tasks);

        let runs = training_runs(w);
        let scenario = w.build(&input);
        let cached = Janus::new(Arc::new(CachedSequenceDetector::with_relaxations(
            train(&runs, TrainConfig::default()).0,
            w.relaxations(),
        )))
        .threads(4)
        .ordered(w.ordered())
        .run(scenario.store, scenario.tasks);

        assert!(
            cached.stats.retries <= ws.stats.retries,
            "{}: cached {} > write-set {}",
            w.name(),
            cached.stats.retries,
            ws.stats.retries
        );
    }
}

/// Unordered runs of commutative workloads still reach the same final
/// state as the sequential run (their tasks commute).
#[test]
fn commutative_workloads_are_deterministic_even_unordered() {
    for name in ["jfilesync", "jgrapht-2", "pmd"] {
        let w = janus::workloads::workload_by_name(name).expect("workload exists");
        let input = InputSpec::new(10, 3, 31);
        let seq = w.build(&input);
        let (seq_store, _) = Janus::run_sequential(seq.store, &seq.tasks);

        let par = w.build(&input);
        let outcome = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4)
        .run(par.store, par.tasks);

        // Compare the *semantic* payload via the workload check plus the
        // reduction counters (scratch cells may legitimately differ).
        assert!((w.build(&input).check)(&outcome.store), "{name}");
        assert!((w.build(&input).check)(&seq_store), "{name}");
    }
}
