//! The §2 pattern catalog, end to end: each commutative pattern is
//! trained, then run under the cached detector with forced transaction
//! overlap, and must commit with zero retries — while a genuinely
//! non-commutative variant must still be caught.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use janus::adt::{Cell, Counter, MaxRegister};
use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{CachedSequenceDetector, RelaxationSpec};
use janus::relational::Scalar;
use janus::train::{train, TrainConfig};

/// A one-shot start gate: blocks until every task has begun at least
/// once, then stays open. Unlike a `Barrier`, *retried* executions pass
/// straight through (a retried transaction re-runs its body, and a
/// reusable barrier would deadlock waiting for arrivals that never
/// come).
struct StartGate {
    arrived: Vec<AtomicBool>,
    count: AtomicUsize,
}

impl StartGate {
    fn new(n: usize) -> Self {
        StartGate {
            arrived: (0..n).map(|_| AtomicBool::new(false)).collect(),
            count: AtomicUsize::new(0),
        }
    }

    fn wait(&self, i: usize) {
        if !self.arrived[i].swap(true, Ordering::SeqCst) {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
        while self.count.load(Ordering::SeqCst) < self.arrived.len() {
            std::thread::yield_now();
        }
    }
}

/// Builds tasks that all start together (the gate pins the overlap, so
/// conflict queries really happen even on one core).
fn overlapping_tasks(
    n: usize,
    body: impl Fn(usize, &mut TxView) + Send + Sync + 'static,
) -> Vec<Task> {
    let body = Arc::new(body);
    let gate = Arc::new(StartGate::new(n));
    (0..n)
        .map(|i| {
            let body = Arc::clone(&body);
            let gate = Arc::clone(&gate);
            Task::new(move |tx: &mut TxView| {
                gate.wait(i);
                body(i, tx);
            })
        })
        .collect()
}

/// Trains on a small sequential run of the same shape, then runs the
/// overlapping tasks under the cached detector.
fn train_and_run(
    store: Store,
    train_tasks: Vec<Task>,
    run_tasks: Vec<Task>,
    relax: RelaxationSpec,
) -> (janus::core::Outcome, u64) {
    let (_, training_run) = Janus::run_sequential(store.clone(), &train_tasks);
    let (cache, _) = train(&[training_run], TrainConfig::default());
    let detector = Arc::new(CachedSequenceDetector::with_relaxations(cache, relax));
    let outcome = Janus::new(detector.clone())
        .threads(4)
        .run(store, run_tasks);
    let retries = outcome.stats.retries;
    (outcome, retries)
}

#[test]
fn identity_pattern_commits_without_retries() {
    let mut store = Store::new();
    let work = Counter::alloc(&mut store, "work", 0);
    let body = move |i: usize, tx: &mut TxView| {
        let w = i as i64 + 1;
        work.add(tx, w);
        janus::workloads::local_work(20_000);
        work.sub(tx, w);
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (outcome, retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new(),
    );
    assert_eq!(retries, 0, "identity transactions must not abort");
    assert_eq!(work.value(&outcome.store), 0);
}

#[test]
fn reduction_pattern_commits_without_retries() {
    let mut store = Store::new();
    let total = Counter::alloc(&mut store, "total", 0);
    let body = move |i: usize, tx: &mut TxView| {
        total.add(tx, i as i64 + 1);
        janus::workloads::local_work(20_000);
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (outcome, retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new(),
    );
    assert_eq!(retries, 0, "reductions commute");
    assert_eq!(total.value(&outcome.store), 1 + 2 + 3 + 4);
}

#[test]
fn shared_as_local_pattern_with_inference() {
    let mut store = Store::new();
    let scratch = Cell::alloc(&mut store, "ctx.scratch", 0i64);
    let body = move |i: usize, tx: &mut TxView| {
        scratch.set(tx, i as i64);
        janus::workloads::local_work(20_000);
        let v = scratch.get(tx); // covered read
        assert_eq!(v, Scalar::Int(i as i64), "reads own write");
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (_, retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new().with_ooo_inference(),
    );
    assert_eq!(retries, 0, "covered-read WAW chains tolerated out of order");
}

#[test]
fn equal_writes_pattern_commits_without_retries() {
    let mut store = Store::new();
    let flag = Cell::alloc(&mut store, "flag", 0i64);
    let body = move |_i: usize, tx: &mut TxView| {
        flag.set(tx, 7i64); // everyone writes the same value
        janus::workloads::local_work(20_000);
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (outcome, retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new(),
    );
    assert_eq!(retries, 0, "equal writes commute");
    assert_eq!(flag.value(&outcome.store), Scalar::Int(7));
}

#[test]
fn max_register_pattern_commits_without_retries() {
    let mut store = Store::new();
    let max = MaxRegister::alloc(&mut store, "maxColor", 0);
    let body = move |i: usize, tx: &mut TxView| {
        max.bump(tx, (i as i64 * 13) % 17);
        janus::workloads::local_work(20_000);
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (outcome, retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new(),
    );
    assert_eq!(retries, 0, "blind max updates commute");
    assert_eq!(max.value(&outcome.store), 13);
}

#[test]
fn unequal_writes_are_still_caught() {
    // The negative control: same shape as equal-writes but with
    // different values — the cached detector must serialize them and the
    // final value must be one of the written values.
    let mut store = Store::new();
    let cell = Cell::alloc(&mut store, "cell", 0i64);
    let body = move |i: usize, tx: &mut TxView| {
        cell.set(tx, i as i64 + 1);
        janus::workloads::local_work(20_000);
    };
    let train_tasks: Vec<Task> = (0..3)
        .map(|i| Task::new(move |tx: &mut TxView| body(i, tx)))
        .collect();
    let (outcome, _retries) = train_and_run(
        store,
        train_tasks,
        overlapping_tasks(4, body),
        RelaxationSpec::new(),
    );
    let v = cell.value(&outcome.store);
    assert!(matches!(v, Scalar::Int(1..=4)), "some write won: {v:?}");
    assert_eq!(
        outcome.stats.commits, 4,
        "all transactions eventually commit"
    );
}
