//! Lifecycle-trace consistency.
//!
//! The observability layer must be a *faithful witness*: for any random
//! task mix, thread count and detector, the recorded lifecycle trace must
//! tell exactly the same story as the runtime's own counters. Every
//! `begin` reaches exactly one terminal `commit`/`abort` (checked by
//! [`Trace::check_well_formed`]), commit events equal `RunStats::commits`,
//! abort events equal `RunStats::retries`, per-cell check events equal
//! `DetectorStats::cells_checked`, conflict verdicts equal the detector's
//! per-class attribution counters, and the operations the events claim to
//! have scanned equal the operations the detector actually scanned.

use std::sync::Arc;

use janus::core::{Janus, PanicPolicy, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::fault::FaultPlan;
use janus::obs::{AbortReason, EventKind, Recorder, Verdict};
use janus::relational::Value;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
    Max(i64),
}

/// One random transactional access: a location choice plus an operation.
fn access_strategy() -> impl Strategy<Value = (usize, K)> {
    (
        0usize..3,
        prop_oneof![
            Just(K::Read),
            (-2i64..3).prop_map(K::Add),
            (0i64..3).prop_map(K::Write),
            (0i64..3).prop_map(K::Max),
        ],
    )
}

/// Builds one task per access list, each replaying its accesses against
/// the three preallocated locations.
fn mk_tasks(specs: &[Vec<(usize, K)>], locs: [janus::log::LocId; 3]) -> Vec<Task> {
    specs
        .iter()
        .map(|accesses| {
            let accesses = accesses.clone();
            Task::new(move |tx: &mut TxView| {
                for &(i, k) in &accesses {
                    let loc = locs[i];
                    match k {
                        K::Read => {
                            tx.read(loc);
                        }
                        K::Add(d) => tx.add(loc, d),
                        K::Write(v) => tx.write(loc, v),
                        K::Max(v) => tx.max_with(loc, v),
                    }
                }
            })
        })
        .collect()
}

/// Runs the task mix traced and checks every event-vs-counter identity.
fn check_trace(specs: &[Vec<(usize, K)>], threads: usize, detector: Arc<dyn ConflictDetector>) {
    let mut store = Store::new();
    let locs = [
        store.alloc("a", Value::int(0)),
        store.alloc("b", Value::int(0)),
        store.alloc("c", Value::int(0)),
    ];
    let recorder = Recorder::new();
    let outcome = Janus::new(Arc::clone(&detector))
        .threads(threads)
        .recorder(Arc::clone(&recorder))
        .run(store, mk_tasks(specs, locs));
    let trace = recorder.finish();

    // Structure: every begin reaches exactly one commit or abort, events
    // sit inside attempts, timestamps are monotone per thread.
    prop_assert!(
        trace.check_well_formed().is_ok(),
        "ill-formed trace: {:?}",
        trace.check_well_formed()
    );
    prop_assert_eq!(trace.dropped(), 0, "no events may be dropped");

    // Lifecycle events match the runtime's counters exactly.
    prop_assert_eq!(trace.count("commit"), outcome.stats.commits);
    prop_assert_eq!(trace.count("abort"), outcome.stats.retries);
    prop_assert_eq!(
        trace.count("begin"),
        outcome.stats.commits + outcome.stats.retries
    );
    prop_assert_eq!(
        trace.count("validate_open") + trace.count("delta_revalidate"),
        outcome.stats.zero_copy_windows
    );
    prop_assert_eq!(
        trace.count("delta_revalidate"),
        outcome.stats.delta_revalidations
    );

    // Per-cell check events match the detector's counters: one event per
    // judged cell, conflict verdicts equal the per-class attribution, and
    // the scanned-op totals agree.
    let stats = detector.stats();
    prop_assert_eq!(trace.count("per_cell_check"), stats.cells_checked());
    let by_class: u64 = stats.conflicts_by_class().iter().map(|(_, n)| n).sum();
    prop_assert_eq!(trace.conflict_checks(), by_class);
    let (event_conflicts, event_ops) =
        trace
            .events()
            .fold((0u64, 0u64), |(c, o), e| match &e.kind {
                EventKind::PerCellCheck {
                    verdict,
                    ops_scanned,
                    ..
                } => (
                    c + u64::from(*verdict == Verdict::Conflict),
                    o + ops_scanned,
                ),
                _ => (c, o),
            });
    prop_assert_eq!(event_conflicts, by_class);
    prop_assert_eq!(event_ops, stats.ops_scanned());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequence detection: the trace is a faithful witness for every
    /// random task mix and thread count.
    #[test]
    fn sequence_trace_matches_counters(
        specs in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..8,
        ),
        threads in 1usize..=4,
    ) {
        check_trace(&specs, threads, Arc::new(SequenceDetector::new()));
    }

    /// Write-set detection aborts far more often; the identities must
    /// hold through every retry loop as well.
    #[test]
    fn write_set_trace_matches_counters(
        specs in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..8,
        ),
        threads in 1usize..=4,
    ) {
        check_trace(&specs, threads, Arc::new(WriteSetDetector::new()));
    }

    /// Under fault injection with isolation the abort ledger splits by
    /// reason, and each side must stay exact: conflict aborts equal
    /// `retries`, failed aborts equal `tasks_failed` (and the listed
    /// failures), and every begin is still closed by exactly one
    /// terminal event.
    #[test]
    fn faulted_trace_matches_counters(
        specs in proptest::collection::vec(
            proptest::collection::vec(access_strategy(), 0..5),
            0..8,
        ),
        threads in 1usize..=4,
        fault_seed in 0u64..1024,
        rate_pct in 0u32..=30,
    ) {
        let mut store = Store::new();
        let locs = [
            store.alloc("a", Value::int(0)),
            store.alloc("b", Value::int(0)),
            store.alloc("c", Value::int(0)),
        ];
        let recorder = Recorder::new();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(threads)
            .panic_policy(PanicPolicy::Isolate)
            .faults(Arc::new(FaultPlan::seeded(
                fault_seed,
                f64::from(rate_pct) / 100.0,
            )))
            .recorder(Arc::clone(&recorder))
            .run(store, mk_tasks(&specs, locs));
        let trace = recorder.finish();
        prop_assert!(
            trace.check_well_formed().is_ok(),
            "ill-formed trace: {:?}",
            trace.check_well_formed()
        );
        prop_assert_eq!(trace.count("commit"), outcome.stats.commits);
        prop_assert_eq!(
            trace.aborts_with_reason(AbortReason::Conflict),
            outcome.stats.retries
        );
        prop_assert_eq!(
            trace.aborts_with_reason(AbortReason::Failed),
            outcome.stats.tasks_failed
        );
        prop_assert_eq!(outcome.failed.len() as u64, outcome.stats.tasks_failed);
        prop_assert_eq!(
            trace.count("begin"),
            outcome.stats.commits + outcome.stats.retries + outcome.stats.tasks_failed
        );
    }
}
