//! Scheduling-policy equivalence under high contention: whatever policy
//! dispatches the tasks — and whether or not serial-fallback degradation
//! kicks in — the protocol's outcome guarantees are unchanged.
//!
//! * Commutative (add-only) task sets: every policy × degradation
//!   setting commits all tasks and lands on exactly the sequential
//!   final store, for random thread counts and hotspot skews.
//! * Order-sensitive tasks under `ordered(true)`: every policy equals
//!   the sequential outcome bit for bit.

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::WriteSetDetector;
use janus::relational::Value;
use janus::sched::{
    Affinity, Backoff, DegradeConfig, ExactFootprints, Fifo, SchedulePolicy, WorkSteal,
};
use proptest::prelude::*;

/// One add-only task: bump location `loc` by `delta`. Addition commutes,
/// so any commit order yields the sequential sums.
#[derive(Debug, Clone, Copy)]
struct AddTask {
    loc: usize,
    delta: i64,
}

/// Skewed task generator: with probability `hot_pct`% a task hits
/// location 0 (the hotspot); otherwise one of `cold` cold locations.
fn add_task_strategy(cold: usize) -> impl Strategy<Value = AddTask> {
    (0u32..100, 0usize..cold.max(1), -5i64..6).prop_map(move |(roll, c, delta)| AddTask {
        loc: if roll < 70 { 0 } else { 1 + c },
        delta,
    })
}

/// Every policy the runtime can be configured with, rebuilt per task set
/// so affinity gets the matching footprints.
fn policies(footprints: Vec<Vec<u64>>) -> Vec<(&'static str, Arc<dyn SchedulePolicy>)> {
    vec![
        ("fifo", Arc::new(Fifo)),
        ("backoff", Arc::new(Backoff::default())),
        (
            "affinity",
            Arc::new(Affinity::new(Arc::new(ExactFootprints(footprints.clone())))),
        ),
        // Same routing with lanes sealed: the no-steal ablation must be
        // just as correct, only slower on skewed queues.
        (
            "affinity-nosteal",
            Arc::new(Affinity::new(Arc::new(ExactFootprints(footprints))).without_stealing()),
        ),
        ("steal", Arc::new(WorkSteal::new(0xA5))),
    ]
}

fn run_policy(
    tasks: &[AddTask],
    n_locs: usize,
    threads: usize,
    policy: Arc<dyn SchedulePolicy>,
    degrade: bool,
) -> (u64, Vec<i64>) {
    let mut store = Store::new();
    let locs: Vec<_> = (0..n_locs)
        .map(|i| store.alloc(format!("l{i}").as_str(), Value::int(0)))
        .collect();
    let built: Vec<Task> = tasks
        .iter()
        .map(|&t| {
            let loc = locs[t.loc];
            Task::new(move |tx: &mut TxView| {
                // Read-modify-write rather than a commuting `add`, so
                // overlapping hot tasks genuinely conflict under
                // write-set detection and exercise retry scheduling.
                let v = tx.read_int(loc);
                tx.write(loc, v + t.delta);
            })
        })
        .collect();
    let mut janus = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(threads)
        .schedule(policy);
    if degrade {
        janus = janus.degrade(DegradeConfig {
            window: 4,
            threshold: 0.25,
        });
    }
    let outcome = janus.run(store, built);
    let finals = locs
        .iter()
        .map(|&l| outcome.store.value(l).and_then(Value::as_int).expect("int"))
        .collect();
    (outcome.stats.commits, finals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_policy_commits_all_tasks_to_the_sequential_sums(
        tasks in proptest::collection::vec(add_task_strategy(3), 1..24),
        threads in 1usize..5,
    ) {
        let n_locs = 4;
        // Addition commutes: the expected final store is the per-location
        // sum regardless of commit order.
        let mut expected = vec![0i64; n_locs];
        for t in &tasks {
            expected[t.loc] += t.delta;
        }
        let footprints: Vec<Vec<u64>> = tasks.iter().map(|t| vec![t.loc as u64]).collect();
        for (label, policy) in policies(footprints) {
            for degrade in [false, true] {
                let (commits, finals) =
                    run_policy(&tasks, n_locs, threads, Arc::clone(&policy), degrade);
                prop_assert_eq!(
                    commits,
                    tasks.len() as u64,
                    "{} (degrade {}): all tasks commit", label, degrade
                );
                prop_assert_eq!(
                    &finals,
                    &expected,
                    "{} (degrade {}) @ {} threads", label, degrade, threads
                );
            }
        }
    }

    #[test]
    fn ordered_runs_match_sequential_under_every_policy(
        deltas in proptest::collection::vec(1i64..7, 1..12),
        threads in 1usize..5,
    ) {
        // Order-sensitive hot chain: x := x * 3 + d. Only the submission
        // order produces the sequential value, so ordered commit must
        // hold under every policy (degradation is a no-op when ordered).
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        let build = |deltas: &[i64]| -> Vec<Task> {
            deltas
                .iter()
                .map(|&d| {
                    Task::new(move |tx: &mut TxView| {
                        let v = tx.read_int(x);
                        tx.write(x, v.wrapping_mul(3).wrapping_add(d));
                    })
                })
                .collect()
        };
        let (seq_store, _) = Janus::run_sequential(store.clone(), &build(&deltas));
        let expected = seq_store.value(x).and_then(Value::as_int).expect("int");
        let footprints: Vec<Vec<u64>> = deltas.iter().map(|_| vec![x.0]).collect();
        for (label, policy) in policies(footprints) {
            let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
                .threads(threads)
                .ordered(true)
                .schedule(Arc::clone(&policy))
                .run(store.clone(), build(&deltas));
            prop_assert_eq!(outcome.stats.commits, deltas.len() as u64, "{}", label);
            let got = outcome.store.value(x).and_then(Value::as_int).expect("int");
            prop_assert_eq!(got, expected, "{} @ {} threads", label, threads);
        }
    }
}

#[test]
fn stealing_from_one_hot_lane_preserves_sums_and_engages_thieves() {
    // Every task carries the same footprint, so affinity routing piles
    // the whole batch onto one worker's lane; the other three workers
    // have nothing of their own and must steal. Tasks write disjoint
    // locations (no conflicts) but take real time, so the hot lane
    // cannot drain before the thieves arrive.
    let n = 48usize;
    let mut store = Store::new();
    let locs: Vec<_> = (0..n)
        .map(|i| store.alloc(format!("d{i}").as_str(), Value::int(0)))
        .collect();
    let tasks: Vec<Task> = locs
        .iter()
        .map(|&loc| {
            Task::new(move |tx: &mut TxView| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                let v = tx.read_int(loc);
                tx.write(loc, v + 1);
            })
        })
        .collect();
    let footprints = vec![vec![0u64]; n];
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(4)
        .schedule(Arc::new(Affinity::new(Arc::new(ExactFootprints(
            footprints,
        )))))
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, n as u64);
    for &l in &locs {
        assert_eq!(outcome.store.value(l), Some(&Value::int(1)));
    }
    let steal = &outcome.sched.steal;
    assert!(
        steal.batches > 0,
        "idle workers must steal from the hot lane (attempts {})",
        steal.attempts
    );
    assert!(
        steal.stolen_tasks >= steal.batches,
        "batches move >= 1 task"
    );
    assert!(
        steal.queue_depth.count() == steal.batches,
        "one victim-depth sample per successful steal"
    );
    assert_eq!(
        outcome.sched.dispatched, n as u64,
        "stealing never duplicates or drops a dispatch"
    );
}

#[test]
fn ordered_hot_lane_with_stealing_matches_sequential_exactly() {
    // The hostile combination from the issue: an order-sensitive chain,
    // all routed to one lane, stealing enabled, commits pinned to
    // submission order. Thieves may run tasks out of line but the turn
    // gate must still serialize the visible effects.
    let n = 24usize;
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(1));
    let build = || -> Vec<Task> {
        (1..=n as i64)
            .map(|d| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(x);
                    tx.write(x, v.wrapping_mul(3).wrapping_add(d));
                })
            })
            .collect()
    };
    let (seq_store, _) = Janus::run_sequential(store.clone(), &build());
    let expected = seq_store.value(x).and_then(Value::as_int).expect("int");
    let footprints = vec![vec![x.0]; n];
    for threads in [2usize, 4] {
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(threads)
            .ordered(true)
            .schedule(Arc::new(Affinity::new(Arc::new(ExactFootprints(
                footprints.clone(),
            )))))
            .run(store.clone(), build());
        assert_eq!(outcome.stats.commits, n as u64);
        let got = outcome.store.value(x).and_then(Value::as_int).expect("int");
        assert_eq!(got, expected, "ordered stealing run @ {threads} threads");
    }
}

#[test]
fn degradation_with_stealing_still_sums_correctly() {
    // Degradation active while thieves roam: the serial-fallback guard
    // and the steal path must compose without losing a commit.
    let mut store = Store::new();
    let hot = store.alloc("hot", Value::int(0));
    let tasks: Vec<Task> = (1..=48i64)
        .map(|d| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(hot);
                tx.write(hot, v + d);
            })
        })
        .collect();
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(4)
        .schedule(Arc::new(WorkSteal::new(11)))
        .degrade(DegradeConfig {
            window: 4,
            threshold: 0.25,
        })
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 48);
    assert_eq!(
        outcome.store.value(hot),
        Some(&Value::int((1..=48).sum::<i64>()))
    );
}

#[test]
fn degradation_under_a_pure_hotspot_still_sums_correctly() {
    // Deterministic high-contention case outside proptest: 48 tasks all
    // read-modify-write one location, aggressive degradation settings.
    let mut store = Store::new();
    let hot = store.alloc("hot", Value::int(0));
    let tasks: Vec<Task> = (1..=48i64)
        .map(|d| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(hot);
                tx.write(hot, v + d);
            })
        })
        .collect();
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(4)
        .schedule(Arc::new(Backoff::default()))
        .degrade(DegradeConfig {
            window: 4,
            threshold: 0.25,
        })
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 48);
    assert_eq!(
        outcome.store.value(hot),
        Some(&Value::int((1..=48).sum::<i64>()))
    );
    assert_eq!(
        outcome.sched.backoff_waits, outcome.stats.retries,
        "every conflict abort backs off exactly once"
    );
}
