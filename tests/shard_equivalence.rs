//! Shard-count equivalence: the sharded store is a pure performance
//! refactor. Whatever the shard count — one shard (the degenerate,
//! globally locked store) through the full 64-hint space — the protocol's
//! observable outcomes are identical:
//!
//! * commutative task sets land on exactly the sequential sums, with all
//!   tasks committed, for random skews, thread counts and detectors;
//! * ordered runs equal the sequential execution bit for bit;
//! * forced-conflict fault sites produce identical, deterministic abort
//!   counts at every shard count;
//! * seeded chaos runs (panics, stalls, forced conflicts under
//!   `PanicPolicy::Isolate`) isolate the same tasks and reach the same
//!   surviving state at every shard count.

use std::sync::Arc;

use janus::core::{Janus, PanicPolicy, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::fault::{FaultKind, FaultPlan, FaultSite};
use janus::relational::Value;
use proptest::prelude::*;

/// The shard counts under test: degenerate, tiny, the default, and the
/// full hint space.
const SHARD_COUNTS: [usize; 4] = [1, 2, 8, 64];

/// Injected panics are expected by construction in the chaos cases; keep
/// their backtraces out of the test output.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("janus-fault:"));
            if !injected {
                hook(info);
            }
        }));
    });
}

/// One add-only task: bump location `loc` by `delta`. Addition commutes,
/// so any commit order yields the sequential sums.
#[derive(Debug, Clone, Copy)]
struct AddTask {
    loc: usize,
    delta: i64,
}

/// Skewed task generator: with probability ~60% a task hits location 0
/// (the hotspot); otherwise one of `cold` cold locations.
fn add_task_strategy(cold: usize) -> impl Strategy<Value = AddTask> {
    (0u32..100, 0usize..cold.max(1), -5i64..6).prop_map(move |(roll, c, delta)| AddTask {
        loc: if roll < 60 { 0 } else { 1 + c },
        delta,
    })
}

/// Allocates `n_locs` locations under distinct classes — distinct shard
/// hints, so shard counts > 1 genuinely spread them — and builds the
/// read-modify-write form of the tasks (real conflicts under write-set
/// detection).
fn build_rmw(tasks: &[AddTask], n_locs: usize) -> (Store, Vec<Task>) {
    let mut store = Store::new();
    let locs: Vec<_> = (0..n_locs)
        .map(|i| store.alloc(format!("cls{i}").as_str(), Value::int(0)))
        .collect();
    let built = tasks
        .iter()
        .map(|&t| {
            let loc = locs[t.loc];
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(loc);
                tx.write(loc, v + t.delta);
            })
        })
        .collect();
    (store, built)
}

fn final_sums(outcome_store: &Store, n_locs: usize) -> Vec<i64> {
    let mut probe = Store::new();
    (0..n_locs)
        .map(|i| {
            let loc = probe.alloc(format!("cls{i}").as_str(), Value::int(0));
            outcome_store
                .value(loc)
                .and_then(Value::as_int)
                .expect("int")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unordered commutative tasks: every (shard count, detector) pair
    /// commits all tasks to the sequential sums.
    #[test]
    fn every_shard_count_commits_to_the_sequential_sums(
        tasks in proptest::collection::vec(add_task_strategy(3), 1..24),
        threads in 1usize..5,
    ) {
        let n_locs = 4;
        let mut expected = vec![0i64; n_locs];
        for t in &tasks {
            expected[t.loc] += t.delta;
        }
        let detectors: [(&str, Arc<dyn ConflictDetector>); 2] = [
            ("sequence", Arc::new(SequenceDetector::new())),
            ("write-set", Arc::new(WriteSetDetector::new())),
        ];
        for (label, det) in &detectors {
            for shards in SHARD_COUNTS {
                let (store, built) = build_rmw(&tasks, n_locs);
                let outcome = Janus::new(Arc::clone(det))
                    .threads(threads)
                    .shards(shards)
                    .run(store, built);
                prop_assert_eq!(
                    outcome.stats.commits,
                    tasks.len() as u64,
                    "{} @ {} shards: all tasks commit", label, shards
                );
                prop_assert_eq!(
                    &final_sums(&outcome.store, n_locs),
                    &expected,
                    "{} @ {} shards, {} threads", label, shards, threads
                );
            }
        }
    }

    /// Ordered runs equal the sequential execution at every shard count,
    /// even for order-sensitive (non-commuting) bodies.
    #[test]
    fn ordered_runs_match_sequential_at_every_shard_count(
        deltas in proptest::collection::vec(1i64..7, 1..12),
        threads in 1usize..5,
    ) {
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        let build = |deltas: &[i64]| -> Vec<Task> {
            deltas
                .iter()
                .map(|&d| {
                    Task::new(move |tx: &mut TxView| {
                        let v = tx.read_int(x);
                        tx.write(x, v.wrapping_mul(3).wrapping_add(d));
                    })
                })
                .collect()
        };
        let (seq_store, _) = Janus::run_sequential(store.clone(), &build(&deltas));
        let expected = seq_store.value(x).and_then(Value::as_int).expect("int");
        for shards in SHARD_COUNTS {
            let outcome = Janus::new(Arc::new(SequenceDetector::new()))
                .threads(threads)
                .shards(shards)
                .ordered(true)
                .run(store.clone(), build(&deltas));
            prop_assert_eq!(outcome.stats.commits, deltas.len() as u64);
            let got = outcome.store.value(x).and_then(Value::as_int).expect("int");
            prop_assert_eq!(got, expected, "{} shards @ {} threads", shards, threads);
        }
    }

    /// Seeded chaos: the same fault seed isolates the same tasks and
    /// reaches the same surviving state at every shard count. Add-only
    /// bodies never genuinely conflict under sequence detection, so
    /// attempt numbers — and with them the seeded plan's decisions — are
    /// shard-count-independent.
    #[test]
    fn chaos_outcomes_are_shard_count_invariant(
        fault_seed in 0u64..64,
        rate_pct in 5u32..35,
    ) {
        quiet_injected_panics();
        let run = |shards: usize| {
            let mut store = Store::new();
            let locs: Vec<_> = (0..12)
                .map(|i| store.alloc(format!("cls{i}").as_str(), Value::int(0)))
                .collect();
            let tasks: Vec<Task> = locs
                .iter()
                .map(|&l| Task::new(move |tx: &mut TxView| tx.add(l, 1)))
                .collect();
            Janus::new(Arc::new(SequenceDetector::new()))
                .threads(3)
                .shards(shards)
                .panic_policy(PanicPolicy::Isolate)
                .faults(Arc::new(FaultPlan::seeded(
                    fault_seed,
                    f64::from(rate_pct) / 100.0,
                )))
                .run(store, tasks)
        };
        let baseline = run(SHARD_COUNTS[0]);
        for shards in &SHARD_COUNTS[1..] {
            let outcome = run(*shards);
            prop_assert_eq!(
                &outcome.failed, &baseline.failed,
                "same seed, same isolated tasks @ {} shards", shards
            );
            prop_assert_eq!(outcome.stats.commits, baseline.stats.commits);
            prop_assert_eq!(outcome.stats.tasks_failed, baseline.stats.tasks_failed);
            prop_assert_eq!(
                final_sums(&outcome.store, 12),
                final_sums(&baseline.store, 12),
                "surviving state @ {} shards", shards
            );
        }
    }
}

/// Forced-conflict sites fire on exact (task, attempt) pairs, so the
/// abort count is deterministic: every shard count retries exactly the
/// listed sites and still commits everything.
#[test]
fn forced_conflict_sites_abort_identically_at_every_shard_count() {
    // Subjects are 1-based task ids.
    let sites: Vec<FaultSite> = (1..=5)
        .map(|task| FaultSite {
            kind: FaultKind::ForcedConflict,
            subject: task,
            attempt: 0,
        })
        .collect();
    let forced = sites.len() as u64;
    for shards in SHARD_COUNTS {
        let mut store = Store::new();
        let locs: Vec<_> = (0..10)
            .map(|i| store.alloc(format!("cls{i}").as_str(), Value::int(0)))
            .collect();
        let tasks: Vec<Task> = locs
            .iter()
            .map(|&l| Task::new(move |tx: &mut TxView| tx.add(l, 1)))
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .shards(shards)
            .faults(Arc::new(FaultPlan::from_sites(sites.clone())))
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 10, "{shards} shards");
        assert_eq!(
            outcome.stats.retries, forced,
            "{shards} shards: exactly the forced sites abort"
        );
        assert_eq!(final_sums(&outcome.store, 10), vec![1i64; 10]);
    }
}

/// The shard builder rejects counts outside `1..=SHARD_SPACE`.
#[test]
#[should_panic(expected = "shard count")]
fn shard_count_zero_is_rejected() {
    let _ = Janus::new(Arc::new(SequenceDetector::new())).shards(0);
}
