//! Theorem 4.1: termination and serializability of the Figure 7 protocol
//! when instantiated with a sound and valid conflict detector.
//!
//! * Every *ordered* run terminates in the same final state as the
//!   sequential execution of the tasks.
//! * Every *unordered* run terminates in the final state of a sequential
//!   execution whose order corresponds to the commit order — i.e. in the
//!   state of **some** permutation of the tasks.

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::log::LocId;
use janus::relational::Value;

/// Order-sensitive tasks: each applies `x := x * 3 + i`, so every
/// permutation of the tasks yields a distinct final value.
fn affine_tasks(x: LocId, n: i64) -> Vec<Task> {
    (1..=n)
        .map(|i| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(x);
                tx.write(x, v.wrapping_mul(3).wrapping_add(i));
            })
        })
        .collect()
}

/// All final values reachable by some serial order of `affine_tasks`.
fn all_serial_outcomes(n: i64, start: i64) -> Vec<i64> {
    fn permute(rest: &mut Vec<i64>, acc: i64, out: &mut Vec<i64>) {
        if rest.is_empty() {
            out.push(acc);
            return;
        }
        for k in 0..rest.len() {
            let i = rest.remove(k);
            permute(rest, acc.wrapping_mul(3).wrapping_add(i), out);
            rest.insert(k, i);
        }
    }
    let mut out = Vec::new();
    permute(&mut (1..=n).collect(), start, &mut out);
    out
}

fn detectors() -> Vec<(&'static str, Arc<dyn ConflictDetector>)> {
    vec![
        ("write-set", Arc::new(WriteSetDetector::new())),
        ("sequence", Arc::new(SequenceDetector::new())),
    ]
}

#[test]
fn ordered_runs_equal_sequential() {
    for (label, detector) in detectors() {
        for threads in [1, 2, 4] {
            let mut store = Store::new();
            let x = store.alloc("x", Value::int(1));
            let tasks = affine_tasks(x, 6);
            let (seq_store, _) = Janus::run_sequential(store.clone(), &tasks);

            let outcome = Janus::new(Arc::clone(&detector))
                .threads(threads)
                .ordered(true)
                .run(store, affine_tasks(x, 6));
            assert_eq!(
                outcome.store.value(x),
                seq_store.value(x),
                "{label} @ {threads} threads"
            );
        }
    }
}

#[test]
fn unordered_runs_equal_some_serial_order() {
    let n = 5i64;
    let valid = all_serial_outcomes(n, 1);
    for (label, detector) in detectors() {
        for round in 0..5 {
            let mut store = Store::new();
            let x = store.alloc("x", Value::int(1));
            let outcome = Janus::new(Arc::clone(&detector))
                .threads(4)
                .run(store, affine_tasks(x, n));
            let final_x = outcome
                .store
                .value(x)
                .and_then(Value::as_int)
                .expect("x is an integer");
            assert!(
                valid.contains(&final_x),
                "{label} round {round}: {final_x} is not a serial outcome"
            );
        }
    }
}

#[test]
fn termination_under_heavy_conflicts() {
    // Every task writes the same cell with a distinct value: maximal
    // conflict pressure. The protocol must still drain the task pool.
    let mut store = Store::new();
    let x = store.alloc("hot", Value::int(0));
    let tasks: Vec<Task> = (0..40)
        .map(|i| Task::new(move |tx: &mut TxView| tx.write(x, i as i64)))
        .collect();
    let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
        .threads(4)
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 40);
    let v = outcome.store.value(x).and_then(Value::as_int).expect("int");
    assert!((0..40).contains(&v));
}

#[test]
fn validity_no_conflicts_for_disjoint_tasks() {
    // Tasks over disjoint locations must never retry, under either
    // detector (the validity half of Theorem 4.1's premise).
    for (label, detector) in detectors() {
        let mut store = Store::new();
        let locs: Vec<LocId> = (0..16)
            .map(|i| store.alloc(format!("x{i}").as_str(), Value::int(0)))
            .collect();
        let tasks: Vec<Task> = locs
            .iter()
            .map(|&l| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(l);
                    tx.write(l, v + 1);
                })
            })
            .collect();
        let outcome = Janus::new(detector).threads(4).run(store, tasks);
        assert_eq!(outcome.stats.retries, 0, "{label}");
        for &l in &locs {
            assert_eq!(outcome.store.value(l), Some(&Value::int(1)), "{label}");
        }
    }
}

#[test]
fn snapshot_isolation_within_transaction() {
    // A transaction sees its own writes but never a concurrent
    // transaction's uncommitted state; here we check the read-your-own-
    // writes half deterministically.
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(7));
    let observed = Arc::new(std::sync::Mutex::new(Vec::new()));
    let tasks = vec![Task::new({
        let observed = Arc::clone(&observed);
        move |tx: &mut TxView| {
            let before = tx.read_int(x);
            tx.write(x, 99);
            let after = tx.read_int(x);
            observed.lock().expect("mutex").push((before, after));
        }
    })];
    let (final_store, _) = Janus::run_sequential(store, &tasks);
    assert_eq!(final_store.value(x), Some(&Value::int(99)));
    assert_eq!(*observed.lock().expect("mutex"), vec![(7, 99)]);
}
