//! Allocation guarantees of the observability layer.
//!
//! Instrumentation must be free when disabled and cheap when enabled:
//! the untraced runtime performs *zero* recorder allocations (the
//! disabled path is a single `Option` branch), and the enabled record
//! path allocates nothing per event — the ring is a bounded buffer, the
//! class id is a shared `Arc<str>`, and once the ring has reached
//! capacity even the amortized `Vec` growth is gone.
//!
//! Everything lives in one `#[test]` so concurrent tests in this binary
//! cannot pollute the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::SequenceDetector;
use janus::log::{ClassId, LocId};
use janus::obs::{CheckReason, EventKind, Recorder, Verdict};
use janus::relational::Value;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Identity-pattern tasks: conflict-free under sequence detection, so a
/// single-threaded run is deterministic.
fn identity_tasks(work: LocId, n: usize) -> Vec<Task> {
    (1..=n as i64)
        .map(|w| {
            Task::new(move |tx: &mut TxView| {
                tx.add(work, w);
                tx.add(work, -w);
            })
        })
        .collect()
}

fn run_workload(n: usize, recorder: Option<&Arc<Recorder>>) -> u64 {
    let mut store = Store::new();
    let work = store.alloc("work", Value::int(0));
    let tasks = identity_tasks(work, n);
    let mut janus = Janus::new(Arc::new(SequenceDetector::new())).threads(1);
    if let Some(rec) = recorder {
        janus = janus.recorder(Arc::clone(rec));
    }
    let before = allocs();
    let outcome = janus.run(store, tasks);
    let after = allocs();
    assert_eq!(outcome.stats.commits, n as u64);
    after - before
}

#[test]
fn tracing_allocation_budget() {
    const TASKS: usize = 400;

    // --- Enabled hot path: zero allocations per event at capacity. ---
    let class = ClassId::new("x");
    let rec = Recorder::with_capacity(256);
    let handle = rec.register("w0");
    for task in 0..256 {
        handle.record(EventKind::Begin { task });
    }
    let before = allocs();
    for i in 0..10_000u64 {
        handle.set_clock(i);
        handle.record(EventKind::PerCellCheck {
            loc: LocId(i),
            class: class.clone(),
            verdict: Verdict::Pass,
            reason: CheckReason::Commute,
            ops_scanned: 2,
        });
    }
    let hot_path = allocs() - before;
    assert_eq!(
        hot_path, 0,
        "recording at capacity must not allocate (got {hot_path} allocations / 10000 events)"
    );

    // --- Pre-capacity path: amortized Vec growth, not per-event. ---
    let rec = Recorder::with_capacity(1 << 16);
    let handle = rec.register("w0");
    let before = allocs();
    for task in 0..4096 {
        handle.record(EventKind::Begin { task });
    }
    let growth = allocs() - before;
    assert!(
        growth <= 16,
        "filling the ring must allocate O(log n) times, got {growth} for 4096 events"
    );
    drop(handle);

    // --- Disabled path: no recorder cost at all. ---
    // Warm up lazy state (thread-local hashers, runtime one-offs), then
    // check an untraced run's allocation count is stable and a traced run
    // of the same workload adds only a bounded constant (registration,
    // ring growth, teardown) — nothing proportional to its event count.
    run_workload(TASKS, None);
    let untraced_a = run_workload(TASKS, None);
    let untraced_b = run_workload(TASKS, None);
    let untraced = untraced_a.max(untraced_b);
    let jitter = untraced_a.abs_diff(untraced_b);
    assert!(
        jitter <= 32,
        "untraced runs must have stable allocation counts (got {untraced_a} vs {untraced_b})"
    );

    let rec = Recorder::new();
    let traced = run_workload(TASKS, Some(&rec));
    let trace = rec.finish();
    assert!(
        trace.len() >= 2 * TASKS,
        "expected at least begin+commit per task, got {} events",
        trace.len()
    );
    // Bound is ~an eighth of the event count: a per-event allocation
    // would blow it by an order of magnitude, OS jitter will not.
    let overhead = traced.saturating_sub(untraced);
    assert!(
        overhead < 128,
        "tracing overhead must be a bounded constant, not per-event: \
         {overhead} extra allocations for {} events (untraced {untraced}, traced {traced})",
        trace.len()
    );
}
