//! Crash-recovery properties of the commit journal.
//!
//! For any random workload (commits interleaved with ordered-mode
//! tombstones), any fsync policy and any crash point, recovery must
//! rebuild exactly the durable prefix of the committed sequence:
//!
//! * the recovered `commit_seq` equals what the crash-site semantics
//!   promise — everything fsynced survives, a mid-write kill tears only
//!   the record being written (earlier buffered records ride along,
//!   modeling page-cache survival), and a pre-append kill loses the
//!   whole unsynced group-commit window;
//! * the recovered store equals a sequential replay of exactly the
//!   commits at or below that watermark — a torn tail never resurrects
//!   an unfsynced commit;
//! * recovery is idempotent: the tail truncation is physical, so a
//!   second recovery sees a whole journal and reports zero truncations.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use janus::core::{CommitSink as _, Store, TxView};
use janus::fault::{CrashSite, FaultKind, FaultPlan, FaultSite};
use janus::log::{LocId, Op};
use janus::relational::Value;
use janus::wal::{recover, FsyncPolicy, Wal};
use proptest::prelude::*;

const LOCS: usize = 4;

/// One journaled action: `Some(accesses)` is a committed transaction,
/// `None` is an ordered-mode tombstone (skipped ticket).
type Action = Option<Vec<(usize, i64)>>;

/// A fresh scratch directory per proptest case, inside the cargo target
/// tree (the tests never write outside the repo checkout).
fn scratch() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("wal-prop-{n}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The base store every "boot" reconstructs before replaying.
fn base_store() -> (Store, Vec<LocId>) {
    let mut store = Store::new();
    let locs = (0..LOCS)
        .map(|i| store.alloc(format!("l{i}").as_str(), Value::int(0)))
        .collect();
    (store, locs)
}

/// Harvests the op log of one committed action.
fn ops_for(store: &Store, locs: &[LocId], accesses: &[(usize, i64)]) -> Vec<Op> {
    let mut tx: TxView = store.begin();
    for &(i, d) in accesses {
        tx.add(locs[i], d);
    }
    tx.into_log()
}

/// What the crash-site semantics promise recovery will see: the durable
/// watermark and whether the tail is torn. `k` is the crashed global
/// sequence, fed strictly in order.
fn durable_prefix(policy: FsyncPolicy, site: CrashSite, k: u64) -> (u64, u64) {
    match site {
        // The record never exists; the whole unsynced window is lost.
        CrashSite::PreAppend => {
            let synced = match policy {
                FsyncPolicy::Always => k - 1,
                FsyncPolicy::EveryN(n) => (k - 1) / n * n,
                FsyncPolicy::IntervalMs(_) => unreachable!("not exercised here"),
            };
            (synced, 0)
        }
        // A strict prefix reaches the file: earlier buffered records
        // ride along un-torn, record `k` is cut in half.
        CrashSite::PostAppendPreFsync => (k - 1, 1),
        // Everything through `k` is flushed and fsynced before death.
        CrashSite::PostFsync => (k, 0),
    }
}

/// Feeds the workload through a journal (with the crash point armed),
/// recovers twice, and checks the watermark, the store, the torn-tail
/// accounting and idempotence.
fn check_recovery(actions: &[Action], policy: FsyncPolicy, crash: Option<(u64, CrashSite)>) {
    let dir = scratch();
    let (store, locs) = base_store();

    let plan = crash.map(|(seq, site)| {
        Arc::new(FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CrashPoint,
            subject: seq,
            attempt: site.attempt(),
        }]))
    });
    let wal = Wal::open_with_faults(&dir, policy, 0, plan).expect("open");
    let sink = wal.sink();

    // Feed strictly in ticket order, evolving a shadow store so each
    // op log is harvested against the state it would really see.
    let mut shadow = store.clone();
    let mut logs: Vec<Option<Vec<Op>>> = Vec::new();
    for action in actions {
        let seq = logs.len() as u64 + 1;
        match action {
            Some(accesses) => {
                let ops = ops_for(&shadow, &locs, accesses);
                shadow.apply_log(&ops);
                sink.committed(seq, 1, &ops);
                logs.push(Some(ops));
            }
            None => {
                sink.skipped(seq);
                logs.push(None);
            }
        }
    }
    let (want_seq, want_torn) = match crash {
        Some((k, site)) => {
            prop_assert!(wal.is_dead(), "the armed crash point must fire");
            prop_assert_eq!(wal.stats().crash_points(), 1);
            durable_prefix(policy, site, k)
        }
        None => {
            wal.flush().expect("flush");
            (actions.len() as u64, 0)
        }
    };
    drop(wal);

    let rec = recover(&dir, base_store().0).expect("recover");
    prop_assert_eq!(rec.commit_seq, want_seq, "durable watermark");
    prop_assert_eq!(rec.torn_tail_truncations, want_torn, "torn-tail count");
    prop_assert!(!rec.clean, "no clean marker was written");

    // The recovered store is a sequential replay of exactly the commits
    // at or below the watermark — nothing resurrected, nothing lost.
    let (mut expect, expect_locs) = base_store();
    for ops in logs.iter().take(want_seq as usize).flatten() {
        expect.apply_log(ops);
    }
    for (r, e) in locs.iter().zip(&expect_locs) {
        prop_assert_eq!(rec.store.value(*r), expect.value(*e), "recovered state");
    }

    // Double recovery is idempotent: the truncation was physical.
    let again = recover(&dir, base_store().0).expect("recover twice");
    prop_assert_eq!(again.commit_seq, want_seq);
    prop_assert_eq!(again.torn_tail_truncations, 0, "no tail left to tear");
    for (r, e) in locs.iter().zip(&expect_locs) {
        prop_assert_eq!(again.store.value(*r), expect.value(*e));
    }
}

fn policies() -> impl Strategy<Value = FsyncPolicy> {
    prop_oneof![
        Just(FsyncPolicy::Always),
        (1u64..=5).prop_map(FsyncPolicy::EveryN),
    ]
}

fn workloads() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec((0usize..LOCS, -5i64..6), 1..4),
        )
            .prop_map(|(f, accesses)| if f < 8 { Some(accesses) } else { None }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill the journal at every site of a random ticket under a random
    /// fsync policy: recovery rebuilds exactly the durable prefix.
    #[test]
    fn recovery_rebuilds_exactly_the_durable_prefix(
        actions in workloads(),
        policy in policies(),
        crash_at in 0u64..64,
        site_idx in 0usize..3,
    ) {
        let crash_seq = crash_at % actions.len() as u64 + 1;
        let site = CrashSite::ALL[site_idx];
        check_recovery(&actions, policy, Some((crash_seq, site)));
    }

    /// No crash: after an explicit flush the whole sequence is durable
    /// under every policy, and double recovery agrees.
    #[test]
    fn flushed_journal_recovers_everything(
        actions in workloads(),
        policy in policies(),
    ) {
        check_recovery(&actions, policy, None);
    }
}
