//! Exhaustive model check of the sharded commit path.
//!
//! A hand-rolled DFS explores *every* interleaving of an abstract model
//! of the protocol — transactions stepping through begin → register →
//! per-shard snapshot → window collect → ascending lock acquisition →
//! ticket → publish → prune → unlock → unregister — and checks the
//! properties the real runtime's correctness rests on:
//!
//! * **deadlock freedom**: canonical ascending lock order admits no
//!   cyclic wait (and the checker is not vacuous: a descending-order
//!   mutant does deadlock);
//! * **per-shard sequence monotonicity**: tickets drawn under all
//!   touched write locks publish in strictly increasing order per shard;
//! * **watermark soundness**: the published watermark never exceeds the
//!   begin ticket of any registered transaction;
//! * **prune safety**: no reachable interleaving prunes a shard's window
//!   beneath a snapshotted transaction's begin position (the real
//!   `collect_from` would panic) — and the register-*before*-snapshot
//!   order is load-bearing: a mutant that registers after snapshotting
//!   is caught by this very check.
//!
//! The model is small (two shards, three transactions) but the
//! exploration is exhaustive, so every race the abstraction can express
//! is covered.

use std::collections::HashSet;

const NO_OWNER: usize = usize::MAX;

/// One transaction's static description: the shards it touches, in the
/// order it will lock them.
#[derive(Debug, Clone)]
struct TxnSpec {
    lock_order: Vec<usize>,
    /// Model mutant: register with the active set only *after* the
    /// per-shard snapshots (the real protocol registers first).
    register_late: bool,
}

impl TxnSpec {
    fn ascending(shards: &[usize]) -> Self {
        let mut lock_order = shards.to_vec();
        lock_order.sort_unstable();
        TxnSpec {
            lock_order,
            register_late: false,
        }
    }
}

/// Transaction program counters. Each phase over `m` touched shards
/// expands to `m` micro-steps, so snapshots, lock acquisitions and
/// publishes interleave shard by shard, exactly like the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    Begin,
    Register,
    Snap(usize),
    Collect(usize),
    Lock(usize),
    Ticket,
    Publish(usize),
    Prune,
    Unlock,
    Unregister,
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TxnState {
    pc: Pc,
    begin: u64,
    begin_pos: Vec<u64>,
    registered: bool,
    snapped: Vec<bool>,
    seq: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShardState {
    /// Positional offset of the first retained entry (prune floor).
    start: u64,
    /// Sequence numbers of retained entries, in publish order.
    entries: Vec<u64>,
    /// Write-lock owner (txn index), or `NO_OWNER`.
    owner: usize,
}

impl ShardState {
    fn head(&self) -> u64 {
        self.start + self.entries.len() as u64
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Model {
    oracle: u64,
    txns: Vec<TxnState>,
    shards: Vec<ShardState>,
}

/// Everything the exploration tallies.
#[derive(Debug, Default)]
struct Verdict {
    states: usize,
    terminals: usize,
    deadlocks: usize,
    monotonicity_violations: usize,
    watermark_violations: usize,
    prune_violations: usize,
}

struct Explorer<'a> {
    specs: &'a [TxnSpec],
    visited: HashSet<Model>,
    verdict: Verdict,
}

impl<'a> Explorer<'a> {
    fn new(specs: &'a [TxnSpec]) -> Self {
        Explorer {
            specs,
            visited: HashSet::new(),
            verdict: Verdict::default(),
        }
    }

    fn initial(&self) -> Model {
        let n_shards = self
            .specs
            .iter()
            .flat_map(|s| s.lock_order.iter().copied())
            .max()
            .map_or(1, |m| m + 1);
        Model {
            oracle: 1,
            txns: self
                .specs
                .iter()
                .map(|s| TxnState {
                    pc: Pc::Begin,
                    begin: 0,
                    begin_pos: vec![0; s.lock_order.len()],
                    registered: false,
                    snapped: vec![false; s.lock_order.len()],
                    seq: 0,
                })
                .collect(),
            shards: (0..n_shards)
                .map(|_| ShardState {
                    start: 0,
                    entries: Vec::new(),
                    owner: NO_OWNER,
                })
                .collect(),
        }
    }

    /// The model's watermark: minimum begin ticket over registered
    /// transactions, `u64::MAX` when none (matches `ActiveBegins`).
    fn watermark(m: &Model) -> u64 {
        m.txns
            .iter()
            .filter(|t| t.registered)
            .map(|t| t.begin)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Shards `specs[i]` touches, in canonical (sorted) order — the
    /// order snapshots and publishes walk, whatever the lock order.
    fn touched(&self, i: usize) -> Vec<usize> {
        let mut t = self.specs[i].lock_order.clone();
        t.sort_unstable();
        t
    }

    fn enabled(&self, m: &Model, i: usize) -> bool {
        match m.txns[i].pc {
            Pc::Done => false,
            Pc::Lock(k) => m.shards[self.specs[i].lock_order[k]].owner == NO_OWNER,
            // Snapshots and window collects run under the shard's *read*
            // lock: they exclude a write-lock holder (but not each
            // other — each is one atomic step here, so reader-reader
            // concurrency is preserved by construction).
            Pc::Snap(k) | Pc::Collect(k) => m.shards[self.touched(i)[k]].owner == NO_OWNER,
            _ => true,
        }
    }

    /// Advances transaction `i` by one micro-step, recording violations.
    fn step(&mut self, m: &mut Model, i: usize) {
        let spec = &self.specs[i];
        let touched = self.touched(i);
        let n = touched.len();
        let pc = m.txns[i].pc;
        match pc {
            Pc::Begin => {
                m.txns[i].begin = m.oracle;
                m.txns[i].pc = if spec.register_late {
                    Pc::Snap(0)
                } else {
                    Pc::Register
                };
            }
            Pc::Register => {
                m.txns[i].registered = true;
                m.txns[i].pc = if spec.register_late {
                    Pc::Collect(0)
                } else {
                    Pc::Snap(0)
                };
            }
            Pc::Snap(k) => {
                let s = touched[k];
                m.txns[i].begin_pos[k] = m.shards[s].head();
                m.txns[i].snapped[k] = true;
                m.txns[i].pc = if k + 1 < n {
                    Pc::Snap(k + 1)
                } else if spec.register_late {
                    Pc::Register
                } else {
                    Pc::Collect(0)
                };
            }
            Pc::Collect(k) => {
                // The model of `collect_from`: the window's base must not
                // have been pruned out from under the snapshot.
                let s = touched[k];
                if m.txns[i].begin_pos[k] < m.shards[s].start {
                    self.verdict.prune_violations += 1;
                }
                m.txns[i].pc = if k + 1 < n {
                    Pc::Collect(k + 1)
                } else {
                    Pc::Lock(0)
                };
            }
            Pc::Lock(k) => {
                let s = spec.lock_order[k];
                debug_assert_eq!(m.shards[s].owner, NO_OWNER, "lock step gated on free");
                m.shards[s].owner = i;
                m.txns[i].pc = if k + 1 < spec.lock_order.len() {
                    Pc::Lock(k + 1)
                } else {
                    Pc::Ticket
                };
            }
            Pc::Ticket => {
                m.txns[i].seq = m.oracle;
                m.oracle += 1;
                m.txns[i].pc = Pc::Publish(0);
            }
            Pc::Publish(k) => {
                let s = touched[k];
                let seq = m.txns[i].seq;
                if m.shards[s].entries.last().is_some_and(|&last| last >= seq) {
                    self.verdict.monotonicity_violations += 1;
                }
                m.shards[s].entries.push(seq);
                m.txns[i].pc = if k + 1 < n {
                    Pc::Publish(k + 1)
                } else {
                    Pc::Prune
                };
            }
            Pc::Prune => {
                let floor = Self::watermark(m).min(m.oracle);
                for &s in &touched {
                    while m.shards[s].entries.first().is_some_and(|&e| e < floor) {
                        m.shards[s].entries.remove(0);
                        m.shards[s].start += 1;
                    }
                    // Positional prune safety: the retained prefix must
                    // still cover every snapshotted live window.
                    for (j, t) in m.txns.iter().enumerate() {
                        if j == i || matches!(t.pc, Pc::Done) {
                            continue;
                        }
                        if let Some(k) = self.touched(j).iter().position(|&ts| ts == s) {
                            if t.snapped[k] && t.begin_pos[k] < m.shards[s].start {
                                self.verdict.prune_violations += 1;
                            }
                        }
                    }
                }
                m.txns[i].pc = Pc::Unlock;
            }
            Pc::Unlock => {
                for &s in &spec.lock_order {
                    m.shards[s].owner = NO_OWNER;
                }
                m.txns[i].pc = Pc::Unregister;
            }
            Pc::Unregister => {
                m.txns[i].registered = false;
                m.txns[i].pc = Pc::Done;
            }
            Pc::Done => unreachable!("done transactions are never enabled"),
        }
        // Watermark soundness holds after every step.
        let wm = Self::watermark(m);
        if m.txns.iter().any(|t| t.registered && t.begin < wm) {
            self.verdict.watermark_violations += 1;
        }
    }

    /// Depth-first exploration of every interleaving, deduplicated on
    /// full model states.
    fn explore(&mut self, m: Model) {
        if !self.visited.insert(m.clone()) {
            return;
        }
        self.verdict.states += 1;
        let enabled: Vec<usize> = (0..m.txns.len()).filter(|&i| self.enabled(&m, i)).collect();
        if enabled.is_empty() {
            if m.txns.iter().all(|t| t.pc == Pc::Done) {
                self.verdict.terminals += 1;
            } else {
                self.verdict.deadlocks += 1;
            }
            return;
        }
        for i in enabled {
            let mut next = m.clone();
            self.step(&mut next, i);
            self.explore(next);
        }
    }

    fn run(mut self) -> Verdict {
        let init = self.initial();
        self.explore(init);
        self.verdict
    }
}

#[test]
fn ascending_lock_order_has_no_deadlock_and_prunes_safely() {
    // One single-shard txn per shard plus one spanning both: the exact
    // shape where unordered acquisition would deadlock.
    let specs = vec![
        TxnSpec::ascending(&[0]),
        TxnSpec::ascending(&[1]),
        TxnSpec::ascending(&[0, 1]),
    ];
    let v = Explorer::new(&specs).run();
    assert!(v.states > 1_000, "exploration is non-trivial: {v:?}");
    assert!(v.terminals > 0, "some interleaving terminates: {v:?}");
    assert_eq!(v.deadlocks, 0, "{v:?}");
    assert_eq!(v.monotonicity_violations, 0, "{v:?}");
    assert_eq!(v.watermark_violations, 0, "{v:?}");
    assert_eq!(v.prune_violations, 0, "{v:?}");
}

#[test]
fn two_cross_shard_transactions_stay_deadlock_free() {
    let specs = vec![TxnSpec::ascending(&[0, 1]), TxnSpec::ascending(&[0, 1])];
    let v = Explorer::new(&specs).run();
    assert_eq!(v.deadlocks, 0, "{v:?}");
    assert_eq!(v.prune_violations, 0, "{v:?}");
    assert_eq!(v.monotonicity_violations, 0, "{v:?}");
}

#[test]
fn descending_lock_order_mutant_deadlocks() {
    // The checker is not vacuous: opposite acquisition orders across two
    // shards must expose the classic cyclic wait.
    let specs = vec![
        TxnSpec {
            lock_order: vec![0, 1],
            register_late: false,
        },
        TxnSpec {
            lock_order: vec![1, 0],
            register_late: false,
        },
    ];
    let v = Explorer::new(&specs).run();
    assert!(v.deadlocks > 0, "mutant must deadlock: {v:?}");
}

#[test]
fn late_registration_mutant_is_caught_by_the_prune_check() {
    // Registering after snapshotting leaves a window unpinned: two
    // committers can advance the oracle and prune beneath it. The real
    // protocol's register-before-snapshot order forbids this.
    let specs = vec![
        TxnSpec {
            lock_order: vec![0],
            register_late: true,
        },
        TxnSpec::ascending(&[0]),
        TxnSpec::ascending(&[0]),
    ];
    let v = Explorer::new(&specs).run();
    assert_eq!(v.deadlocks, 0, "{v:?}");
    assert!(
        v.prune_violations > 0,
        "late registration must be caught: {v:?}"
    );
    // And the correct ordering of the same shape is clean.
    let clean = vec![
        TxnSpec::ascending(&[0]),
        TxnSpec::ascending(&[0]),
        TxnSpec::ascending(&[0]),
    ];
    let v = Explorer::new(&clean).run();
    assert_eq!(v.prune_violations, 0, "{v:?}");
    assert_eq!(v.deadlocks, 0, "{v:?}");
}
