//! Cross-detector relationships on exhaustively enumerated scalar
//! sequence pairs:
//!
//! * **refinement** — anything the sequence detector flags, the write-set
//!   detector flags too (sequence detection only *removes* false
//!   conflicts, never adds new ones);
//! * **exactness of the ideal check** — the sequence detector's verdict
//!   agrees with brute-force commutativity of the two transaction
//!   histories evaluated in both orders, whenever the histories observe
//!   nothing (no reads): for blind histories the final state is the whole
//!   story;
//! * **cache/online agreement** — the cached detector with a trained
//!   cache never disagrees with the online detector on a hit.

use janus::detect::{
    CachedSequenceDetector, ConflictDetector, MapState, SequenceDetector, WriteSetDetector,
};
use janus::log::{ClassId, LocId, Op, OpKind, ScalarOp};
use janus::relational::{Scalar, Value};
use janus::train::{train, TrainConfig, TrainingRun};

#[derive(Debug, Clone, Copy, PartialEq)]
enum K {
    Read,
    Add(i64),
    Write(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
    }
}

fn mk_ops(ks: &[K], entry: i64) -> Vec<Op> {
    let mut v = Value::int(entry);
    ks.iter()
        .map(|&k| Op::execute(LocId(0), ClassId::new("x"), kind(k), &mut v).0)
        .collect()
}

/// All sequences of length ≤ 2 over a tiny alphabet.
fn universe() -> Vec<Vec<K>> {
    let alphabet = [K::Read, K::Add(1), K::Add(-1), K::Write(0), K::Write(5)];
    let mut out: Vec<Vec<K>> = vec![vec![]];
    for &a in &alphabet {
        out.push(vec![a]);
        for &b in &alphabet {
            out.push(vec![a, b]);
        }
    }
    out
}

#[test]
fn sequence_conflicts_are_a_subset_of_write_set_conflicts() {
    let ws = WriteSetDetector::new();
    let seq = SequenceDetector::new();
    let mut refined = 0u32;
    for entry in [0i64, 5] {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        for a in universe() {
            for b in universe() {
                let oa = mk_ops(&a, entry);
                let ob = mk_ops(&b, entry);
                let s = seq.detect_ops(&state, &oa, &ob);
                let w = ws.detect_ops(&state, &oa, &ob);
                assert!(
                    !s || w,
                    "sequence flagged {a:?} vs {b:?} at {entry} but write-set did not"
                );
                if w && !s {
                    refined += 1;
                }
            }
        }
    }
    assert!(refined > 50, "refinement must actually remove conflicts");
}

#[test]
fn blind_histories_agree_with_ground_truth_commutativity() {
    let seq = SequenceDetector::new();
    let blind: Vec<Vec<K>> = universe()
        .into_iter()
        .filter(|s| s.iter().all(|k| !matches!(k, K::Read)))
        .collect();
    for entry in [0i64, 3] {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        for a in &blind {
            for b in &blind {
                let oa = mk_ops(a, entry);
                let ob = mk_ops(b, entry);
                let detected = seq.detect_ops(&state, &oa, &ob);
                // Ground truth: replay both orders.
                let replay = |first: &[Op], second: &[Op]| -> i64 {
                    let mut v = Value::int(entry);
                    for op in first.iter().chain(second) {
                        op.kind.apply(&mut v);
                    }
                    v.as_int().expect("int")
                };
                let commutes = replay(&oa, &ob) == replay(&ob, &oa);
                assert_eq!(
                    detected, !commutes,
                    "{a:?} vs {b:?} at {entry}: detector vs ground truth"
                );
            }
        }
    }
}

#[test]
fn cached_hits_agree_with_online_detection() {
    // Train on a run exercising a mix of the universe's patterns.
    let mut initial = MapState::default();
    initial.0.insert(LocId(0), Value::int(0));
    let logs: Vec<Vec<Op>> = vec![
        mk_ops(&[K::Add(2), K::Add(-2)], 0),
        mk_ops(&[K::Add(3), K::Add(-3)], 0),
        mk_ops(&[K::Write(5)], 0),
        mk_ops(&[K::Write(5)], 5),
        mk_ops(&[K::Read], 5),
        mk_ops(&[K::Add(1)], 5),
    ];
    let run = TrainingRun {
        initial,
        task_logs: logs,
    };
    let (cache, _) = train(&[run], TrainConfig::default());
    let cached = CachedSequenceDetector::new(cache);
    let online = SequenceDetector::new();

    for entry in [0i64, 5] {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        for a in universe() {
            for b in universe() {
                let oa = mk_ops(&a, entry);
                let ob = mk_ops(&b, entry);
                let (_, _, h0, _) = cached.stats().snapshot();
                let c = cached.detect_ops(&state, &oa, &ob);
                let (_, _, h1, _) = cached.stats().snapshot();
                if h1 > h0 {
                    // Cache hit: must match online verdict exactly.
                    let o = online.detect_ops(&state, &oa, &ob);
                    assert_eq!(c, o, "hit disagreement on {a:?} vs {b:?} at {entry}");
                }
            }
        }
    }
}
