//! Liveness regressions for the failure model.
//!
//! Two hangs the robustness layer must never reintroduce: (1) an
//! ordered run where a middle task panics under `PanicPolicy::Isolate`
//! — without the tombstone its successors would wait on `clock == tid`
//! forever; (2) a pathologically conflicting task pair — without the
//! retry-budget escalation the pair could starve under adversarial
//! interleavings. Both are exercised under every schedule policy.

use std::sync::Arc;

use janus::core::{Janus, PanicPolicy, Store, Task, TxView};
use janus::detect::SequenceDetector;
use janus::fault::{FaultKind, FaultPlan, FaultSite};
use janus::relational::Value;
use janus::sched::{Affinity, Backoff, ExactFootprints, Fifo, SchedulePolicy};

/// The three policies, with footprints for affinity routing.
fn policies(fps: Vec<Vec<u64>>) -> Vec<(&'static str, Arc<dyn SchedulePolicy>)> {
    vec![
        ("fifo", Arc::new(Fifo)),
        ("backoff", Arc::new(Backoff::new(5))),
        (
            "affinity",
            Arc::new(Affinity::new(Arc::new(ExactFootprints(fps)))),
        ),
    ]
}

#[test]
fn ordered_isolate_middle_panic_commits_every_successor() {
    // Order-dependent chain: task i maps x -> 3x + i, so any skipped or
    // reordered successor changes the final value.
    let n = 8u64;
    let panicking = 4u64;
    let mk_store = || {
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        (store, x)
    };
    // Expected state: the sequential execution of the non-failed subset.
    let (seq_store, x_seq) = mk_store();
    let surviving: Vec<Task> = (1..=n)
        .filter(|&i| i != panicking)
        .map(|i| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(x_seq);
                tx.write(x_seq, v * 3 + i as i64);
            })
        })
        .collect();
    let (seq_store, _) = Janus::run_sequential(seq_store, &surviving);
    let expected = seq_store.value(x_seq).cloned();

    let fps: Vec<Vec<u64>> = (0..n).map(|_| vec![0]).collect();
    for (name, policy) in policies(fps) {
        let (store, x) = mk_store();
        let tasks: Vec<Task> = (1..=n)
            .map(|i| {
                Task::new(move |tx: &mut TxView| {
                    if i == panicking {
                        panic!("middle task down");
                    }
                    let v = tx.read_int(x);
                    tx.write(x, v * 3 + i as i64);
                })
            })
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .ordered(true)
            .schedule(policy)
            .panic_policy(PanicPolicy::Isolate)
            .run(store, tasks);
        assert_eq!(
            outcome.stats.commits,
            n - 1,
            "{name}: every successor of the failed turn must commit"
        );
        assert_eq!(outcome.failed.len(), 1, "{name}");
        assert_eq!(outcome.failed[0].task, panicking, "{name}");
        assert_eq!(
            outcome.store.value(x).cloned(),
            expected,
            "{name}: survivors must commit in task order around the tombstone"
        );
    }
}

#[test]
fn retry_budget_escalation_terminates_a_conflicting_pair_under_every_policy() {
    // Forced-conflict sites make the pair abort on attempts 0..5
    // regardless of interleaving — a deterministic stand-in for an
    // adversarial contention pattern. The budget of 1 escalates every
    // retry to the serial token; the attempt past the last site commits.
    let aborts_per_task = 5u32;
    let sites: Vec<FaultSite> = (1..=2u64)
        .flat_map(|t| {
            (0..aborts_per_task).map(move |a| FaultSite {
                kind: FaultKind::ForcedConflict,
                subject: t,
                attempt: a,
            })
        })
        .collect();
    let fps = vec![vec![0u64], vec![0u64]];
    for (name, policy) in policies(fps) {
        let mut store = Store::new();
        let hot = store.alloc("hot", Value::int(0));
        let tasks: Vec<Task> = (1..=2i64)
            .map(|d| {
                Task::new(move |tx: &mut TxView| {
                    let v = tx.read_int(hot);
                    tx.write(hot, v + d);
                })
            })
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(2)
            .schedule(policy)
            .max_attempts(1)
            .faults(Arc::new(FaultPlan::from_sites(sites.clone())))
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 2, "{name}: the pair must terminate");
        assert_eq!(
            outcome.stats.retries,
            u64::from(aborts_per_task) * 2,
            "{name}: every forced conflict aborts exactly once"
        );
        assert_eq!(
            outcome.stats.retry_budget_escalations, 2,
            "{name}: each task crosses the budget exactly once"
        );
        assert_eq!(
            outcome.store.value(hot),
            Some(&Value::int(3)),
            "{name}: escalated retries still serialize to the correct sum"
        );
    }
}

#[test]
fn escalation_with_degradation_controller_shares_the_serial_token() {
    // With a degradation controller configured, escalated retries take
    // the controller's token (counted as serial retries) instead of the
    // run-level one.
    let sites: Vec<FaultSite> = (1..=4u64)
        .flat_map(|t| {
            (0..3u32).map(move |a| FaultSite {
                kind: FaultKind::ForcedConflict,
                subject: t,
                attempt: a,
            })
        })
        .collect();
    let mut store = Store::new();
    let work = store.alloc("work", Value::int(0));
    let tasks: Vec<Task> = (1..=4i64)
        .map(|d| Task::new(move |tx: &mut TxView| tx.add(work, d)))
        .collect();
    let outcome = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(2)
        .degrade(janus::sched::DegradeConfig {
            window: 64, // never fills: only escalation touches the token
            threshold: 1.0,
        })
        .max_attempts(2)
        .faults(Arc::new(FaultPlan::from_sites(sites)))
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 4);
    assert_eq!(outcome.stats.retry_budget_escalations, 4);
    assert!(
        outcome.sched.serial_retries >= 4,
        "escalated attempts are counted as serial retries (got {})",
        outcome.sched.serial_retries
    );
    assert_eq!(outcome.store.value(work), Some(&Value::int(10)));
}
