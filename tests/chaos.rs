//! Chaos harness: randomized fault injection against the full runtime.
//!
//! For any random task mix, thread count, schedule policy, fault seed
//! and fault rate, a run under `PanicPolicy::Isolate` must (1) never
//! hang, (2) keep its lifecycle trace well-formed, and (3) leave the
//! committed state equal to a *sequential* execution of exactly the
//! tasks that did not fail — injected panics take tasks out, but never
//! corrupt what the survivors committed. Unordered cases use add-only
//! (commutative) tasks so the surviving-subset replay is
//! order-independent; ordered cases use order-dependent
//! read-modify-writes and rely on commit order.

use std::collections::HashSet;
use std::sync::Arc;

use janus::core::{Janus, PanicPolicy, Store, Task, TxView};
use janus::detect::SequenceDetector;
use janus::fault::{FaultKind, FaultPlan};
use janus::obs::Recorder;
use janus::relational::Value;
use janus::sched::{Affinity, Backoff, ExactFootprints, Fifo, SchedulePolicy};
use proptest::prelude::*;

const LOCS: usize = 3;

/// One task spec: the `(location index, delta)` accesses it performs.
type Spec = Vec<(usize, i64)>;
/// Task constructor: builds the workload from specs + allocated locations.
type MkTasks = fn(&[Spec], &[janus::log::LocId]) -> Vec<Task>;

/// Injected panics are expected output here; keep their backtraces out
/// of the test log. Genuine panics (including proptest assertion
/// failures) still print through the default hook.
fn quiet_injected_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("janus-fault:"));
            if !injected {
                hook(info);
            }
        }));
    });
}

fn alloc_locs(store: &mut Store) -> Vec<janus::log::LocId> {
    (0..LOCS)
        .map(|i| store.alloc(format!("l{i}").as_str(), Value::int(0)))
        .collect()
}

/// Per-task exact footprints for the affinity policy.
fn footprints(specs: &[Spec], locs: &[janus::log::LocId]) -> Vec<Vec<u64>> {
    specs
        .iter()
        .map(|accesses| {
            let mut fp: Vec<u64> = accesses.iter().map(|&(i, _)| locs[i].0).collect();
            fp.sort_unstable();
            fp.dedup();
            fp
        })
        .collect()
}

fn policy(index: usize, fps: Vec<Vec<u64>>) -> Arc<dyn SchedulePolicy> {
    match index {
        0 => Arc::new(Fifo),
        1 => Arc::new(Backoff::new(5)),
        _ => Arc::new(Affinity::new(Arc::new(ExactFootprints(fps)))),
    }
}

/// Add-only tasks: commutative, so any committed subset reaches the
/// same state in any order.
fn add_tasks(specs: &[Spec], locs: &[janus::log::LocId]) -> Vec<Task> {
    specs
        .iter()
        .map(|accesses| {
            let accesses = accesses.clone();
            let locs = locs.to_vec();
            Task::new(move |tx: &mut TxView| {
                for &(i, d) in &accesses {
                    tx.add(locs[i], d);
                }
            })
        })
        .collect()
}

/// Order-dependent tasks: each access reads the location and writes a
/// value that depends on what it read.
fn rmw_tasks(specs: &[Spec], locs: &[janus::log::LocId]) -> Vec<Task> {
    specs
        .iter()
        .map(|accesses| {
            let accesses = accesses.clone();
            let locs = locs.to_vec();
            Task::new(move |tx: &mut TxView| {
                for &(i, d) in &accesses {
                    let v = tx.read_int(locs[i]);
                    tx.write(locs[i], v * 2 + d);
                }
            })
        })
        .collect()
}

/// Runs the chaos configuration and checks trace shape, task
/// accounting, and surviving-subset equivalence against a sequential
/// replay of the non-failed tasks.
#[allow(clippy::too_many_arguments)]
fn check_chaos(
    specs: &[Spec],
    ordered: bool,
    threads: usize,
    policy_idx: usize,
    fault_seed: u64,
    rate_pct: u32,
    budget: u32,
    mk: MkTasks,
) {
    quiet_injected_panics();
    let mut store = Store::new();
    let locs = alloc_locs(&mut store);
    let recorder = Recorder::new();
    let mut janus = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(threads)
        .ordered(ordered)
        .schedule(policy(policy_idx, footprints(specs, &locs)))
        .panic_policy(PanicPolicy::Isolate)
        .faults(Arc::new(FaultPlan::seeded(
            fault_seed,
            f64::from(rate_pct) / 100.0,
        )))
        .recorder(Arc::clone(&recorder));
    if !ordered {
        janus = janus.max_attempts(budget);
    }
    let outcome = janus.run(store, mk(specs, &locs));

    let trace = recorder.finish();
    prop_assert!(
        trace.check_well_formed().is_ok(),
        "ill-formed trace: {:?}",
        trace.check_well_formed()
    );
    // Every task either committed or was isolated — none lost, none run
    // twice.
    prop_assert_eq!(
        outcome.stats.commits + outcome.stats.tasks_failed,
        specs.len() as u64
    );
    prop_assert_eq!(outcome.failed.len() as u64, outcome.stats.tasks_failed);

    // The committed state equals a sequential execution of exactly the
    // non-failed tasks (in task order, which ordered mode preserves and
    // the commutative unordered workload cannot observe).
    let failed: HashSet<u64> = outcome.failed.iter().map(|f| f.task).collect();
    let surviving: Vec<Spec> = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| !failed.contains(&((i + 1) as u64)))
        .map(|(_, s)| s.clone())
        .collect();
    let mut seq_store = Store::new();
    let seq_locs = alloc_locs(&mut seq_store);
    let (seq_store, _) = Janus::run_sequential(seq_store, &mk(&surviving, &seq_locs));
    for (par, seq) in locs.iter().zip(&seq_locs) {
        prop_assert_eq!(
            outcome.store.value(*par),
            seq_store.value(*seq),
            "committed state diverges from the surviving subset"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unordered chaos: commutative tasks, all three schedule policies,
    /// retry budgets armed.
    #[test]
    fn unordered_chaos_equals_sequential_surviving_subset(
        specs in proptest::collection::vec(
            proptest::collection::vec((0usize..LOCS, -3i64..4), 0..4),
            0..8,
        ),
        threads in 1usize..=4,
        policy_idx in 0usize..3,
        fault_seed in 0u64..256,
        rate_pct in 0u32..=40,
        budget in 1u32..=3,
    ) {
        check_chaos(
            &specs, false, threads, policy_idx, fault_seed, rate_pct, budget, add_tasks,
        );
    }

    /// Ordered chaos: order-dependent tasks; failed turns must be
    /// tombstoned so successors commit, and the survivors' commit order
    /// must match task order.
    #[test]
    fn ordered_chaos_equals_sequential_surviving_subset(
        specs in proptest::collection::vec(
            proptest::collection::vec((0usize..LOCS, -3i64..4), 0..4),
            0..8,
        ),
        threads in 1usize..=4,
        policy_idx in 0usize..3,
        fault_seed in 0u64..256,
        rate_pct in 0u32..=40,
    ) {
        check_chaos(
            &specs, true, threads, policy_idx, fault_seed, rate_pct, 1, rmw_tasks,
        );
    }
}

/// Same seed, same plan: the injected-fault decision is a pure function
/// of `(seed, kind, subject, attempt)`, so two plans built alike agree
/// on every site.
#[test]
fn same_seed_same_injected_site_sequence() {
    let a = FaultPlan::seeded(42, 0.2);
    let b = FaultPlan::seeded(42, 0.2);
    for kind in [
        FaultKind::TaskPanic,
        FaultKind::ForcedConflict,
        FaultKind::CommitStall,
        FaultKind::CacheMiss,
    ] {
        for subject in 0..128u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    a.decide(kind, subject, attempt),
                    b.decide(kind, subject, attempt),
                    "plans with the same seed disagree at ({kind:?}, {subject}, {attempt})"
                );
            }
        }
    }
}

/// End-to-end determinism on a conflict-free workload: with disjoint
/// locations, each task's attempt sequence depends only on the plan, so
/// two runs with the same seed fail the same tasks after the same
/// number of attempts and retry identically.
#[test]
fn same_seed_fails_the_same_tasks() {
    quiet_injected_panics();
    let run = || {
        let mut store = Store::new();
        let locs: Vec<_> = (0..16)
            .map(|i| store.alloc(format!("x{i}").as_str(), Value::int(0)))
            .collect();
        let tasks: Vec<Task> = locs
            .iter()
            .map(|&l| Task::new(move |tx: &mut TxView| tx.add(l, 1)))
            .collect();
        Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .panic_policy(PanicPolicy::Isolate)
            .faults(Arc::new(FaultPlan::seeded(7, 0.3)))
            .run(store, tasks)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.failed, b.failed, "same seed, same failures");
    assert_eq!(a.stats.commits, b.stats.commits);
    assert_eq!(a.stats.retries, b.stats.retries);
    assert_eq!(a.stats.tasks_failed, b.stats.tasks_failed);
}

/// Rate 1.0 is the saturation point: every task's first attempt panics.
/// Both modes must isolate every task and terminate — in ordered mode
/// that means six consecutive tombstoned turns.
#[test]
fn saturated_fault_rate_still_terminates() {
    quiet_injected_panics();
    for ordered in [false, true] {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks: Vec<Task> = (0..6)
            .map(|_| Task::new(move |tx: &mut TxView| tx.add(work, 1)))
            .collect();
        let outcome = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(3)
            .ordered(ordered)
            .panic_policy(PanicPolicy::Isolate)
            .faults(Arc::new(FaultPlan::seeded(1, 1.0)))
            .run(store, tasks);
        assert_eq!(outcome.stats.commits, 0, "ordered={ordered}");
        assert_eq!(outcome.stats.tasks_failed, 6, "ordered={ordered}");
        assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
    }
}
