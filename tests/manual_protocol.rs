//! Driving the protocol manually through the low-level `Store` API —
//! the hooks external schedulers (like the bench simulator) build on.

use std::sync::Arc;

use janus::adt::MapAdt;
use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::relational::{Scalar, Value};

#[test]
fn manual_begin_detect_commit_cycle() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(0));

    // Transaction 1 executes against a snapshot...
    let mut tx1 = store.begin();
    tx1.add(x, 5);
    let entry1 = store.snapshot_state();
    let log1 = tx1.into_log();

    // ...transaction 2 starts concurrently (same snapshot era)...
    let mut tx2 = store.begin();
    tx2.add(x, 7);
    let entry2 = store.snapshot_state();
    let log2 = tx2.into_log();

    // ...t1 commits first.
    let det = SequenceDetector::new();
    assert!(!det.detect_ops(&entry1, &log1, &[]), "empty history: valid");
    store.apply_log(&log1);

    // t2's conflict history is t1's log; blind adds commute.
    assert!(!det.detect_ops(&entry2, &log2, &log1));
    store.apply_log(&log2);

    assert_eq!(store.value(x), Some(&Value::int(12)));
}

#[test]
fn manual_cycle_detects_real_conflicts() {
    let mut store = Store::new();
    let x = store.alloc("x", Value::int(0));

    let mut tx1 = store.begin();
    let v = tx1.read_int(x);
    tx1.write(x, v + 1);
    let entry1 = store.snapshot_state();
    let log1 = tx1.into_log();

    let mut tx2 = store.begin();
    let v = tx2.read_int(x);
    tx2.write(x, v + 1);
    let entry2 = store.snapshot_state();
    let log2 = tx2.into_log();

    let det = SequenceDetector::new();
    assert!(!det.detect_ops(&entry1, &log1, &[]));
    store.apply_log(&log1);

    // t2 read x before t1's increment: lost update, must conflict.
    assert!(det.detect_ops(&entry2, &log2, &log1));
    let _ = entry2;
}

#[test]
fn apply_log_groups_per_location() {
    let mut store = Store::new();
    let m = MapAdt::alloc(&mut store, "m");
    let c = store.alloc("c", Value::int(0));
    let mut tx = store.begin();
    for i in 0..50i64 {
        m.put(&mut tx, i, i * 2);
        tx.add(c, 1);
    }
    let log = tx.into_log();
    store.apply_log(&log);
    assert_eq!(store.value(c), Some(&Value::int(50)));
    assert_eq!(m.entries(&store).len(), 50);
    assert_eq!(m.entries(&store)[10], (Scalar::Int(10), Scalar::Int(20)));
}

#[test]
fn eager_privatization_is_semantically_equivalent() {
    // D4: eager deep-copy privatization must produce the same results as
    // persistent snapshots, just slower.
    let build = || {
        let mut store = Store::new();
        let m = MapAdt::alloc_with(
            &mut store,
            "m",
            (0..200i64).map(|i| (Scalar::Int(i), Scalar::Int(i))),
        );
        let tasks: Vec<Task> = (0..10i64)
            .map(|i| {
                let m = m.clone();
                Task::new(move |tx: &mut TxView| {
                    m.put(tx, 1000 + i, i);
                })
            })
            .collect();
        (store, tasks, m)
    };

    let detector: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
    let (store, tasks, m) = build();
    let persistent = Janus::new(Arc::clone(&detector))
        .threads(3)
        .run(store, tasks);

    let (store, tasks, _) = build();
    let eager = Janus::new(detector)
        .threads(3)
        .eager_privatization(true)
        .run(store, tasks);

    assert_eq!(persistent.stats.commits, eager.stats.commits);
    assert_eq!(m.entries(&persistent.store).len(), 210, "all puts landed");
    // Final relational contents agree.
    let a: Vec<_> = m.entries(&persistent.store);
    let loc = m.loc();
    assert_eq!(persistent.store.value(loc), eager.store.value(loc));
    assert_eq!(a.len(), 210);
}
