//! `janus-run` — command-line driver for the JANUS runtime.
//!
//! ```text
//! janus-run list
//! janus-run train <workload> [--no-abstraction] [--cache <file>]
//! janus-run run   <workload> [--detector write-set|sequence|cached|online-learning]
//!                            [--threads N] [--shards N] [--scale N] [--seed N]
//!                            [--cache <file>] [--eager] [--no-gc]
//!                            [--schedule fifo|backoff|affinity|steal] [--footprints mine|shard]
//!                            [--no-steal]
//!                            [--degrade-threshold R] [--degrade-window N]
//!                            [--panic-policy poison|isolate] [--max-attempts N]
//!                            [--watchdog-ms N] [--fault-seed N] [--fault-rate R]
//!                            [--trace <file>] [--metrics]
//! ```
//!
//! `train` exercises the workload's Table 6 training inputs sequentially
//! and writes the learned commutativity cache to `--cache` (default
//! `<workload>.janus-cache`). `run` executes a production-style input in
//! parallel under the chosen detector; with `--detector cached` the cache
//! is loaded from the file, so training and production can live in
//! different processes — the offline/production split of Figure 6.
//!
//! `--trace FILE` records the full transaction lifecycle and writes a
//! Chrome-trace JSON loadable in `chrome://tracing` (one track per worker
//! thread); `--metrics` prints the unified metrics registry and the abort
//! attribution report.
//!
//! `--shards N` sets the sharded store's shard count (1..=64; default 8).
//! Disjoint-footprint tasks commit through different shard locks, so
//! raising the count relieves commit-path contention; per-shard commit,
//! history and lock-wait statistics land in the metrics registry under
//! `shard.*`.
//!
//! `--schedule` picks the retry/dispatch policy: `fifo` (the default;
//! immediate retry), `backoff` (deterministic randomized exponential
//! backoff), `affinity` (tasks routed to workers by footprint overlap)
//! or `steal` (round-robin placement onto per-worker lanes). Both
//! `affinity` and `steal` dispatch through work-stealing lanes — an
//! idle worker takes half of the longest queue in one batch — unless
//! `--no-steal` seals each lane (the ablation baseline).
//! With affinity, `--footprints` picks the prediction source: `mine`
//! (default) profiles a sequential hindsight pre-run, `shard` routes
//! from the workload's declared footprints coarsened to shard
//! identities — no pre-run, so the run starts immediately.
//! `--degrade-threshold R`
//! enables serial-fallback degradation: when a `--degrade-window`-sized
//! window of attempts retries at ratio >= R, retries of hot-class tasks
//! serialize until the window cools.
//!
//! The robustness flags drive the failure model: `--panic-policy
//! isolate` survives task-body panics (the failed tasks are listed and
//! the state check is skipped), `--max-attempts N` escalates a task to
//! serialized execution after N conflict aborts, `--watchdog-ms N` arms
//! the commit-clock watchdog, and `--fault-seed`/`--fault-rate` inject
//! deterministic, seeded faults (panics, forced conflicts, commit
//! stalls, cache misses) for chaos testing.

use std::process::ExitCode;
use std::sync::Arc;

use janus::core::{Janus, PanicPolicy};
use janus::detect::{CachedSequenceDetector, ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::fault::FaultPlan;
use janus::obs::{chrome_trace_json, text_report, MetricsRegistry, Recorder, Snapshot};
use janus::sat::global_solver_stats;
use janus::sched::{
    Affinity, Backoff, DegradeConfig, ExactFootprints, SchedulePolicy, ShardFootprints,
    TrainedFootprints, WorkSteal,
};
use janus::train::{train, CommutativityCache, FrozenCache, OnlineLearningCache, TrainConfig};
use janus::workloads::{all_workloads, training_runs, workload_by_name, InputSpec, Workload};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  janus-run list\n  janus-run train <workload> [--no-abstraction] [--cache FILE]\n  janus-run run <workload> [--detector write-set|sequence|cached|online-learning]\n                           [--threads N] [--shards N] [--scale N] [--seed N] [--cache FILE]\n                           [--eager] [--no-gc] [--schedule fifo|backoff|affinity|steal]\n                           [--footprints mine|shard] [--no-steal]\n                           [--degrade-threshold R] [--degrade-window N]\n                           [--panic-policy poison|isolate] [--max-attempts N]\n                           [--watchdog-ms N] [--fault-seed N] [--fault-rate R]\n                           [--trace FILE] [--metrics]"
    );
    ExitCode::from(2)
}

/// Flags that take a value. Everything else with a `--` prefix must be in
/// [`BOOL_FLAGS`]; unknown flags are a usage error, not a silent no-op.
const VALUE_FLAGS: &[&str] = &[
    "detector",
    "threads",
    "shards",
    "scale",
    "seed",
    "cache",
    "trace",
    "schedule",
    "degrade-threshold",
    "degrade-window",
    "panic-policy",
    "max-attempts",
    "watchdog-ms",
    "fault-seed",
    "fault-rate",
    "footprints",
];
const BOOL_FLAGS: &[&str] = &["no-abstraction", "eager", "no-gc", "metrics", "no-steal"];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if VALUE_FLAGS.contains(&name) {
                    let value = iter
                        .next()
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| format!("flag --{name} requires a value"))?;
                    flags.push((name.to_string(), Some(value)));
                } else if BOOL_FLAGS.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// A numeric flag value, defaulting when absent, erroring on garbage
    /// (instead of silently substituting the default).
    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: invalid value {v:?}")),
        }
    }
}

fn cache_path(args: &Args, workload: &str) -> String {
    args.value("cache")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{workload}.janus-cache"))
}

fn cmd_list() -> ExitCode {
    println!("{:<12} {:<16} ordered  patterns", "name", "source");
    for w in all_workloads() {
        println!(
            "{:<12} {:<16} {:<8} {}",
            w.name(),
            w.source(),
            w.ordered(),
            w.patterns().join(", ")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_train(args: &Args) -> ExitCode {
    let Some(name) = args.positional.get(1) else {
        return usage();
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?}; try `janus-run list`");
        return ExitCode::FAILURE;
    };
    let use_abstraction = !args.flag("no-abstraction");
    eprintln!(
        "training {name} on {:?} (abstraction={use_abstraction})...",
        workload.training_inputs()
    );
    let runs = training_runs(workload.as_ref());
    let (cache, report) = train(
        &runs,
        TrainConfig {
            use_abstraction,
            verify_symbolic: true,
        },
    );
    println!(
        "mined {} pairs -> {} entries ({} rejected; symbolic proofs {}/{})",
        report.pairs_mined,
        report.entries_added,
        report.pairs_rejected,
        report.symbolic_proved,
        report.symbolic_attempted,
    );
    let solver = global_solver_stats();
    if solver.decisions + solver.propagations > 0 {
        println!(
            "solver: {} decisions  {} conflicts  {} propagations  {} restarts",
            solver.decisions, solver.conflicts, solver.propagations, solver.restarts,
        );
    }
    let path = cache_path(args, name);
    if let Err(e) = std::fs::write(&path, cache.to_text()) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("cache written to {path}");
    ExitCode::SUCCESS
}

enum CacheLoadError {
    /// The file is absent or unreadable: the user has not trained yet.
    Unreadable(String),
    /// The file exists but fails version, parse or checksum validation.
    Corrupt(String),
}

fn load_cache(path: &str) -> Result<CommutativityCache, CacheLoadError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CacheLoadError::Unreadable(format!("cannot read {path}: {e}")))?;
    CommutativityCache::from_text(&text)
        .map_err(|e| CacheLoadError::Corrupt(format!("{path}: {e}")))
}

fn cmd_run(args: &Args) -> ExitCode {
    let Some(name) = args.positional.get(1) else {
        return usage();
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?}; try `janus-run list`");
        return ExitCode::FAILURE;
    };
    let w: &dyn Workload = workload.as_ref();
    let default_input = w.production_inputs()[0];
    let (threads, scale, seed) = match (
        args.numeric::<usize>("threads", 4),
        args.numeric::<usize>("scale", default_input.scale),
        args.numeric::<u64>("seed", default_input.seed),
    ) {
        (Ok(t), Ok(sc), Ok(se)) => (t, sc, se),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let shards = match args.numeric::<usize>("shards", 8) {
        Ok(n) if (1..=64).contains(&n) => n,
        Ok(n) => {
            eprintln!("error: flag --shards: expected a count in 1..=64, got {n}");
            return usage();
        }
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let input = InputSpec::new(scale, default_input.degree, seed);

    // The fault plan is parsed before the detector so cache-miss
    // injection can be threaded into cached detection.
    let fault_rate = match args.value("fault-rate").map(str::parse::<f64>) {
        None => None,
        Some(Ok(r)) if (0.0..=1.0).contains(&r) => Some(r),
        Some(_) => {
            eprintln!("error: flag --fault-rate: expected a rate in [0, 1]");
            return usage();
        }
    };
    let fault_seed = match args.numeric::<u64>("fault-seed", 0) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let fault_plan = (args.value("fault-seed").is_some() || fault_rate.is_some()).then(|| {
        Arc::new(FaultPlan::seeded(
            fault_seed,
            fault_rate.unwrap_or(FaultPlan::DEFAULT_RATE),
        ))
    });

    let detector_name = args.value("detector").unwrap_or("sequence");
    let relax = w.relaxations();
    let mut cache_for_metrics: Option<Arc<FrozenCache>> = None;
    let detector: Arc<dyn ConflictDetector> = match detector_name {
        "write-set" => Arc::new(WriteSetDetector::new()),
        "sequence" => Arc::new(SequenceDetector::with_relaxations(relax)),
        "online-learning" => {
            let mut d =
                CachedSequenceDetector::with_relaxations(OnlineLearningCache::new(true), relax);
            if let Some(plan) = &fault_plan {
                d = d.with_faults(Arc::clone(plan));
            }
            Arc::new(d)
        }
        "cached" => {
            let path = cache_path(args, name);
            match load_cache(&path) {
                Ok(cache) => {
                    // Freeze at the load/production boundary: queries
                    // from the worker threads run against the immutable
                    // hash-indexed form, lock-free.
                    let cache = Arc::new(cache.freeze());
                    eprintln!("loaded {} cache entries from {path} (frozen)", cache.len());
                    cache_for_metrics = Some(Arc::clone(&cache));
                    let mut d = CachedSequenceDetector::with_relaxations(cache, relax);
                    if let Some(plan) = &fault_plan {
                        d = d.with_faults(Arc::clone(plan));
                    }
                    Arc::new(d)
                }
                Err(CacheLoadError::Unreadable(e)) => {
                    eprintln!("{e}\nhint: run `janus-run train {name}` first");
                    return ExitCode::FAILURE;
                }
                Err(CacheLoadError::Corrupt(e)) => {
                    // A rotten cache must not take the run down — only
                    // its speed: fall back to the oracle-free detector.
                    eprintln!(
                        "warning: {e}\nwarning: ignoring the corrupt cache; falling back to \
                         write-set detection (retrain with `janus-run train {name}`)"
                    );
                    Arc::new(WriteSetDetector::new())
                }
            }
        }
        other => {
            eprintln!("unknown detector {other:?}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running {name} (scale={scale}, seed={seed}) on {threads} threads under {detector_name}..."
    );
    let trace_path = args.value("trace").map(str::to_string);
    let want_metrics = args.flag("metrics");
    let recorder = (trace_path.is_some() || want_metrics).then(Recorder::new);
    let scenario = w.build(&input);
    let schedule_name = args.value("schedule").unwrap_or("fifo");
    let no_steal = args.flag("no-steal");
    let seal = |a: Affinity| if no_steal { a.without_stealing() } else { a };
    let schedule: Arc<dyn SchedulePolicy> = match schedule_name {
        "fifo" => Arc::new(janus::sched::Fifo),
        "backoff" => Arc::new(Backoff::default()),
        "steal" => {
            let p = WorkSteal::new(seed);
            Arc::new(if no_steal { p.without_stealing() } else { p })
        }
        "affinity" => match args.value("footprints").unwrap_or("mine") {
            "mine" => {
                // Hindsight profiling: mine each production task's exact
                // footprint from a sequential pre-run on a cloned store,
                // then route overlapping tasks to the same worker.
                eprintln!("mining footprints from a sequential pre-run...");
                let (_, training) = Janus::run_sequential(scenario.store.clone(), &scenario.tasks);
                Arc::new(seal(Affinity::new(Arc::new(
                    TrainedFootprints::from_training_run(&training),
                ))))
            }
            "shard" => {
                // No pre-run: route from the workload's declared
                // footprints, coarsened to the shard identities the
                // commit path actually locks. Skips the sequential
                // mining pass that doubles wall-clock on large inputs.
                if scenario.footprints.is_empty() {
                    eprintln!(
                        "error: workload {name} declares no footprints; use --footprints mine"
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!("routing by declared footprints at shard granularity (no pre-run)...");
                Arc::new(seal(Affinity::new(Arc::new(ShardFootprints::new(
                    Arc::new(ExactFootprints(scenario.footprints.clone())),
                    shards,
                )))))
            }
            other => {
                eprintln!("error: flag --footprints: expected mine|shard, got {other:?}");
                return usage();
            }
        },
        other => {
            eprintln!("unknown schedule {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let degrade_threshold = match args.value("degrade-threshold").map(str::parse::<f64>) {
        None => None,
        Some(Ok(t)) if t >= 0.0 => Some(t),
        Some(_) => {
            eprintln!("error: flag --degrade-threshold: expected a non-negative ratio");
            return usage();
        }
    };
    let degrade_window = match args.numeric::<u64>("degrade-window", 32) {
        Ok(n) if n >= 1 => n,
        Ok(_) => {
            eprintln!("error: flag --degrade-window: must be at least 1");
            return usage();
        }
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let panic_policy = match args.value("panic-policy").unwrap_or("poison") {
        "poison" => PanicPolicy::Poison,
        "isolate" => PanicPolicy::Isolate,
        other => {
            eprintln!("error: flag --panic-policy: expected poison|isolate, got {other:?}");
            return usage();
        }
    };
    let max_attempts = match args.value("max-attempts").map(str::parse::<u32>) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        Some(_) => {
            eprintln!("error: flag --max-attempts: expected a positive attempt budget");
            return usage();
        }
    };
    let watchdog_ms = match args.numeric::<u64>("watchdog-ms", 0) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let mut janus = Janus::new(Arc::clone(&detector))
        .threads(threads)
        .shards(shards)
        .ordered(w.ordered())
        .eager_privatization(args.flag("eager"))
        .gc_history(!args.flag("no-gc"))
        .schedule(schedule)
        .panic_policy(panic_policy);
    if let Some(threshold) = degrade_threshold {
        janus = janus.degrade(DegradeConfig {
            window: degrade_window,
            threshold,
        });
    }
    if let Some(budget) = max_attempts {
        janus = janus.max_attempts(budget);
    }
    if watchdog_ms > 0 {
        janus = janus.watchdog(std::time::Duration::from_millis(watchdog_ms));
    }
    if let Some(plan) = &fault_plan {
        janus = janus.faults(Arc::clone(plan));
    }
    if let Some(rec) = &recorder {
        janus = janus.recorder(Arc::clone(rec));
    }
    if panic_policy == PanicPolicy::Isolate && fault_plan.is_some() {
        // Injected panics are expected by construction: keep their
        // backtraces out of the chaos run's output. Genuine panics
        // still print through the default hook.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("janus-fault:"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    let outcome = janus.run(scenario.store, scenario.tasks);

    // A workload's state check assumes every task committed; once tasks
    // were isolated, the invariant no longer applies.
    let (ok, state) = if outcome.failed.is_empty() {
        let ok = (scenario.check)(&outcome.store);
        (ok, if ok { "ok" } else { "INVALID" })
    } else {
        (true, "skipped (failed tasks)")
    };
    println!(
        "commits: {}  retries: {}  retry/txn: {:.3}  wall: {:?}  gc-reclaimed: {}  state: {}",
        outcome.stats.commits,
        outcome.stats.retries,
        outcome.stats.retry_ratio(),
        outcome.stats.wall,
        outcome.stats.history_reclaimed,
        state,
    );
    let robust = outcome.stats.faults_injected
        + outcome.stats.tasks_failed
        + outcome.stats.retry_budget_escalations
        + outcome.stats.watchdog_fires;
    if fault_plan.is_some() || robust > 0 {
        println!(
            "robustness: {} faults injected  {} tasks failed  {} budget escalations  \
             {} watchdog fires",
            outcome.stats.faults_injected,
            outcome.stats.tasks_failed,
            outcome.stats.retry_budget_escalations,
            outcome.stats.watchdog_fires,
        );
    }
    if !outcome.failed.is_empty() {
        println!("failed tasks ({}):", outcome.failed.len());
        for f in &outcome.failed {
            println!(
                "  task {}: {} (after {} attempts)",
                f.task, f.message, f.attempts
            );
        }
    }
    println!(
        "detection: {} ops scanned  {} cells checked  {} windows zero-copy  {} delta re-validations",
        outcome.stats.detect_ops_scanned,
        detector.stats().cells_checked(),
        outcome.stats.zero_copy_windows,
        outcome.stats.delta_revalidations,
    );
    println!(
        "fast path: {} segments skipped by fingerprint  {} segments scanned",
        outcome.stats.fastpath_segments_skipped, outcome.stats.fastpath_segments_scanned,
    );
    if schedule_name != "fifo" || outcome.sched.degrade_windows > 0 {
        println!(
            "schedule ({schedule_name}): {} dispatched  {} backoff waits ({} steps)  \
             {} affinity hits  {} steals  {} degraded windows  {} serial retries",
            outcome.sched.dispatched,
            outcome.sched.backoff_waits,
            outcome.sched.backoff_steps,
            outcome.sched.affinity_hits,
            outcome.sched.affinity_steals,
            outcome.sched.degrade_windows,
            outcome.sched.serial_retries,
        );
        let steal = &outcome.sched.steal;
        if steal.attempts > 0 || steal.parks_with_work > 0 {
            println!(
                "stealing: {} attempts  {} batches  {} tasks moved  {} parks with work  \
                 victim depth {}",
                steal.attempts,
                steal.batches,
                steal.stolen_tasks,
                steal.parks_with_work,
                steal.queue_depth.render(),
            );
        }
    }
    let by_class = detector.stats().conflicts_by_class();
    if !by_class.is_empty() {
        println!("conflicting classes:");
        for (class, n) in by_class.into_iter().take(6) {
            println!("  {class}: {n}");
        }
    }
    let solver = global_solver_stats();
    if solver.decisions + solver.propagations > 0 {
        println!(
            "solver: {} decisions  {} conflicts  {} propagations  {} restarts",
            solver.decisions, solver.conflicts, solver.propagations, solver.restarts,
        );
    }

    if let Some(rec) = recorder {
        let trace = rec.finish();
        if let Some(path) = &trace_path {
            if let Err(e) = std::fs::write(path, chrome_trace_json(&trace)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "trace written to {path} ({} events, {} dropped; load in chrome://tracing)",
                trace.len(),
                trace.dropped()
            );
        }
        if want_metrics {
            let mut metrics = MetricsRegistry::new();
            metrics.absorb(&outcome.stats);
            metrics.absorb(&outcome.sched);
            metrics.absorb(&outcome.sched.steal);
            metrics.merge_histogram("steal.queue_depth", &outcome.sched.steal.queue_depth);
            metrics.absorb(&outcome.shard_stats);
            metrics.merge_histogram("shard.lock_wait_ns", &outcome.shard_stats.lock_wait_ns());
            metrics.absorb(detector.stats() as &dyn Snapshot);
            if let Some(cache) = &cache_for_metrics {
                metrics.absorb(cache.stats());
            }
            if let Some(plan) = &fault_plan {
                metrics.absorb(plan.stats());
            }
            metrics.absorb(&global_solver_stats());
            metrics.absorb_trace(&trace);
            println!("--- metrics ---");
            print!("{}", metrics.render());
            println!("{}", text_report(&trace, 6));
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("train") => cmd_train(&args),
        Some("run") => cmd_run(&args),
        _ => usage(),
    }
}
