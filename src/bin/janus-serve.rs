//! `janus-serve` — a long-running block-execution service over one
//! persistent JANUS store.
//!
//! ```text
//! janus-serve [--threads N] [--shards N] [--locs N]
//!             [--mode pipelined|barrier] [--ordered]
//!             [--max-inflight N] [--detector sequence|write-set]
//!             [--panic-policy poison|isolate] [--max-attempts N]
//!             [--watchdog-ms N] [--fault-seed N] [--fault-rate R]
//!             [--metrics] [--listen ADDR]
//!             [--wal-dir DIR] [--wal-fsync always|every-n:N|interval-ms:N]
//! ```
//!
//! The service boots `--locs` integer accounts (classes `acct0..`,
//! value 0) and then speaks a line protocol on stdin/stdout — or, with
//! `--listen ADDR`, on successive TCP connections:
//!
//! ```text
//! batch <id> <item> ...     submit one block; items are `i:+d` (add d
//!                           to account i) or `i>j:d` (transfer d from
//!                           i to j, two ops in one transaction)
//!   -> admitted <id> txns=<n>   queued for execution
//!   -> shed <id>                inflight queue full; batch dropped
//! read <i>                  -> value <i> <v>   committed value now
//! stats                     -> stats admitted=... shed=... ...
//! drain                     wait for every admitted block
//!   -> done <id> ... (one per block, as blocks retire)
//!   -> drained commit_seq=<n>
//! quit                      drain, report, exit (EOF does the same)
//!   -> bye commit_seq=<n> txns_committed=<n>
//! ```
//!
//! Every admitted block eventually produces exactly one
//! `done <id> status=committed|failed commits=<c> ...` line. Failure is
//! block-scoped: a poison panic or watchdog fire inside one block
//! yields `status=failed` for that block and the service keeps serving
//! — the satellite containment guarantee, exercised by the CI serve
//! job with `--fault-rate`.
//!
//! Admission control is a bounded inflight queue (`--max-inflight`,
//! default 4): when the pipeline lags, new batches are *shed* with a
//! distinct response instead of queueing without bound, and the queue
//! depth histogram lands in the `--metrics` report under
//! `serve.inflight_depth`.
//!
//! # Durability
//!
//! With `--wal-dir DIR` every committed transaction is journaled to a
//! write-ahead log (fsync cadence per `--wal-fsync`, default
//! `every-n:8` group commit). On boot the service replays any existing
//! journal into the freshly provisioned store before serving, reporting
//! `recovered commit_seq=<n>` on stderr, and continues the global
//! commit sequence from there — exactly once, deduped by commit ticket.
//! `drained commit_seq=<n>` is only printed after the journal is
//! flushed and fsynced up to `n`.
//!
//! Shutdown: `quit` (or EOF) drains the pipeline, flushes + fsyncs the
//! journal, snapshots the store (truncating journaled segments below
//! the watermark) and writes a clean-shutdown marker, so the next boot
//! skips torn-tail scanning. SIGTERM and SIGKILL are deliberately *not*
//! handled — the process dies mid-flight and the next boot recovers
//! from the journal; kill-safety is the design, not a gap. A boot
//! without the marker forces full tail verification (and truncates a
//! torn tail, counting it in `wal.torn_tail_truncations`).

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use janus::block::{
    Admission, AdmissionQueue, BlockExecutor, BlockOutcome, BlockStatus, PipelineMode, ServeStats,
};
use janus::core::{Janus, PanicPolicy, Store, Task};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::fault::FaultPlan;
use janus::log::LocId;
use janus::obs::MetricsRegistry;
use janus::relational::Value;
use janus::wal::{recover, FsyncPolicy, Wal};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  janus-serve [--threads N] [--shards N] [--locs N] [--mode pipelined|barrier]\n              [--ordered] [--max-inflight N] [--detector sequence|write-set]\n              [--panic-policy poison|isolate] [--max-attempts N] [--watchdog-ms N]\n              [--fault-seed N] [--fault-rate R] [--metrics] [--listen ADDR]\n              [--wal-dir DIR] [--wal-fsync always|every-n:N|interval-ms:N]"
    );
    ExitCode::from(2)
}

const VALUE_FLAGS: &[&str] = &[
    "threads",
    "shards",
    "locs",
    "mode",
    "max-inflight",
    "detector",
    "panic-policy",
    "max-attempts",
    "watchdog-ms",
    "fault-seed",
    "fault-rate",
    "listen",
    "wal-dir",
    "wal-fsync",
];
const BOOL_FLAGS: &[&str] = &["ordered", "metrics"];

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            if VALUE_FLAGS.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} requires a value"))?;
                flags.push((name.to_string(), Some(value)));
            } else if BOOL_FLAGS.contains(&name) {
                flags.push((name.to_string(), None));
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(Args { flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: invalid value {v:?}")),
        }
    }
}

/// One protocol command, as handed to the pipeline consumer. Batches go
/// through bounded admission; everything else is control plane.
enum Item {
    Block { id: String, tasks: Vec<Task> },
    Read { acct: usize },
    Stats,
    Drain,
    Quit,
}

/// Parses one `batch` item token into a transaction over the accounts.
/// `i:+d` / `i:-d` adds `d` to account `i`; `i>j:d` moves `d` from `i`
/// to `j` as a single two-op transaction.
fn parse_txn(token: &str, accounts: &[LocId]) -> Result<Task, String> {
    let account = |s: &str| -> Result<LocId, String> {
        let i: usize = s.parse().map_err(|_| format!("bad account {s:?}"))?;
        accounts
            .get(i)
            .copied()
            .ok_or_else(|| format!("account {i} out of range (locs={})", accounts.len()))
    };
    if let Some((from, rest)) = token.split_once('>') {
        let (to, amt) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad transfer {token:?} (want i>j:d)"))?;
        let (src, dst) = (account(from)?, account(to)?);
        let amt: i64 = amt.parse().map_err(|_| format!("bad amount {amt:?}"))?;
        Ok(Task::new(move |tx| {
            tx.add(src, -amt);
            tx.add(dst, amt);
        }))
    } else if let Some((acct, delta)) = token.split_once(':') {
        let loc = account(acct)?;
        let delta: i64 = delta.parse().map_err(|_| format!("bad delta {delta:?}"))?;
        Ok(Task::new(move |tx| tx.add(loc, delta)))
    } else {
        Err(format!("bad item {token:?} (want i:d or i>j:d)"))
    }
}

/// Renders one retired block as its `done` protocol line.
fn done_line(id: &str, outcome: &BlockOutcome) -> String {
    let status = match outcome.status {
        BlockStatus::Committed => "committed",
        BlockStatus::Failed => "failed",
    };
    let mut line = format!(
        "done {id} status={status} commits={} retries={} latency_us={}",
        outcome.commits(),
        outcome.batch.as_ref().map_or(0, |b| b.stats.retries),
        outcome.latency.as_micros(),
    );
    if let Some(err) = &outcome.error {
        line.push_str(&format!(" error={:?}", err));
    }
    line
}

/// The pipeline consumer: owns the executor, drains the admission
/// queue, writes `done`/`value`/`stats` lines. With a journal attached,
/// `drained commit_seq=<n>` is only printed once the journal is fsynced
/// through `n`, and the final exit path snapshots the store and leaves
/// a clean-shutdown marker.
fn consume(
    mut exec: BlockExecutor,
    queue: Arc<AdmissionQueue<Item>>,
    accounts: Vec<LocId>,
    out: Arc<Mutex<Box<dyn Write + Send>>>,
    metrics: bool,
    wal: Option<Arc<Wal>>,
) {
    let stats = Arc::clone(queue.stats());
    // Block ids admitted but not yet reported, in submission order
    // (the executor retires strictly FIFO).
    let mut pending: std::collections::VecDeque<String> = Default::default();
    let say = |line: String| {
        let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    };
    let report = |retired: Vec<BlockOutcome>, pending: &mut std::collections::VecDeque<String>| {
        for outcome in retired {
            let id = pending.pop_front().unwrap_or_else(|| "?".into());
            stats.note_completed(1);
            say(done_line(&id, &outcome));
        }
    };
    while let Some(item) = queue.take() {
        match item {
            Item::Block { id, tasks } => {
                pending.push_back(id);
                let submitted = exec.submit(tasks);
                report(submitted.retired, &mut pending);
            }
            Item::Read { acct } => match accounts.get(acct) {
                Some(&loc) => {
                    let snapshot = exec.store_snapshot();
                    let v = snapshot.value(loc).and_then(Value::as_int).unwrap_or(0);
                    say(format!("value {acct} {v}"));
                }
                None => say(format!("error account {acct} out of range")),
            },
            Item::Stats => {
                report(exec.drain(), &mut pending);
                let s = stats.report();
                let b = exec.stats().report(exec.stream_wall_micros());
                say(format!(
                    "stats admitted={} shed={} completed={} txns_in={} txns_committed={} \
                     blocks_failed={} gate_waits={} overlap_permille={}",
                    s.admitted,
                    s.shed,
                    s.completed,
                    s.txns_in,
                    b.txns_committed,
                    b.blocks_failed,
                    b.gate_waits,
                    b.overlap_permille,
                ));
            }
            Item::Drain => {
                report(exec.drain(), &mut pending);
                // The drained line is a durability promise: everything
                // at or below this sequence survives a kill.
                if let Some(wal) = &wal {
                    if let Err(e) = wal.flush() {
                        say(format!("error wal flush failed: {e}"));
                    }
                }
                say(format!("drained commit_seq={}", exec.commit_seq()));
            }
            Item::Quit => break,
        }
    }
    report(exec.drain(), &mut pending);
    let commit_seq = exec.commit_seq();
    let wall = exec.stream_wall_micros();
    let block_stats = Arc::clone(exec.stats());
    let txns_committed = block_stats.report(wall).txns_committed;
    let (store, shard_report, tail) = exec.finish();
    debug_assert!(tail.is_empty(), "drained before finish");
    if let Some(wal) = &wal {
        // Clean shutdown: everything is drained, so the store is
        // quiescent — snapshot it, truncate journaled history below the
        // watermark, and leave the marker that lets the next boot skip
        // tail verification.
        match wal.snapshot_and_truncate(&store) {
            Ok(seq) => eprintln!("janus-serve: snapshot at commit_seq={seq}"),
            Err(e) => eprintln!("janus-serve: snapshot failed: {e}"),
        }
        if let Err(e) = wal.mark_clean() {
            eprintln!("janus-serve: clean-shutdown marker failed: {e}");
        }
    }
    if metrics {
        let mut m = MetricsRegistry::new();
        block_stats.export(wall, &mut m);
        stats.export(&mut m);
        m.absorb(&shard_report);
        m.merge_histogram("shard.lock_wait_ns", &shard_report.lock_wait_ns());
        if let Some(wal) = &wal {
            m.absorb(wal.stats().as_ref());
        }
        say("--- metrics ---".to_string());
        let rendered = m.render();
        for line in rendered.lines() {
            say(line.to_string());
        }
    }
    say(format!(
        "bye commit_seq={commit_seq} txns_committed={txns_committed}"
    ));
}

/// The protocol reader: parses lines, offers batches through admission,
/// forwards control commands. Returns when the client quits or EOF.
fn serve_connection(
    input: impl BufRead,
    queue: &AdmissionQueue<Item>,
    accounts: &[LocId],
    out: &Arc<Mutex<Box<dyn Write + Send>>>,
) -> bool {
    let stats = Arc::clone(queue.stats());
    let say = |line: String| {
        let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    };
    for line in input.lines() {
        let Ok(line) = line else { break };
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("batch") => {
                let Some(id) = words.next() else {
                    say("error batch needs an id".into());
                    continue;
                };
                let tasks: Result<Vec<Task>, String> =
                    words.map(|t| parse_txn(t, accounts)).collect();
                match tasks {
                    Err(e) => say(format!("error {e}")),
                    Ok(tasks) if tasks.is_empty() => say("error empty batch".into()),
                    Ok(tasks) => {
                        let n = tasks.len() as u64;
                        match queue.offer(Item::Block {
                            id: id.to_string(),
                            tasks,
                        }) {
                            Admission::Admitted => {
                                stats.note_txns_in(n);
                                say(format!("admitted {id} txns={n}"));
                            }
                            Admission::Shed => say(format!("shed {id}")),
                            Admission::Closed => say(format!("closed {id}")),
                        }
                    }
                }
            }
            Some("read") => match words.next().and_then(|w| w.parse().ok()) {
                Some(acct) => queue.push(Item::Read { acct }),
                None => say("error read needs an account index".into()),
            },
            Some("stats") => queue.push(Item::Stats),
            Some("drain") => queue.push(Item::Drain),
            Some("quit") => {
                queue.push(Item::Quit);
                return true;
            }
            Some(other) => say(format!("error unknown command {other:?}")),
        }
    }
    false
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let parsed = (|| -> Result<(usize, usize, usize, usize, u64, u64), String> {
        Ok((
            args.numeric("threads", 4)?,
            args.numeric("shards", 8)?,
            args.numeric("locs", 64)?,
            args.numeric("max-inflight", 4)?,
            args.numeric("max-attempts", 0u64)?,
            args.numeric("watchdog-ms", 0u64)?,
        ))
    })();
    let (threads, shards, locs, max_inflight, max_attempts, watchdog_ms) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if locs == 0 || max_inflight == 0 {
        eprintln!("error: --locs and --max-inflight must be at least 1");
        return usage();
    }
    let mode = match args.value("mode").unwrap_or("pipelined") {
        "pipelined" => PipelineMode::Pipelined,
        "barrier" => PipelineMode::Barrier,
        other => {
            eprintln!("error: flag --mode: expected pipelined|barrier, got {other:?}");
            return usage();
        }
    };
    let detector: Arc<dyn ConflictDetector> = match args.value("detector").unwrap_or("sequence") {
        "sequence" => Arc::new(SequenceDetector::new()),
        "write-set" => Arc::new(WriteSetDetector::new()),
        other => {
            eprintln!("error: flag --detector: expected sequence|write-set, got {other:?}");
            return usage();
        }
    };
    let panic_policy = match args.value("panic-policy").unwrap_or("poison") {
        "poison" => PanicPolicy::Poison,
        "isolate" => PanicPolicy::Isolate,
        other => {
            eprintln!("error: flag --panic-policy: expected poison|isolate, got {other:?}");
            return usage();
        }
    };
    let fault_rate = match args.value("fault-rate").map(str::parse::<f64>) {
        None => None,
        Some(Ok(r)) if (0.0..=1.0).contains(&r) => Some(r),
        Some(_) => {
            eprintln!("error: flag --fault-rate: expected a rate in [0, 1]");
            return usage();
        }
    };
    let fault_seed = match args.numeric::<u64>("fault-seed", 0) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    let wal_policy = match args
        .value("wal-fsync")
        .unwrap_or("every-n:8")
        .parse::<FsyncPolicy>()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: flag --wal-fsync: {e}");
            return usage();
        }
    };

    let mut store = Store::new();
    let accounts: Vec<LocId> = (0..locs)
        .map(|i| store.alloc(format!("acct{i}").as_str(), Value::int(0)))
        .collect();

    // With a journal directory, replay whatever survived the last run
    // into the freshly provisioned store before serving anything, and
    // restart the global commit sequence where it left off.
    let mut seq_base = 0u64;
    let wal: Option<Arc<Wal>> = match args.value("wal-dir") {
        None => None,
        Some(dir) => {
            let rec = match recover(std::path::Path::new(dir), store) {
                Ok(rec) => rec,
                Err(e) => {
                    eprintln!("error: wal recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "janus-serve: recovered commit_seq={} (commits={} skips={} dupes={} \
                 torn_truncated={} snapshot={:?} clean={})",
                rec.commit_seq,
                rec.commits_replayed,
                rec.skips_replayed,
                rec.duplicates_skipped,
                rec.torn_tail_truncations,
                rec.snapshot_seq,
                rec.clean,
            );
            seq_base = rec.commit_seq;
            match Wal::open(std::path::Path::new(dir), wal_policy, rec.commit_seq) {
                Ok(wal) => {
                    wal.stats().note_recovery(&rec);
                    store = rec.store;
                    Some(wal)
                }
                Err(e) => {
                    eprintln!("error: cannot open wal in {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut janus = Janus::new(detector)
        .threads(threads)
        .shards(shards)
        .ordered(args.flag("ordered"))
        .panic_policy(panic_policy);
    if max_attempts > 0 {
        janus = janus.max_attempts(max_attempts as u32);
    }
    if watchdog_ms > 0 {
        janus = janus.watchdog(std::time::Duration::from_millis(watchdog_ms));
    }
    if let Some(wal) = &wal {
        janus = janus.commit_sink(wal.sink());
    }
    if args.value("fault-seed").is_some() || fault_rate.is_some() {
        janus = janus.faults(Arc::new(FaultPlan::seeded(
            fault_seed,
            fault_rate.unwrap_or(FaultPlan::DEFAULT_RATE),
        )));
        {
            // Injected panics are expected (and block-scoped under
            // either policy); keep their backtraces out of the service
            // log. Genuine panics still print.
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("janus-fault:"));
                if !injected {
                    default_hook(info);
                }
            }));
        }
    }

    let exec = BlockExecutor::new(janus, store, mode).with_seq_base(seq_base);
    let queue = Arc::new(AdmissionQueue::new(
        max_inflight,
        Arc::new(ServeStats::default()),
    ));
    let metrics = args.flag("metrics");

    eprintln!(
        "janus-serve: {threads} threads, {shards} shards, {locs} accounts, mode={mode:?}, \
         max-inflight={max_inflight}"
    );

    if let Some(addr) = args.value("listen") {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot listen on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("janus-serve: listening on {addr} (successive sessions; quit ends the service)");
        // One consumer thread outlives every client session; its output
        // sink is swapped to point at whichever connection is current.
        // A sink that starts life as io::sink() keeps pre-connection
        // (and post-disconnect) chatter from going anywhere surprising.
        let out: Arc<Mutex<Box<dyn Write + Send>>> =
            Arc::new(Mutex::new(Box::new(std::io::sink())));
        let consumer = {
            let (queue, accounts, out, wal) = (
                Arc::clone(&queue),
                accounts.clone(),
                Arc::clone(&out),
                wal.clone(),
            );
            std::thread::spawn(move || consume(exec, queue, accounts, out, metrics, wal))
        };
        // A transient accept() failure (EMFILE, aborted handshake, ...)
        // must not take down the whole service: retry with bounded
        // exponential backoff, and only give up after several failures
        // in a row with no intervening successful session.
        let mut consecutive_failures = 0u32;
        let failed = loop {
            match listener.accept() {
                Ok((conn, peer)) => {
                    consecutive_failures = 0;
                    eprintln!("janus-serve: client {peer}");
                    let write_half = match conn.try_clone() {
                        Ok(w) => w,
                        Err(e) => {
                            eprintln!("janus-serve: cannot clone connection for {peer}: {e}");
                            continue;
                        }
                    };
                    *out.lock().unwrap_or_else(|e| e.into_inner()) = Box::new(write_half);
                    if serve_connection(BufReader::new(conn), &queue, &accounts, &out) {
                        break false;
                    }
                    *out.lock().unwrap_or_else(|e| e.into_inner()) = Box::new(std::io::sink());
                    eprintln!("janus-serve: client {peer} disconnected; awaiting next session");
                }
                Err(e) => {
                    consecutive_failures += 1;
                    if consecutive_failures > 5 {
                        eprintln!(
                            "error: accept failed {consecutive_failures} times in a row: {e}"
                        );
                        queue.push(Item::Quit);
                        break true;
                    }
                    let wait_ms = 10u64 << consecutive_failures;
                    eprintln!("janus-serve: accept failed ({e}); retrying in {wait_ms}ms");
                    std::thread::sleep(std::time::Duration::from_millis(wait_ms));
                }
            }
        };
        let _ = consumer.join();
        if failed {
            return ExitCode::FAILURE;
        }
    } else {
        let out: Arc<Mutex<Box<dyn Write + Send>>> =
            Arc::new(Mutex::new(Box::new(std::io::stdout())));
        let consumer = {
            let (queue, accounts, out, wal) = (
                Arc::clone(&queue),
                accounts.clone(),
                Arc::clone(&out),
                wal.clone(),
            );
            std::thread::spawn(move || consume(exec, queue, accounts, out, metrics, wal))
        };
        let stdin = std::io::stdin();
        if !serve_connection(stdin.lock(), &queue, &accounts, &out) {
            queue.push(Item::Quit);
        }
        let _ = consumer.join();
    }
    ExitCode::SUCCESS
}
