//! **janus** — speculative parallelization with sequence-based
//! ("hindsight") conflict detection.
//!
//! A from-scratch Rust reproduction of *JANUS: Exploiting Parallelism via
//! Hindsight* (Tripp, Manevich, Field, Sagiv — PLDI 2012). JANUS runs a
//! list of tasks optimistically in parallel; instead of aborting
//! transactions whenever their read/write sets overlap (the write-set
//! approach), it checks whether the *sequences* of operations the
//! transactions performed on each shared location commute as a whole —
//! admitting the identity, reduction, shared-as-local, equal-writes and
//! spurious-reads patterns that real programs exhibit.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `janus-core` | the Figure 7 protocol: [`core::Janus`], [`core::Store`], [`core::Task`], [`core::TxView`] |
//! | [`detect`] | `janus-detect` | conflict detectors and relaxations |
//! | [`train`] | `janus-train` | offline training, sequence abstraction, the commutativity cache |
//! | [`adt`] | `janus-adt` | relational abstraction specifications (counters, maps, bit sets, canvases) |
//! | [`relational`] | `janus-relational` | relations, tuples, formulas, footprints (§6) |
//! | [`log`] | `janus-log` | operation logs and per-location decomposition |
//! | [`sat`] | `janus-sat` | the SAT solver behind symbolic equivalence checks |
//! | [`persist`] | `janus-persist` | the persistent map behind O(1) snapshots |
//! | [`obs`] | `janus-obs` | lifecycle tracing, abort attribution, the unified metrics registry |
//! | [`sched`] | `janus-sched` | contention-aware scheduling: backoff, affinity routing, serial-fallback degradation |
//! | [`fault`] | `janus-fault` | deterministic fault-injection plans for chaos testing |
//! | [`block`] | `janus-block` | the pipelined block-executor service: warm worker pool, cross-batch commit gating, admission control |
//! | [`wal`] | `janus-wal` | the durable commit journal: segmented write-ahead log, snapshots, crash recovery |
//! | [`workloads`] | `janus-workloads` | the five evaluation benchmarks |
//!
//! # Quickstart
//!
//! ```
//! use janus::core::{Janus, Store, Task};
//! use janus::detect::SequenceDetector;
//! use janus::relational::Value;
//! use std::sync::Arc;
//!
//! // A shared counter every task bumps and restores (Figure 1's
//! // identity pattern): write-set STMs serialize this loop, JANUS
//! // runs it conflict-free.
//! let mut store = Store::new();
//! let work = store.alloc("work", Value::int(0));
//! let tasks: Vec<Task> = (1..=8)
//!     .map(|w| {
//!         Task::new(move |tx| {
//!             tx.add(work, w);
//!             // ... process the item ...
//!             tx.add(work, -w);
//!         })
//!     })
//!     .collect();
//!
//! let outcome = Janus::new(Arc::new(SequenceDetector::new()))
//!     .threads(4)
//!     .run(store, tasks);
//! assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
//! assert_eq!(outcome.stats.retries, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The parallelization protocol (re-export of `janus-core`).
pub mod core {
    pub use janus_core::*;
}

/// Conflict detectors and consistency relaxations (re-export of
/// `janus-detect`).
pub mod detect {
    pub use janus_detect::*;
}

/// Offline training and the commutativity cache (re-export of
/// `janus-train`).
pub mod train {
    pub use janus_train::*;
}

/// Abstraction specifications for shared ADTs (re-export of `janus-adt`).
pub mod adt {
    pub use janus_adt::*;
}

/// The relational state model (re-export of `janus-relational`).
pub mod relational {
    pub use janus_relational::*;
}

/// Operation logs and decomposition (re-export of `janus-log`).
pub mod log {
    pub use janus_log::*;
}

/// The SAT solver (re-export of `janus-sat`).
pub mod sat {
    pub use janus_sat::*;
}

/// Persistent data structures (re-export of `janus-persist`).
pub mod persist {
    pub use janus_persist::*;
}

/// Transaction-lifecycle tracing, abort attribution and the unified
/// metrics registry (re-export of `janus-obs`).
pub mod obs {
    pub use janus_obs::*;
}

/// Contention-aware scheduling policies, backoff and serial-fallback
/// degradation (re-export of `janus-sched`).
pub mod sched {
    pub use janus_sched::*;
}

/// Deterministic fault-injection plans for chaos testing (re-export of
/// `janus-fault`).
pub mod fault {
    pub use janus_fault::*;
}

/// The pipelined block-executor service (re-export of `janus-block`).
pub mod block {
    pub use janus_block::*;
}

/// The durable commit journal and crash recovery (re-export of
/// `janus-wal`).
pub mod wal {
    pub use janus_wal::*;
}

/// The five evaluation benchmarks (re-export of `janus-workloads`).
pub mod workloads {
    pub use janus_workloads::*;
}
