//! A self-contained shim for the subset of the `rand` API this workspace
//! uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. The build environment has no
//! crates.io access, so the real crate cannot be fetched.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of 64-bit values.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "gen_range over an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Small, fast RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small xorshift64*-based RNG (stand-in for rand's `SmallRng`;
    /// the stream differs from upstream, which no caller relies on).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
            let y = a.gen_range(0u8..=4);
            assert_eq!(y, b.gen_range(0u8..=4));
            assert!(y <= 4);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0usize..1000)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0usize..1000)).collect();
        assert_ne!(va, vb);
    }
}
