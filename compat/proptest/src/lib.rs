//! A self-contained, dependency-free property-testing shim.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `proptest` API the workspace uses:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `Just`, `any`, range and tuple strategies,
//! `Strategy::prop_map`/`prop_recursive`/`boxed`, `BoxedStrategy`,
//! `ProptestConfig` and `collection::vec`.
//!
//! Semantics are intentionally simple: each test runs a configurable
//! number of cases with values drawn from a deterministic per-test RNG
//! (seeded from the test's module path and name, so failures reproduce).
//! There is no shrinking — failing inputs are reported as generated.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic RNG (splitmix64) used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (e.g. a test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed once so short names diverge.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Creates an RNG from a numeric seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Multiply-shift; bias is negligible for test-sized ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Run-configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for the previous
    /// recursion level and returns a strategy for the next. `_desired`
    /// and `_branch` are accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait ErasedStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `alternatives` must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let mut __run = move || $body;
                __run();
            }
        }
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3i64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (0u8..=4).generate(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..200 {
            let v = crate::collection::vec(0i32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = crate::collection::vec(0i32..5, 3).generate(&mut rng);
        assert_eq!(exact.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0i64..100, flip in any::<bool>()) {
            prop_assume!(x != 99);
            let y = if flip { x } else { -x };
            prop_assert!(y.abs() < 99, "|{y}| must stay below 99");
            prop_assert_eq!(y.abs(), x);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), Just(15i64), (0i64..3).prop_map(|x| x * 100)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v % 100 == 0);
        }
    }
}
