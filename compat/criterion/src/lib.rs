//! A self-contained micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace uses (the build environment cannot
//! fetch the real crate). Measurement is deliberately simple: a warm-up
//! phase, then timed batches until the measurement budget is spent, with
//! mean ns/iteration printed per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Plot backend selector (accepted and ignored: this shim never plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlottingBackend {
    /// No plots.
    None,
    /// Gnuplot (ignored).
    Gnuplot,
    /// Plotters (ignored).
    Plotters,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until
    /// the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a batch size that runs in ~1ms, while warming
        // caches for at least the configured duration.
        let warm_start = Instant::now();
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if warm_start.elapsed() >= self.warm_up && dt >= Duration::from_micros(200) {
                break;
            }
            if dt < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
        }
        // Measurement.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.last_mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        println!(
            "{}/{: <40} time: {:>12.1} ns/iter",
            self.name, id.name, b.last_mean_ns
        );
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    /// Finishes the group (no-op; reports were printed eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Accepted and ignored: this shim never plots.
    pub fn plotting_backend(self, _backend: PlottingBackend) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!("{: <46} time: {:>12.1} ns/iter", name, b.last_mean_ns);
        self
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
