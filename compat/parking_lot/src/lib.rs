//! An offline shim for the subset of `parking_lot` this workspace uses,
//! implemented over `std::sync`. The observable API difference from std
//! is preserved from parking_lot: `lock`/`read`/`write` return guards
//! directly (poison is swallowed — a poisoned lock just hands back the
//! inner data, which matches parking_lot's no-poisoning semantics).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn guards_survive_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
