//! Ordered speculation with consistency relaxations: the JGraphT greedy
//! graph-coloring loop (Figure 3 of the paper).
//!
//! Greedy coloring mandates ordered traversal, so the run commits
//! in-order (Theorem 4.1 then guarantees the parallel run produces the
//! exact sequential coloring). Two relaxations — both part of the
//! workload's specification, as in §5.3 — unlock the parallelism:
//!
//! * `usedColors` is a scratch bit set cleared before use: RAW and WAW
//!   conflicts on it are tolerated;
//! * `maxColor` reads are spurious: RAW conflicts are suppressed, but
//!   two different writes still conflict.
//!
//! Run with: `cargo run --release --example graph_coloring`

use std::sync::Arc;

use janus::core::Janus;
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::workloads::{InputSpec, JGraphTColor, Workload};

fn main() {
    let workload = JGraphTColor;
    let input = InputSpec::new(120, 5, 7);

    // Sequential reference coloring.
    let reference = workload.build(&input);
    let (seq_store, _) = Janus::run_sequential(reference.store, &reference.tasks);
    println!(
        "sequential greedy coloring: proper = {}",
        (reference.check)(&seq_store)
    );

    for (label, detector) in [
        (
            "write-set",
            Arc::new(WriteSetDetector::new()) as Arc<dyn ConflictDetector>,
        ),
        (
            "sequence + relaxations",
            Arc::new(SequenceDetector::with_relaxations(workload.relaxations())),
        ),
    ] {
        let scenario = workload.build(&input);
        let outcome = Janus::new(detector)
            .threads(4)
            .ordered(true) // greedy coloring is order-sensitive
            .run(scenario.store, scenario.tasks);
        let proper = (scenario.check)(&outcome.store);
        // In-order commits must reproduce the sequential coloring bit for
        // bit.
        let same_as_sequential = (0..seq_store.len() as u64).all(|l| {
            let loc = janus::log::LocId(l);
            seq_store.value(loc) == outcome.store.value(loc)
        });
        println!(
            "{label:>24}: {} retries, proper coloring: {proper}, equals sequential: {same_as_sequential}",
            outcome.stats.retries
        );
    }
    println!(
        "\nThe only genuine conflicts are reads of a neighbor's color that\n\
         committed mid-flight; the scratch bit set and the max-color\n\
         bookkeeping no longer force serialization."
    );
}
