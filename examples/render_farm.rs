//! Equal-writes in action: concurrent rendering onto one canvas (the
//! Weka GraphVisualizer pattern, Figure 5 of the paper).
//!
//! Tasks paint nodes and edges of a graph onto a shared pixel relation.
//! Overlapping pixels are painted the *same* color almost always (edges
//! are all black), so sequence-based detection admits the overlap; a
//! write-set STM conflicts on every shared pixel and on the brush-color
//! cell that every task writes.
//!
//! Run with: `cargo run --release --example render_farm`

use std::sync::Arc;

use janus::adt::Canvas;
use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, RelaxationSpec, SequenceDetector, WriteSetDetector};

const BLACK: i64 = 0;
const RED: i64 = 2;

fn build() -> (Store, Vec<Task>, Canvas) {
    let mut store = Store::new();
    let canvas = Canvas::alloc(&mut store, "display");
    // A ring of 12 tiles; each task draws its tile's frame and the black
    // separator line it shares with the next tile.
    let tiles = 12i64;
    let tasks: Vec<Task> = (0..tiles)
        .map(|t| {
            let canvas = canvas.clone();
            Task::new(move |tx: &mut TxView| {
                let x0 = t * 10;
                // Tile interior in a per-tile color: disjoint pixels.
                canvas.set_color(tx, RED + t % 3);
                canvas.fill_rect(tx, x0 + 1, 1, 8, 4);
                janus::workloads::local_work(60_000);
                // Shared separator columns at x0 and x0+10 — painted
                // black by *both* adjacent tiles: the equal-writes
                // pattern.
                canvas.set_color(tx, BLACK);
                canvas.draw_line(tx, x0, 0, x0, 5);
                canvas.draw_line(tx, (x0 + 10) % (tiles * 10), 0, (x0 + 10) % (tiles * 10), 5);
            })
        })
        .collect();
    (store, tasks, canvas)
}

fn main() {
    for (label, detector) in [
        (
            "write-set",
            Arc::new(WriteSetDetector::new()) as Arc<dyn ConflictDetector>,
        ),
        (
            "sequence",
            Arc::new(SequenceDetector::with_relaxations(
                RelaxationSpec::new().with_ooo_inference(),
            )),
        ),
    ] {
        let (store, tasks, canvas) = build();
        let outcome = Janus::new(detector).threads(4).run(store, tasks);
        println!(
            "{label:>10}: {} commits, {} retries, {} pixels painted",
            outcome.stats.commits,
            outcome.stats.retries,
            canvas.painted(&outcome.store),
        );
    }
    println!(
        "\nBoth neighbors paint the shared separator black, so the\n\
         sequence detector's equal-writes condition admits the overlap;\n\
         write-set detection sees write/write conflicts on every shared\n\
         pixel and on the brush cell."
    );
}
