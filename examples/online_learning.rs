//! Online training via memoization (§5.3 of the paper): skip the offline
//! phase entirely and let the first production run train the cache.
//!
//! The first conflict query of each shape pays for a precise sequence
//! check; the learned abstract pair then answers every later query of
//! that shape at cache speed. Useful when no representative training
//! inputs exist.
//!
//! Run with: `cargo run --release --example online_learning`

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::CachedSequenceDetector;
use janus::relational::Value;
use janus::train::OnlineLearningCache;

fn main() {
    let mut store = Store::new();
    let work = store.alloc("work", Value::int(0));
    let total = store.alloc("total", Value::int(0));

    // Identity + reduction, as in Figure 1 — but with no training phase.
    // A barrier makes the first wave of transactions genuinely overlap
    // even on a single-core host, so conflict queries (and learning)
    // demonstrably happen.
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let tasks: Vec<Task> = (1..=40i64)
        .map(|w| {
            let barrier = Arc::clone(&barrier);
            Task::new(move |tx: &mut TxView| {
                if w <= 4 {
                    barrier.wait();
                }
                tx.add(work, w);
                janus::workloads::local_work(30_000);
                tx.add(total, w); // reduction
                tx.add(work, -w); // identity restored
            })
        })
        .collect();

    let detector = Arc::new(CachedSequenceDetector::new(OnlineLearningCache::new(true)));
    let outcome = Janus::new(detector.clone()).threads(4).run(store, tasks);

    let (unique_hits, unique_misses) = detector.oracle().unique_counts();
    println!(
        "{} commits, {} retries; cache learned {} entries online \
         ({unique_misses} learning misses, {unique_hits} unique hits)",
        outcome.stats.commits,
        outcome.stats.retries,
        detector.oracle().len(),
    );
    println!(
        "final work = {}  total = {}",
        outcome
            .store
            .value(work)
            .and_then(Value::as_int)
            .expect("int"),
        outcome
            .store
            .value(total)
            .and_then(Value::as_int)
            .expect("int"),
    );
    assert_eq!(outcome.store.value(work), Some(&Value::int(0)));
    assert_eq!(
        outcome.store.value(total),
        Some(&Value::int((1..=40).sum()))
    );
}
