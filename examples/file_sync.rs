//! The full JANUS pipeline on a realistic scenario: train offline on
//! small inputs, then run production inputs in parallel with the trained
//! commutativity cache (Figure 6 of the paper).
//!
//! The workload is the JFileSync directory-comparison loop (Figure 2):
//! a shared progress monitor whose lists every iteration pushes and pops
//! (identity pattern), shared root-URI fields written per iteration
//! (shared-as-local), and a cancellation flag everyone polls.
//!
//! Run with: `cargo run --release --example file_sync`

use std::sync::Arc;

use janus::core::Janus;
use janus::detect::{CachedSequenceDetector, ConflictDetector, WriteSetDetector};
use janus::train::{train, TrainConfig};
use janus::workloads::{training_runs, InputSpec, JFileSync, Workload};

fn main() {
    let workload = JFileSync;

    // 1. Offline: exercise the application sequentially on the small
    //    Table 6 training inputs and learn commutativity conditions.
    println!("training on {:?} ...", workload.training_inputs());
    let runs = training_runs(&workload);
    let (cache, report) = train(&runs, TrainConfig::default());
    println!(
        "  mined {} candidate pairs -> {} cache entries \
         ({} symbolic proofs attempted, {} succeeded)\n",
        report.pairs_mined, report.entries_added, report.symbolic_attempted, report.symbolic_proved
    );

    // 2. Production: a larger input, parallel execution.
    let input = InputSpec::new(40, 3, 2026);
    for (label, detector) in [
        (
            "write-set",
            Arc::new(WriteSetDetector::new()) as Arc<dyn ConflictDetector>,
        ),
        (
            "sequence (trained)",
            Arc::new(CachedSequenceDetector::with_relaxations(
                train(&runs, TrainConfig::default()).0,
                workload.relaxations(),
            )),
        ),
    ] {
        let scenario = workload.build(&input);
        let outcome = Janus::new(detector)
            .threads(4)
            .run(scenario.store, scenario.tasks);
        let ok = (scenario.check)(&outcome.store);
        println!(
            "{label:>20}: {} commits, {} retries, wall {:?}, monitor balanced: {}",
            outcome.stats.commits, outcome.stats.retries, outcome.stats.wall, ok
        );
    }
    let _ = cache;
    println!(
        "\nEvery iteration restores the monitor before committing, so the\n\
         trained cache answers the conflict queries with 'commutes' and\n\
         the parallel run proceeds abort-free where write-set detection\n\
         keeps throwing work away."
    );
}
