//! Quickstart: parallelize a loop whose iterations look conflicting but
//! aren't.
//!
//! The loop below is Figure 1 of the paper: every iteration bumps a
//! shared `work` counter while it processes an item and restores it when
//! it succeeds. Under a classic write-set STM every pair of overlapping
//! iterations conflicts — the loop serializes (or worse). JANUS's
//! sequence-based detection sees that each transaction's composite effect
//! on `work` is the identity and lets them all run.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use janus::core::{Janus, Store, Task, TxView};
use janus::detect::{ConflictDetector, SequenceDetector, WriteSetDetector};
use janus::relational::Value;

fn items() -> Vec<(i64, u64)> {
    // (weight, amount of processing) per item.
    (1..=24).map(|i| (i, 40_000 + (i as u64) * 5_000)).collect()
}

fn build(store: &mut Store) -> (janus::log::LocId, Vec<Task>) {
    let work = store.alloc("work", Value::int(0));
    let tasks = items()
        .into_iter()
        .map(|(weight, effort)| {
            Task::new(move |tx: &mut TxView| {
                tx.add(work, weight); // work += weightOf(item)
                janus::workloads::local_work(effort); // processItem(item)
                tx.add(work, -weight); // processed successfully
            })
        })
        .collect();
    (work, tasks)
}

fn run(detector: Arc<dyn ConflictDetector>, label: &str) {
    let mut store = Store::new();
    let (work, tasks) = build(&mut store);
    let outcome = Janus::new(detector).threads(4).run(store, tasks);
    println!(
        "{label:>12}: {} commits, {} retries, final work = {}",
        outcome.stats.commits,
        outcome.stats.retries,
        outcome
            .store
            .value(work)
            .and_then(Value::as_int)
            .expect("work is an integer"),
    );
}

fn main() {
    println!("processing {} items on 4 threads\n", items().len());
    run(Arc::new(WriteSetDetector::new()), "write-set");
    run(Arc::new(SequenceDetector::new()), "sequence");
    println!(
        "\nThe write-set detector flags every overlap of the balanced\n\
         add/subtract pairs; sequence-based detection proves each\n\
         transaction acts as the identity on `work` and commits them all."
    );
}
