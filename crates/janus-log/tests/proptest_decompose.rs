//! Property tests for history decomposition.

use janus_log::{decompose, ClassId, LocId, Op, OpKind, ScalarOp};
use janus_relational::{Scalar, Value};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
    Max(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
        K::Max(v) => OpKind::Scalar(ScalarOp::Max(v)),
    }
}

fn step_strategy() -> impl Strategy<Value = (u8, K)> {
    let k = prop_oneof![
        Just(K::Read),
        (-3i64..4).prop_map(K::Add),
        (0i64..4).prop_map(K::Write),
        (0i64..4).prop_map(K::Max),
    ];
    (0u8..4, k)
}

fn build(steps: &[(u8, K)]) -> Vec<Op> {
    let mut values = [0i64; 4].map(Value::int);
    steps
        .iter()
        .map(|&(l, k)| {
            Op::execute(
                LocId(l as u64),
                ClassId::new(format!("loc{l}")),
                kind(k),
                &mut values[l as usize],
            )
            .0
        })
        .collect()
}

proptest! {
    /// Decomposition partitions: every op lands in exactly its location's
    /// bucket, order is preserved, and no op is lost or duplicated.
    #[test]
    fn decomposition_partitions_the_history(
        steps in proptest::collection::vec(step_strategy(), 0..40),
    ) {
        let ops = build(&steps);
        let d = decompose(ops.iter());
        // Totals match.
        let total: usize = d.values().map(|h| h.ops.len()).sum();
        prop_assert_eq!(total, ops.len());
        // Per-location order is the subsequence of the history.
        for (loc, h) in &d {
            let expected: Vec<&Op> = ops.iter().filter(|op| op.loc == *loc).collect();
            prop_assert_eq!(h.ops.len(), expected.len());
            for (a, b) in h.ops.iter().zip(expected) {
                prop_assert!(std::ptr::eq(*a, b), "order must be preserved");
            }
            // Scalar locations are whole-object.
            prop_assert!(h.has_whole);
            // The class is the location's class.
            prop_assert_eq!(h.class.label(), format!("loc{}", loc.0));
        }
    }

    /// `writes()` agrees with the presence of any writing op.
    #[test]
    fn writes_flag_matches_ops(
        steps in proptest::collection::vec(step_strategy(), 1..30),
    ) {
        let ops = build(&steps);
        let d = decompose(ops.iter());
        for h in d.values() {
            let expect = h.ops.iter().any(|op| op.is_write());
            prop_assert_eq!(h.writes(), expect);
        }
    }

    /// Replay determinism: executing the same kinds from the same entry
    /// state yields identical logs (footprints, results and all).
    #[test]
    fn op_execution_is_deterministic(
        steps in proptest::collection::vec(step_strategy(), 0..30),
    ) {
        let a = build(&steps);
        let b = build(&steps);
        prop_assert_eq!(a, b);
    }
}
