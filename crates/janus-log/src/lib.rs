//! Operation logs and per-location history decomposition for JANUS.
//!
//! A JANUS transaction executes against a privatized copy of the shared
//! state and records every shared-state access as an [`Op`] in its log
//! (`t.Log` in Figure 7). Each operation carries the read/write footprint
//! (at the key granularity of [`janus_relational::CellSet`]) that the
//! write-set approach would record — and *nothing more*: this is the
//! "projection" property of §5.3 that lets sequence-based conflict
//! detection reconstruct single-location operation sequences at no extra
//! instrumentation cost.
//!
//! The crate provides:
//!
//! * [`LocId`] / [`ClassId`] — runtime identity and *static class* of a
//!   shared location. Classes are the generalization axis: commutativity
//!   information learned for one `monitor.itemsWeight` during training
//!   applies to every location of the same class in production.
//! * [`ScalarOp`] and [`OpKind`] — memory-level operations (read, write,
//!   fetch-add) and relational ADT operations.
//! * [`Op`] — a logged operation instance with its footprint and result.
//! * [`decompose`] — the `DECOMPOSE` procedure of Figure 8, splitting a
//!   history into the dependent operation subsequences induced by each
//!   accessed location (and, within a relational object, each key).
//! * [`CommittedLog`] / [`HistoryWindow`] — committed segments carrying
//!   their decomposition (computed once, at commit time) and zero-copy
//!   windows of shared segments, the currency of the incremental
//!   validation pipeline.
//! * [`wire`] — the binary effect/value codec shared by the durable
//!   commit journal (`janus-wal`) and its recovery reader.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod committed;
mod decompose;
mod loc;
mod op;
pub mod wire;

pub use committed::{CommittedLog, DecomposedLoc, DecomposedLog, Fingerprint, HistoryWindow};
pub use decompose::{decompose, CellKey, LocHistory};
pub use loc::{ClassId, LocId, SHARD_BITS, SHARD_SPACE};
pub use op::{replay, Op, OpKind, OpResult, ScalarOp};
