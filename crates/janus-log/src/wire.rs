//! Binary record encoding for the durable commit journal.
//!
//! The write-ahead log (`janus-wal`) persists the commit-ordered effect
//! stream: for every committed transaction, the mutations it replayed
//! onto the shared store. This module is the codec — a compact,
//! versionless little-endian encoding of effects (`LocId` + mutating
//! [`OpKind`]) and of whole [`Value`]s (for store snapshots), shared by
//! the journal writer and the recovery reader so the two can never
//! drift apart.
//!
//! Only *effects* are journaled: `read` and `select` observe state but
//! do not change it, so [`encode_effect`] rejects them — replaying the
//! encoded mutations in commit order reconstructs the store exactly
//! (the determinism that makes hindsight validation sound is the same
//! determinism that makes log replay sound).
//!
//! Framing (length prefixes, checksums, record types) lives in
//! `janus-wal`; this module encodes payload bodies only.

use janus_relational::{Fd, Key, RelOp, Relation, Scalar, Schema, Tuple, Value};

use crate::{LocId, OpKind, ScalarOp};

/// A malformed byte sequence, reported with the offset where decoding
/// failed — recovery wraps this into its loud corruption errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset (within the buffer handed to the cursor) of the
    /// failure.
    pub offset: usize,
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over a byte string — the journal's record checksum. Stable
/// across platforms and runs (the same function that keys class-label
/// hashing and persistfmt v2 cache files).
pub fn checksum(bytes: &[u8]) -> u64 {
    crate::committed::fnv1a(bytes)
}

// ---------------------------------------------------------------- write

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_scalar(buf: &mut Vec<u8>, s: &Scalar) {
    match s {
        Scalar::Unit => buf.push(0),
        Scalar::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Scalar::Int(i) => {
            buf.push(2);
            put_i64(buf, *i);
        }
        Scalar::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

fn put_scalars(buf: &mut Vec<u8>, scalars: impl ExactSizeIterator<Item = impl AsScalar>) {
    put_u32(buf, scalars.len() as u32);
    for s in scalars {
        put_scalar(buf, s.as_scalar());
    }
}

/// `&Scalar`-yielding iterators come in both owned-ref and slice-iter
/// shapes; this tiny adapter lets [`put_scalars`] take either.
trait AsScalar {
    fn as_scalar(&self) -> &Scalar;
}

impl AsScalar for &Scalar {
    fn as_scalar(&self) -> &Scalar {
        self
    }
}

/// Encodes a whole [`Value`] — scalar or relation (schema, functional
/// dependency and tuples included), the unit of store snapshots.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Scalar(s) => {
            buf.push(0);
            put_scalar(buf, s);
        }
        Value::Rel(r) => {
            buf.push(1);
            let schema = r.schema();
            put_u32(buf, schema.columns().len() as u32);
            for c in schema.columns() {
                put_str(buf, c);
            }
            match schema.fd() {
                None => buf.push(0),
                Some(fd) => {
                    buf.push(1);
                    put_u32(buf, fd.domain().len() as u32);
                    for &c in fd.domain() {
                        put_u32(buf, c as u32);
                    }
                    put_u32(buf, fd.range().len() as u32);
                    for &c in fd.range() {
                        put_u32(buf, c as u32);
                    }
                }
            }
            put_u32(buf, r.len() as u32);
            for t in r.iter() {
                put_scalars(buf, t.iter());
            }
        }
    }
}

/// Encodes one journaled effect: the target location plus a *mutating*
/// operation kind. Non-effects (`read`, `select`) are rejected — they
/// have no place in a replay log.
pub fn encode_effect(buf: &mut Vec<u8>, loc: LocId, kind: &OpKind) -> Result<(), WireError> {
    put_u64(buf, loc.0);
    match kind {
        OpKind::Scalar(ScalarOp::Write(s)) => {
            buf.push(0);
            put_scalar(buf, s);
        }
        OpKind::Scalar(ScalarOp::Add(d)) => {
            buf.push(1);
            put_i64(buf, *d);
        }
        OpKind::Scalar(ScalarOp::Max(v)) => {
            buf.push(2);
            put_i64(buf, *v);
        }
        OpKind::Rel(RelOp::Insert(t)) => {
            buf.push(3);
            put_scalars(buf, t.iter());
        }
        OpKind::Rel(RelOp::Remove(t)) => {
            buf.push(4);
            put_scalars(buf, t.iter());
        }
        OpKind::Rel(RelOp::RemoveKey(k)) => {
            buf.push(5);
            put_scalars(buf, k.components().iter());
        }
        OpKind::Rel(RelOp::Clear) => buf.push(6),
        OpKind::Scalar(ScalarOp::Read) | OpKind::Rel(RelOp::Select(_)) => {
            return Err(WireError {
                offset: buf.len(),
                message: format!("{kind} is not an effect (reads are not journaled)"),
            });
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- read

/// A bounds-checked reader over an encoded payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "truncated: wanted {n} bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn take_scalar(&mut self) -> Result<Scalar, WireError> {
        match self.take_u8()? {
            0 => Ok(Scalar::Unit),
            1 => Ok(Scalar::Bool(self.take_u8()? != 0)),
            2 => Ok(Scalar::Int(self.take_i64()?)),
            3 => Ok(Scalar::Str(self.take_str()?.into())),
            t => Err(self.err(format!("unknown scalar tag {t}"))),
        }
    }

    fn take_scalars(&mut self) -> Result<Vec<Scalar>, WireError> {
        let n = self.take_u32()? as usize;
        if n > self.buf.len() - self.pos {
            // Each scalar takes at least one byte; a count beyond the
            // remaining bytes is corrupt, not a huge allocation request.
            return Err(self.err(format!("scalar count {n} exceeds remaining bytes")));
        }
        (0..n).map(|_| self.take_scalar()).collect()
    }
}

/// Decodes one [`Value`] (inverse of [`encode_value`]).
pub fn decode_value(c: &mut Cursor<'_>) -> Result<Value, WireError> {
    match c.take_u8()? {
        0 => Ok(Value::Scalar(c.take_scalar()?)),
        1 => {
            let ncols = c.take_u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                columns.push(c.take_str()?);
            }
            let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
            let schema = match c.take_u8()? {
                0 => Schema::new(&col_refs),
                1 => {
                    let nd = c.take_u32()? as usize;
                    let domain: Vec<usize> = (0..nd)
                        .map(|_| c.take_u32().map(|v| v as usize))
                        .collect::<Result<_, _>>()?;
                    let nr = c.take_u32()? as usize;
                    let range: Vec<usize> = (0..nr)
                        .map(|_| c.take_u32().map(|v| v as usize))
                        .collect::<Result<_, _>>()?;
                    Schema::with_fd(&col_refs, Fd::new(&domain, &range))
                }
                t => {
                    return Err(WireError {
                        offset: c.pos(),
                        message: format!("unknown fd tag {t}"),
                    })
                }
            };
            let ntuples = c.take_u32()? as usize;
            let mut tuples = Vec::with_capacity(ntuples.min(4096));
            for _ in 0..ntuples {
                tuples.push(Tuple::new(c.take_scalars()?));
            }
            Ok(Value::Rel(Relation::from_tuples(schema, tuples)))
        }
        t => Err(WireError {
            offset: c.pos(),
            message: format!("unknown value tag {t}"),
        }),
    }
}

/// Decodes one journaled effect (inverse of [`encode_effect`]).
pub fn decode_effect(c: &mut Cursor<'_>) -> Result<(LocId, OpKind), WireError> {
    let loc = LocId(c.take_u64()?);
    let kind = match c.take_u8()? {
        0 => OpKind::Scalar(ScalarOp::Write(c.take_scalar()?)),
        1 => OpKind::Scalar(ScalarOp::Add(c.take_i64()?)),
        2 => OpKind::Scalar(ScalarOp::Max(c.take_i64()?)),
        3 => OpKind::Rel(RelOp::Insert(Tuple::new(c.take_scalars()?))),
        4 => OpKind::Rel(RelOp::Remove(Tuple::new(c.take_scalars()?))),
        5 => OpKind::Rel(RelOp::RemoveKey(Key::new(c.take_scalars()?))),
        6 => OpKind::Rel(RelOp::Clear),
        t => {
            return Err(WireError {
                offset: c.pos(),
                message: format!("unknown effect tag {t}"),
            })
        }
    };
    Ok((loc, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_relational::Formula;

    fn roundtrip_effect(loc: LocId, kind: OpKind) {
        let mut buf = Vec::new();
        encode_effect(&mut buf, loc, &kind).expect("effect encodes");
        let mut c = Cursor::new(&buf);
        let (l2, k2) = decode_effect(&mut c).expect("effect decodes");
        assert_eq!(l2, loc);
        assert_eq!(k2, kind);
        assert!(c.is_empty(), "no trailing bytes");
    }

    #[test]
    fn effects_roundtrip() {
        roundtrip_effect(LocId(7), OpKind::Scalar(ScalarOp::Write(Scalar::Int(-4))));
        roundtrip_effect(
            LocId(u64::MAX),
            OpKind::Scalar(ScalarOp::Write(Scalar::str("héllo\tworld"))),
        );
        roundtrip_effect(LocId(0), OpKind::Scalar(ScalarOp::Add(i64::MIN)));
        roundtrip_effect(LocId(1), OpKind::Scalar(ScalarOp::Max(99)));
        roundtrip_effect(
            LocId(3),
            OpKind::Rel(RelOp::Insert(Tuple::new(vec![
                Scalar::Int(1),
                Scalar::Bool(true),
                Scalar::Unit,
            ]))),
        );
        roundtrip_effect(
            LocId(3),
            OpKind::Rel(RelOp::Remove(Tuple::new(vec![Scalar::str("k")]))),
        );
        roundtrip_effect(
            LocId(3),
            OpKind::Rel(RelOp::RemoveKey(Key::new(vec![Scalar::Int(12)]))),
        );
        roundtrip_effect(LocId(3), OpKind::Rel(RelOp::Clear));
    }

    #[test]
    fn reads_are_not_effects() {
        let mut buf = Vec::new();
        assert!(encode_effect(&mut buf, LocId(1), &OpKind::Scalar(ScalarOp::Read)).is_err());
        assert!(encode_effect(
            &mut buf,
            LocId(1),
            &OpKind::Rel(RelOp::Select(Formula::eq(0, 1i64)))
        )
        .is_err());
    }

    #[test]
    fn values_roundtrip() {
        for v in [
            Value::unit(),
            Value::bool(true),
            Value::int(-77),
            Value::str("snapshotted"),
        ] {
            let mut buf = Vec::new();
            encode_value(&mut buf, &v);
            let got = decode_value(&mut Cursor::new(&buf)).expect("value decodes");
            assert_eq!(got, v);
        }
    }

    #[test]
    fn relations_roundtrip_with_schema_and_fd() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let rel = Relation::from_tuples(
            schema,
            vec![
                Tuple::new(vec![Scalar::Int(1), Scalar::Int(10)]),
                Tuple::new(vec![Scalar::Int(2), Scalar::Int(20)]),
            ],
        );
        let v = Value::Rel(rel);
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let got = decode_value(&mut Cursor::new(&buf)).expect("relation decodes");
        assert_eq!(got, v);
        // The fd survives: re-inserting a duplicate key displaces.
        let r = got.as_rel().expect("relation");
        assert_eq!(r.schema().fd().expect("fd").domain(), &[0]);

        // And a plain schema (no fd) roundtrips too.
        let plain = Value::Rel(Relation::from_tuples(
            Schema::new(&["a"]),
            vec![Tuple::new(vec![Scalar::Unit])],
        ));
        let mut buf = Vec::new();
        encode_value(&mut buf, &plain);
        assert_eq!(decode_value(&mut Cursor::new(&buf)).expect("plain"), plain);
    }

    #[test]
    fn truncation_and_garbage_fail_closed() {
        let mut buf = Vec::new();
        encode_effect(
            &mut buf,
            LocId(9),
            &OpKind::Scalar(ScalarOp::Write(Scalar::str("payload"))),
        )
        .unwrap();
        for cut in 0..buf.len() {
            let err = decode_effect(&mut Cursor::new(&buf[..cut]));
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
        // A corrupt scalar count is rejected without allocating.
        let mut bad = Vec::new();
        put_u64(&mut bad, 1);
        bad.push(3); // rel-insert
        put_u32(&mut bad, u32::MAX); // absurd tuple arity
        assert!(decode_effect(&mut Cursor::new(&bad)).is_err());
    }

    #[test]
    fn checksum_is_fnv1a() {
        // The empty-string FNV-1a offset basis — pins the algorithm.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
    }
}
