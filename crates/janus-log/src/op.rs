//! Logged operations over shared locations.

use std::fmt;

use janus_relational::{CellSet, Footprint, RelOp, Scalar, Value};

use crate::{ClassId, LocId};

/// A memory-level operation over a scalar location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarOp {
    /// Reads the location's value.
    Read,
    /// Stores a value (a *blind* write: the previous value is not read).
    Write(Scalar),
    /// Adds a (possibly negative) delta to an integer location —
    /// `work += weightOf(item)` in Figure 1. The paper's reduction and
    /// identity patterns are built from these.
    Add(i64),
    /// Raises an integer location to at least the given value — the
    /// semantic lifting of `if (v > loc) loc = v` (JGraphT's `maxColor`
    /// bookkeeping, Figure 3). Like `Add`, it is a *blind* commutative
    /// update: max-updates always commute with each other.
    Max(i64),
}

impl ScalarOp {
    /// Whether the operation writes the location.
    pub fn is_write(&self) -> bool {
        !matches!(self, ScalarOp::Read)
    }

    /// Whether the operation reads the location. `Add` is a *blind*
    /// read-modify-write at the semantic level — its effect does not
    /// depend on the current value — but the write-set approach treats it
    /// as both a read and a write, which is exactly the conservatism
    /// sequence-based detection refines away.
    pub fn is_read(&self) -> bool {
        matches!(self, ScalarOp::Read | ScalarOp::Add(_) | ScalarOp::Max(_))
    }
}

impl fmt::Display for ScalarOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarOp::Read => write!(f, "read"),
            ScalarOp::Write(v) => write!(f, "write {v}"),
            ScalarOp::Add(d) if *d >= 0 => write!(f, "add {d}"),
            ScalarOp::Add(d) => write!(f, "sub {}", -d),
            ScalarOp::Max(v) => write!(f, "max {v}"),
        }
    }
}

/// The kind of a logged operation: memory-level or relational (ADT-level,
/// under an abstraction specification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A scalar memory operation.
    Scalar(ScalarOp),
    /// A primitive relational operation (Table 2).
    Rel(RelOp),
}

impl OpKind {
    /// Whether the operation can modify the location.
    pub fn is_write(&self) -> bool {
        match self {
            OpKind::Scalar(s) => s.is_write(),
            OpKind::Rel(r) => r.is_mutation(),
        }
    }

    /// Whether the operation observes the location (`ISREAD` in Figure 8).
    ///
    /// Scalar reads and selects observe; a `remove` of an absent tuple
    /// observes absence (per the §6.2 soundness note) — but absence
    /// observation is state-dependent, so it is captured in the footprint
    /// at logging time rather than here.
    pub fn is_read(&self) -> bool {
        match self {
            OpKind::Scalar(s) => s.is_read(),
            OpKind::Rel(r) => matches!(r, RelOp::Select(_)),
        }
    }

    /// Applies the operation to a location value in place and returns its
    /// result (what the program observed).
    ///
    /// # Panics
    ///
    /// Panics if the operation is applied to a value of the wrong shape
    /// (e.g. `Add` on a relation) — abstraction specifications guarantee
    /// well-typedness, so a mismatch is a logic error in the caller.
    pub fn apply(&self, value: &mut Value) -> OpResult {
        match self {
            OpKind::Scalar(ScalarOp::Read) => match value {
                Value::Scalar(s) => OpResult::Scalar(s.clone()),
                Value::Rel(_) => panic!("scalar read applied to relational value"),
            },
            OpKind::Scalar(ScalarOp::Write(v)) => {
                *value = Value::Scalar(v.clone());
                OpResult::None
            }
            OpKind::Scalar(ScalarOp::Add(d)) => match value {
                Value::Scalar(Scalar::Int(i)) => {
                    *i = i.wrapping_add(*d);
                    OpResult::Scalar(Scalar::Int(*i))
                }
                _ => panic!("add applied to non-integer value"),
            },
            OpKind::Scalar(ScalarOp::Max(v)) => match value {
                Value::Scalar(Scalar::Int(i)) => {
                    *i = (*i).max(*v);
                    OpResult::None
                }
                _ => panic!("max applied to non-integer value"),
            },
            OpKind::Rel(op) => match value {
                Value::Rel(r) => {
                    if let RelOp::Select(f) = op {
                        OpResult::Tuples(r.select(f))
                    } else {
                        op.apply(r);
                        OpResult::None
                    }
                }
                Value::Scalar(_) => panic!("relational op applied to scalar value"),
            },
        }
    }

    /// The footprint of this operation against the given pre-state value
    /// (Table 3 for relational operations; scalar locations have a single
    /// whole-value cell).
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch, as for [`OpKind::apply`].
    pub fn footprint(&self, value: &Value) -> Footprint {
        match self {
            OpKind::Scalar(ScalarOp::Read) => Footprint::read_only(CellSet::All),
            OpKind::Scalar(ScalarOp::Write(_)) => Footprint::write_only(CellSet::All),
            // The write-set level treats fetch-add and fetch-max as
            // read+write of the cell.
            OpKind::Scalar(ScalarOp::Add(_)) | OpKind::Scalar(ScalarOp::Max(_)) => Footprint {
                read: CellSet::All,
                write: CellSet::All,
            },
            OpKind::Rel(op) => match value {
                Value::Rel(r) => op.footprint(r),
                Value::Scalar(_) => panic!("relational op applied to scalar value"),
            },
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Scalar(s) => write!(f, "{s}"),
            OpKind::Rel(r) => write!(f, "{r}"),
        }
    }
}

impl From<ScalarOp> for OpKind {
    fn from(s: ScalarOp) -> Self {
        OpKind::Scalar(s)
    }
}

impl From<RelOp> for OpKind {
    fn from(r: RelOp) -> Self {
        OpKind::Rel(r)
    }
}

/// The observable result of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// No observable result (blind writes, mutations).
    None,
    /// A scalar result (reads, fetch-add results).
    Scalar(Scalar),
    /// The selected tuples of a select.
    Tuples(Vec<janus_relational::Tuple>),
}

impl OpResult {
    /// The scalar payload, if any.
    pub fn as_scalar(&self) -> Option<&Scalar> {
        match self {
            OpResult::Scalar(s) => Some(s),
            _ => None,
        }
    }
}

/// One logged operation instance: the location it targets, its kind, the
/// footprint it had against the transaction's private state, and the
/// result the program observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// The location the operation targets.
    pub loc: LocId,
    /// The location's static class (the generalization key for training).
    pub class: ClassId,
    /// What the operation does.
    pub kind: OpKind,
    /// The read/write footprint recorded at execution time.
    pub footprint: Footprint,
    /// The result observed at execution time.
    pub result: OpResult,
}

impl Op {
    /// Creates an operation record by applying `kind` to `value`,
    /// computing the footprint against the pre-state and capturing the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch between the operation and the value.
    pub fn execute(loc: LocId, class: ClassId, kind: OpKind, value: &mut Value) -> (Op, OpResult) {
        let footprint = kind.footprint(value);
        let result = kind.apply(value);
        (
            Op {
                loc,
                class,
                kind,
                footprint,
                result: result.clone(),
            },
            result,
        )
    }

    /// Whether this op writes its location.
    pub fn is_write(&self) -> bool {
        self.footprint.is_write()
    }

    /// Whether this op reads its location (footprint-level, so a `remove`
    /// of an absent tuple counts as a read).
    pub fn is_read(&self) -> bool {
        !self.footprint.read.is_empty()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.class, self.loc, self.kind)
    }
}

/// Replays a slice of logged operations onto a value (used by `COMMIT`'s
/// `REPLAYLOGGEDOPERATIONS` and by sequence evaluation in conflict
/// detection). Reads are no-ops on the state; results are discarded.
pub fn replay(ops: &[&Op], value: &mut Value) {
    for op in ops {
        op.kind.apply(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_relational::{tuple, Fd, Formula, Relation, Schema};

    fn loc() -> (LocId, ClassId) {
        (LocId(0), ClassId::new("test"))
    }

    #[test]
    fn scalar_read_observes() {
        let (l, c) = loc();
        let mut v = Value::int(42);
        let (op, result) = Op::execute(l, c, OpKind::Scalar(ScalarOp::Read), &mut v);
        assert_eq!(result.as_scalar(), Some(&Scalar::Int(42)));
        assert!(!op.is_write());
        assert!(op.is_read());
        assert_eq!(v, Value::int(42));
    }

    #[test]
    fn scalar_write_is_blind() {
        let (l, c) = loc();
        let mut v = Value::int(1);
        let (op, _) = Op::execute(
            l,
            c,
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(9))),
            &mut v,
        );
        assert!(op.is_write());
        assert!(!op.is_read());
        assert_eq!(v, Value::int(9));
    }

    #[test]
    fn add_updates_and_reports() {
        let (l, c) = loc();
        let mut v = Value::int(10);
        let (op, result) = Op::execute(l, c, OpKind::Scalar(ScalarOp::Add(-3)), &mut v);
        assert_eq!(v, Value::int(7));
        assert_eq!(result.as_scalar(), Some(&Scalar::Int(7)));
        // Write-set level: add is read+write.
        assert!(op.is_write() && op.is_read());
    }

    #[test]
    #[should_panic(expected = "non-integer")]
    fn add_on_bool_panics() {
        let mut v = Value::bool(true);
        OpKind::Scalar(ScalarOp::Add(1)).apply(&mut v);
    }

    #[test]
    fn relational_ops_flow_through() {
        let (l, c) = loc();
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let mut v = Value::Rel(Relation::empty(schema));
        let (ins, _) = Op::execute(
            l,
            c.clone(),
            OpKind::Rel(RelOp::insert(tuple![1, 10])),
            &mut v,
        );
        assert!(ins.is_write());
        let (_sel, result) = Op::execute(
            l,
            c,
            OpKind::Rel(RelOp::select(Formula::eq(0, 1i64))),
            &mut v,
        );
        assert_eq!(result, OpResult::Tuples(vec![tuple![1, 10]]));
    }

    #[test]
    fn replay_applies_in_order() {
        let (l, c) = loc();
        let mut v = Value::int(0);
        let mut ops = Vec::new();
        for kind in [
            OpKind::Scalar(ScalarOp::Add(5)),
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(100))),
            OpKind::Scalar(ScalarOp::Add(-1)),
        ] {
            let (op, _) = Op::execute(l, c.clone(), kind, &mut v);
            ops.push(op);
        }
        assert_eq!(v, Value::int(99));
        let mut fresh = Value::int(0);
        let refs: Vec<&Op> = ops.iter().collect();
        replay(&refs, &mut fresh);
        assert_eq!(fresh, Value::int(99));
    }

    #[test]
    fn op_display_mentions_class() {
        let (l, c) = loc();
        let mut v = Value::int(0);
        let (op, _) = Op::execute(l, c, OpKind::Scalar(ScalarOp::Read), &mut v);
        assert!(format!("{op}").contains("test"));
    }
}
