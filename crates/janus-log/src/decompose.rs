//! `DECOMPOSE` (Figure 8): splitting a history into per-location
//! dependent operation subsequences.
//!
//! For every shared location accessed by a history, the decomposition
//! collects the subsequence of operations touching it, preserving program
//! order. Within a relational object, operations with key-granular
//! footprints are further split per key — two transactions inserting
//! under different map keys never meet in a conflict query, mirroring how
//! the paper's location-centric subsequences treat distinct memory words.
//! Operations with whole-object footprints (`clear`, unconstrained
//! selects) force the object back to whole-granularity comparison.

use std::collections::BTreeMap;

use janus_relational::{CellSet, Key};

use crate::{ClassId, LocId, Op};

/// Which slice of a shared object a subsequence ranges over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellKey {
    /// The whole object (scalars; relational objects with whole-object
    /// accesses in play).
    Whole,
    /// One key of a relational object.
    Key(Key),
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellKey::Whole => write!(f, "*"),
            CellKey::Key(k) => write!(f, "{k}"),
        }
    }
}

/// The decomposition of one history restricted to one location.
#[derive(Debug, Clone)]
pub struct LocHistory<'a> {
    /// The location's static class.
    pub class: ClassId,
    /// Every operation on this location, in history order.
    pub ops: Vec<&'a Op>,
    /// Whether any operation has a whole-object footprint (scalar ops
    /// always do).
    pub has_whole: bool,
    /// Key-granular subsequences (operations whose footprints pin keys),
    /// in history order per key.
    pub per_key: BTreeMap<Key, Vec<&'a Op>>,
}

impl<'a> LocHistory<'a> {
    fn new(class: ClassId) -> Self {
        LocHistory {
            class,
            ops: Vec::new(),
            has_whole: false,
            per_key: BTreeMap::new(),
        }
    }

    /// The operations restricted to one cell: the full per-location
    /// sequence for [`CellKey::Whole`], or the per-key subsequence.
    pub fn cell_ops(&self, cell: &CellKey) -> &[&'a Op] {
        match cell {
            CellKey::Whole => &self.ops,
            CellKey::Key(k) => self.per_key.get(k).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Whether any operation in the subsequence writes.
    pub fn writes(&self) -> bool {
        self.ops.iter().any(|op| op.is_write())
    }
}

/// Decomposes a history into per-location subsequences (`DECOMPOSE` of
/// Figure 8). Only the footprints recorded in each [`Op`] are consulted —
/// the same information the write-set approach tracks.
pub fn decompose<'a>(ops: impl IntoIterator<Item = &'a Op>) -> BTreeMap<LocId, LocHistory<'a>> {
    let mut map: BTreeMap<LocId, LocHistory<'a>> = BTreeMap::new();
    for op in ops {
        let entry = map
            .entry(op.loc)
            .or_insert_with(|| LocHistory::new(op.class.clone()));
        entry.ops.push(op);
        let accessed = op.footprint.accessed();
        match accessed {
            CellSet::All => entry.has_whole = true,
            CellSet::Keys(keys) => {
                for k in keys {
                    entry.per_key.entry(k).or_default().push(op);
                }
            }
            CellSet::Empty => {}
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, ScalarOp};
    use janus_relational::{tuple, Fd, Formula, RelOp, Relation, Scalar, Schema, Value};

    fn scalar_op(loc: u64, kind: ScalarOp, v: &mut Value) -> Op {
        Op::execute(
            LocId(loc),
            ClassId::new(format!("c{loc}")),
            OpKind::Scalar(kind),
            v,
        )
        .0
    }

    #[test]
    fn groups_by_location_in_order() {
        let mut a = Value::int(0);
        let mut b = Value::int(0);
        let ops = vec![
            scalar_op(1, ScalarOp::Add(1), &mut a),
            scalar_op(2, ScalarOp::Write(Scalar::Int(5)), &mut b),
            scalar_op(1, ScalarOp::Add(-1), &mut a),
            scalar_op(2, ScalarOp::Read, &mut b),
        ];
        let d = decompose(&ops);
        assert_eq!(d.len(), 2);
        let l1 = &d[&LocId(1)];
        assert_eq!(l1.ops.len(), 2);
        assert!(l1.has_whole, "scalar ops are whole-object");
        assert!(l1.writes());
        let l2 = &d[&LocId(2)];
        assert_eq!(l2.ops.len(), 2);
        assert_eq!(
            l2.ops[0].kind,
            OpKind::Scalar(ScalarOp::Write(Scalar::Int(5)))
        );
    }

    #[test]
    fn relational_ops_split_per_key() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let mut v = Value::Rel(Relation::empty(schema));
        let (l, c) = (LocId(7), ClassId::new("map"));
        let mut ops = Vec::new();
        for kind in [
            OpKind::Rel(RelOp::insert(tuple![1, 10])),
            OpKind::Rel(RelOp::insert(tuple![2, 20])),
            OpKind::Rel(RelOp::select(Formula::eq(0, 1i64))),
        ] {
            ops.push(Op::execute(l, c.clone(), kind, &mut v).0);
        }
        let d = decompose(&ops);
        let h = &d[&l];
        assert!(!h.has_whole);
        assert_eq!(h.per_key.len(), 2);
        let k1 = Key::scalar(1i64);
        assert_eq!(h.per_key[&k1].len(), 2, "insert + select on key 1");
        assert_eq!(h.cell_ops(&CellKey::Key(k1)).len(), 2);
        assert_eq!(h.cell_ops(&CellKey::Whole).len(), 3);
        assert!(h.cell_ops(&CellKey::Key(Key::scalar(9i64))).is_empty());
    }

    #[test]
    fn clear_forces_whole_granularity() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let mut v = Value::Rel(Relation::empty(schema));
        let (l, c) = (LocId(3), ClassId::new("bitset"));
        let ops = vec![
            Op::execute(
                l,
                c.clone(),
                OpKind::Rel(RelOp::insert(tuple![1, true])),
                &mut v,
            )
            .0,
            Op::execute(l, c, OpKind::Rel(RelOp::Clear), &mut v).0,
        ];
        let d = decompose(&ops);
        assert!(d[&l].has_whole);
    }

    #[test]
    fn empty_history() {
        let d = decompose(std::iter::empty());
        assert!(d.is_empty());
    }

    #[test]
    fn read_only_history_does_not_write() {
        let mut v = Value::int(1);
        let ops = vec![
            scalar_op(1, ScalarOp::Read, &mut v),
            scalar_op(1, ScalarOp::Read, &mut v),
        ];
        let d = decompose(&ops);
        assert!(!d[&LocId(1)].writes());
    }
}
