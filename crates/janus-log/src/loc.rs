//! Location identity and static classes.

use std::fmt;
use std::sync::Arc;

/// Bits of every [`LocId`] reserved for its *shard hint* — the
/// class-hash residue the store's allocator folds into the id so the
/// sharded runtime can route any location to its shard from the id
/// alone, without a class lookup.
pub const SHARD_BITS: u32 = 6;

/// Number of distinct shard hints (`2^SHARD_BITS`) — the upper bound on
/// the runtime's shard count.
pub const SHARD_SPACE: u64 = 1 << SHARD_BITS;

/// The runtime identity of one shared location (a scalar variable or one
/// ADT instance). The store's allocator assigns ids whose low
/// [`SHARD_BITS`] carry the location's class-hash shard hint; the
/// remaining bits are a dense allocation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u64);

impl LocId {
    /// The id's shard hint: its class-hash residue in `0..SHARD_SPACE`.
    /// Ids constructed directly (tests, external drivers) simply use
    /// their low bits — every `u64` is a valid id.
    pub fn shard_hint(&self) -> u64 {
        self.0 & (SHARD_SPACE - 1)
    }

    /// The shard this location belongs to in a store of `shards` shards
    /// (`shards` must be in `1..=SHARD_SPACE`). Locations of one class
    /// share a hint, so they always share a shard.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards >= 1 && shards as u64 <= SHARD_SPACE);
        (self.shard_hint() % shards as u64) as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// The *static class* of a shared location: a stable label (analogous to
/// a field name or allocation site in the paper's Java setting) shared by
/// all locations playing the same role across runs.
///
/// Training generalizes along classes: a commutativity condition learned
/// for sequences over one location applies to any production location of
/// the same class (§5.2 — training inputs differ from production inputs,
/// so runtime identities never coincide).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(Arc<str>);

impl ClassId {
    /// Creates (or interns) a class from its label.
    pub fn new(label: impl AsRef<str>) -> Self {
        ClassId(Arc::from(label.as_ref()))
    }

    /// The class label.
    pub fn label(&self) -> &str {
        &self.0
    }

    /// The class's shard hint in `0..SHARD_SPACE`: a stable FNV-1a hash
    /// residue of the label (the same label hashes identically in the
    /// trainer and the production runtime, so shard routing is stable
    /// across runs). The store's allocator folds this into every
    /// [`LocId`] it hands out for the class.
    pub fn shard_hint(&self) -> u64 {
        crate::committed::fnv1a(self.0.as_bytes()) & (SHARD_SPACE - 1)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for ClassId {
    fn from(s: &str) -> Self {
        ClassId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_equality_is_by_label() {
        assert_eq!(
            ClassId::new("monitor.itemsWeight"),
            "monitor.itemsWeight".into()
        );
        assert_ne!(ClassId::new("a"), ClassId::new("b"));
        assert_eq!(ClassId::new("x").label(), "x");
    }

    #[test]
    fn loc_ordering() {
        assert!(LocId(1) < LocId(2));
        assert_eq!(format!("{}", LocId(3)), "loc3");
    }

    #[test]
    fn shard_hint_is_the_low_bits() {
        assert_eq!(LocId(0).shard_hint(), 0);
        assert_eq!(LocId(63).shard_hint(), 63);
        assert_eq!(LocId(64).shard_hint(), 0);
        assert_eq!(LocId((5 << SHARD_BITS) | 7).shard_hint(), 7);
    }

    #[test]
    fn shard_routing_is_total_and_bounded() {
        for hint in 0..SHARD_SPACE {
            for shards in [1usize, 2, 3, 8, 64] {
                let s = LocId(hint).shard(shards);
                assert!(s < shards, "hint {hint} routed to {s} of {shards}");
            }
            // One shard degenerates to the unsharded store.
            assert_eq!(LocId(hint).shard(1), 0);
        }
    }

    #[test]
    fn class_shard_hint_is_stable_and_bounded() {
        let a = ClassId::new("monitor.itemsWeight");
        assert_eq!(
            a.shard_hint(),
            ClassId::new("monitor.itemsWeight").shard_hint()
        );
        assert!(a.shard_hint() < SHARD_SPACE);
        // Not a proof of spread, but the hash must not be degenerate: a
        // handful of distinct labels should not all collide on one hint.
        let hints: std::collections::BTreeSet<u64> = (0..16)
            .map(|i| ClassId::new(format!("class{i}")).shard_hint())
            .collect();
        assert!(hints.len() > 4, "class hash collapsed: {hints:?}");
    }
}
