//! Location identity and static classes.

use std::fmt;
use std::sync::Arc;

/// The runtime identity of one shared location (a scalar variable or one
/// ADT instance). Allocated densely by the runtime's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u64);

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// The *static class* of a shared location: a stable label (analogous to
/// a field name or allocation site in the paper's Java setting) shared by
/// all locations playing the same role across runs.
///
/// Training generalizes along classes: a commutativity condition learned
/// for sequences over one location applies to any production location of
/// the same class (§5.2 — training inputs differ from production inputs,
/// so runtime identities never coincide).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(Arc<str>);

impl ClassId {
    /// Creates (or interns) a class from its label.
    pub fn new(label: impl AsRef<str>) -> Self {
        ClassId(Arc::from(label.as_ref()))
    }

    /// The class label.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for ClassId {
    fn from(s: &str) -> Self {
        ClassId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_equality_is_by_label() {
        assert_eq!(
            ClassId::new("monitor.itemsWeight"),
            "monitor.itemsWeight".into()
        );
        assert_ne!(ClassId::new("a"), ClassId::new("b"));
        assert_eq!(ClassId::new("x").label(), "x");
    }

    #[test]
    fn loc_ordering() {
        assert!(LocId(1) < LocId(2));
        assert_eq!(format!("{}", LocId(3)), "loc3");
    }
}
