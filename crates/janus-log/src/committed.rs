//! Committed-log segments and zero-copy history windows.
//!
//! The Figure 7 protocol hands every validating transaction the window of
//! logs committed since its begin time. Materializing that window as a
//! flat `Vec<Op>` clones every operation once per validation attempt and
//! forces each detector to re-run `DECOMPOSE` over the same committed
//! ops again and again. A [`CommittedLog`] instead pairs a committed
//! log with its decomposition, computed exactly once at commit time, and
//! a [`HistoryWindow`] is a borrowed run of `Arc`'d segments — handing a
//! window to a detector shares the segments instead of copying them.

use std::collections::BTreeMap;
use std::sync::Arc;

use janus_relational::{CellSet, Key};

use crate::{ClassId, LocId, Op};

/// A 128-bit Bloom-style summary of a log's footprint: one filter over
/// the touched [`LocId`]s and one over their [`ClassId`]s, each setting
/// two bits per member. Two logs whose location filters are disjoint —
/// or whose class filters are disjoint — provably share no location, so
/// a validation session can dismiss the pair in O(1) without walking
/// either per-location index.
///
/// The filter is one-sided: bit collisions can make disjoint footprints
/// *look* overlapping (the segment is then scanned for nothing), but an
/// overlap can never look disjoint, because inserted members always set
/// their bits. With two bits per member the false-intersection
/// probability for footprints of `n` and `m` members is at most
/// `min(1, 2n/128) · min(1, 2m/128)` per filter, and both filters must
/// collide for a segment to be scanned needlessly. A saturated filter
/// (every bit set, ~64+ distinct members) intersects everything and so
/// degrades to scan-everything — never to skip-everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fingerprint {
    locs: u128,
    classes: u128,
}

/// The 64-bit finalizer of splitmix64: a cheap, well-mixed hash for
/// word-sized keys.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string; stable across runs (class labels must hash
/// identically in the trainer and the production runtime). Shared with
/// the class shard-hint routing in `loc.rs`, which needs the same
/// stability guarantee.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two bit positions (k = 2) derived from one 64-bit hash.
fn bloom_bits(h: u64) -> u128 {
    (1u128 << (h & 127)) | (1u128 << ((h >> 32) & 127))
}

impl Fingerprint {
    /// The empty fingerprint (no footprint: disjoint from everything).
    pub fn empty() -> Self {
        Fingerprint::default()
    }

    /// The saturated fingerprint: every bit set, so it *may intersect*
    /// any non-empty fingerprint. The degenerate worst case of a huge
    /// footprint — a prefilter holding one behaves exactly like no
    /// prefilter at all.
    pub fn saturated() -> Self {
        Fingerprint {
            locs: u128::MAX,
            classes: u128::MAX,
        }
    }

    /// Inserts one location (and its class) into the footprint.
    pub fn insert(&mut self, loc: LocId, class: &ClassId) {
        self.locs |= bloom_bits(splitmix64(loc.0));
        self.classes |= bloom_bits(fnv1a(class.label().as_bytes()));
    }

    /// Whether the two footprints may share a location. `false` is
    /// definitive (the footprints are disjoint — both on locations and,
    /// independently, on classes); `true` may be a false positive.
    pub fn may_intersect(&self, other: &Fingerprint) -> bool {
        // Each location carries exactly one class, so a shared location
        // implies both a loc-filter hit and a class-filter hit; either
        // filter alone may therefore veto the pair.
        (self.locs & other.locs) != 0 && (self.classes & other.classes) != 0
    }

    /// Folds another fingerprint's members into this one (bitwise OR of
    /// both filters). The union may-intersect everything either input
    /// did — block trackers use it to summarize a whole batch's
    /// footprint in one pair of filters.
    pub fn union(&mut self, other: &Fingerprint) {
        self.locs |= other.locs;
        self.classes |= other.classes;
    }

    /// Whether no member was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.locs == 0 && self.classes == 0
    }

    /// Whether both filters have every bit set (see
    /// [`Fingerprint::saturated`]).
    pub fn is_saturated(&self) -> bool {
        self.locs == u128::MAX && self.classes == u128::MAX
    }
}

/// The decomposition of one committed log restricted to one location,
/// stored as indices into the owning [`CommittedLog`]'s operation vector
/// (indices, not references, so the structure is self-contained and
/// shareable behind an `Arc`).
#[derive(Debug, Clone)]
pub struct DecomposedLoc {
    /// The location's static class.
    pub class: ClassId,
    /// Indices of every operation on this location, in log order.
    pub ops: Vec<u32>,
    /// Whether any operation has a whole-object footprint.
    pub has_whole: bool,
    /// Key-granular index subsequences, in log order per key.
    pub per_key: BTreeMap<Key, Vec<u32>>,
}

/// The per-location index of one committed log: which locations it
/// touches, and the index subsequence for each (the `DECOMPOSE` of
/// Figure 8, computed once instead of per conflict query).
#[derive(Debug, Clone, Default)]
pub struct DecomposedLog {
    /// Per-location index entries.
    pub locs: BTreeMap<LocId, DecomposedLoc>,
}

impl DecomposedLog {
    fn build(ops: &[Op]) -> Self {
        let mut locs: BTreeMap<LocId, DecomposedLoc> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let i = u32::try_from(i).expect("committed log longer than u32::MAX ops");
            let entry = locs.entry(op.loc).or_insert_with(|| DecomposedLoc {
                class: op.class.clone(),
                ops: Vec::new(),
                has_whole: false,
                per_key: BTreeMap::new(),
            });
            entry.ops.push(i);
            match op.footprint.accessed() {
                CellSet::All => entry.has_whole = true,
                CellSet::Keys(keys) => {
                    for k in keys {
                        entry.per_key.entry(k).or_default().push(i);
                    }
                }
                CellSet::Empty => {}
            }
        }
        DecomposedLog { locs }
    }
}

/// One committed transaction log together with its per-location index.
///
/// The index is computed exactly once, in [`CommittedLog::new`]; every
/// later conflict query against this log — from any concurrent
/// transaction, at any clock — reuses it.
#[derive(Debug, Clone)]
pub struct CommittedLog {
    ops: Vec<Op>,
    index: DecomposedLog,
    fingerprint: Fingerprint,
}

impl CommittedLog {
    /// Wraps a log, decomposing it once. The footprint fingerprint is
    /// derived from the finished index — one insert per distinct
    /// location, not per operation.
    pub fn new(ops: Vec<Op>) -> Self {
        let index = DecomposedLog::build(&ops);
        let mut fingerprint = Fingerprint::empty();
        for (loc, dl) in &index.locs {
            fingerprint.insert(*loc, &dl.class);
        }
        CommittedLog {
            ops,
            index,
            fingerprint,
        }
    }

    /// The log's footprint fingerprint, computed once at construction.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The operations, in log order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The per-location index.
    pub fn index(&self) -> &DecomposedLog {
        &self.index
    }

    /// The index entry for one location, if the log touches it.
    pub fn loc(&self, loc: LocId) -> Option<&DecomposedLoc> {
        self.index.locs.get(&loc)
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Resolves an index subsequence to operation references.
    pub fn resolve<'a>(&'a self, indices: &[u32], out: &mut Vec<&'a Op>) {
        out.extend(indices.iter().map(|&i| &self.ops[i as usize]));
    }
}

impl From<Vec<Op>> for CommittedLog {
    fn from(ops: Vec<Op>) -> Self {
        CommittedLog::new(ops)
    }
}

/// A zero-copy window over committed history: a borrowed run of shared
/// segments, in commit order. Constructing one never clones an [`Op`];
/// consumers that need to outlive the borrow clone the `Arc`s.
#[derive(Debug, Clone, Copy)]
pub struct HistoryWindow<'a> {
    segments: &'a [Arc<CommittedLog>],
}

impl<'a> HistoryWindow<'a> {
    /// A window over the given segments.
    pub fn new(segments: &'a [Arc<CommittedLog>]) -> Self {
        HistoryWindow { segments }
    }

    /// The empty window.
    pub fn empty() -> Self {
        HistoryWindow { segments: &[] }
    }

    /// The segments, in commit order.
    pub fn segments(&self) -> &'a [Arc<CommittedLog>] {
        self.segments
    }

    /// Total number of operations across all segments.
    pub fn ops_len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Whether the window holds no operations.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.is_empty())
    }

    /// Every operation in the window, in commit order (test/debug aid —
    /// the detectors consume the per-location indices instead).
    pub fn iter_ops(&self) -> impl Iterator<Item = &'a Op> {
        self.segments.iter().flat_map(|s| s.ops().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, ScalarOp};
    use janus_relational::{tuple, Fd, Formula, RelOp, Relation, Scalar, Schema, Value};

    fn scalar_op(loc: u64, kind: ScalarOp, v: &mut Value) -> Op {
        Op::execute(
            LocId(loc),
            ClassId::new(format!("c{loc}")),
            OpKind::Scalar(kind),
            v,
        )
        .0
    }

    #[test]
    fn index_matches_reference_decomposition() {
        let mut a = Value::int(0);
        let mut b = Value::int(0);
        let ops = vec![
            scalar_op(1, ScalarOp::Add(1), &mut a),
            scalar_op(2, ScalarOp::Write(Scalar::Int(5)), &mut b),
            scalar_op(1, ScalarOp::Add(-1), &mut a),
        ];
        let reference: Vec<_> = crate::decompose(ops.iter())
            .into_iter()
            .map(|(loc, h)| {
                let kinds: Vec<_> = h.ops.iter().map(|op| op.kind.clone()).collect();
                (loc, kinds, h.has_whole)
            })
            .collect();
        let log = CommittedLog::new(ops);
        assert_eq!(log.index().locs.len(), reference.len());
        for (loc, kinds, has_whole) in &reference {
            let dl = log.loc(*loc).expect("location indexed");
            assert_eq!(dl.ops.len(), kinds.len());
            assert_eq!(dl.has_whole, *has_whole);
            let mut resolved = Vec::new();
            log.resolve(&dl.ops, &mut resolved);
            for (got, want) in resolved.iter().zip(kinds) {
                assert_eq!(&got.kind, want);
            }
        }
    }

    #[test]
    fn relational_per_key_index() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let mut v = Value::Rel(Relation::empty(schema));
        let (l, c) = (LocId(7), ClassId::new("map"));
        let mut ops = Vec::new();
        for kind in [
            OpKind::Rel(RelOp::insert(tuple![1, 10])),
            OpKind::Rel(RelOp::insert(tuple![2, 20])),
            OpKind::Rel(RelOp::select(Formula::eq(0, 1i64))),
        ] {
            ops.push(Op::execute(l, c.clone(), kind, &mut v).0);
        }
        let log = CommittedLog::new(ops);
        let dl = log.loc(l).expect("indexed");
        assert!(!dl.has_whole);
        assert_eq!(dl.per_key.len(), 2);
        assert_eq!(dl.per_key[&Key::scalar(1i64)], vec![0, 2]);
    }

    #[test]
    fn window_over_segments() {
        let mut v = Value::int(0);
        let seg = |n: u64, v: &mut Value| {
            Arc::new(CommittedLog::new(vec![
                scalar_op(n, ScalarOp::Add(1), v),
                scalar_op(n, ScalarOp::Add(-1), v),
            ]))
        };
        let segments = vec![seg(1, &mut v), seg(2, &mut v)];
        let w = HistoryWindow::new(&segments);
        assert_eq!(w.ops_len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.iter_ops().count(), 4);
        assert_eq!(w.segments().len(), 2);
        assert!(HistoryWindow::empty().is_empty());
        assert_eq!(HistoryWindow::empty().ops_len(), 0);
    }

    #[test]
    fn empty_log() {
        let log = CommittedLog::new(Vec::new());
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.index().locs.is_empty());
        assert!(log.fingerprint().is_empty());
    }

    #[test]
    fn fingerprint_reflects_footprint_overlap() {
        let mut a = Value::int(0);
        let mut b = Value::int(0);
        let on_one = CommittedLog::new(vec![scalar_op(1, ScalarOp::Add(1), &mut a)]);
        let on_two = CommittedLog::new(vec![scalar_op(2, ScalarOp::Add(1), &mut b)]);
        let on_both = CommittedLog::new(vec![
            scalar_op(1, ScalarOp::Add(1), &mut a),
            scalar_op(2, ScalarOp::Add(1), &mut b),
        ]);
        // A shared location always intersects (no false negatives).
        assert!(on_one.fingerprint().may_intersect(on_both.fingerprint()));
        assert!(on_two.fingerprint().may_intersect(on_both.fingerprint()));
        assert!(on_one.fingerprint().may_intersect(on_one.fingerprint()));
        // These two particular singletons happen to be bit-disjoint.
        assert!(!on_one.fingerprint().may_intersect(on_two.fingerprint()));
    }

    #[test]
    fn fingerprint_insert_is_monotone_and_sound() {
        // Whatever else is inserted around it, a shared member keeps the
        // pair intersecting — the Bloom filter never un-sets a bit.
        let mut fp_a = Fingerprint::empty();
        let mut fp_b = Fingerprint::empty();
        let shared = ClassId::new("shared");
        fp_a.insert(LocId(77), &shared);
        fp_b.insert(LocId(77), &shared);
        for i in 0..300u64 {
            fp_a.insert(LocId(i * 2 + 1000), &ClassId::new(format!("a{i}")));
            fp_b.insert(LocId(i * 2 + 5001), &ClassId::new(format!("b{i}")));
            assert!(fp_a.may_intersect(&fp_b), "insert #{i} broke soundness");
        }
    }

    #[test]
    fn saturated_fingerprint_intersects_everything() {
        let sat = Fingerprint::saturated();
        assert!(sat.is_saturated());
        let mut v = Value::int(0);
        let log = CommittedLog::new(vec![scalar_op(9, ScalarOp::Add(1), &mut v)]);
        // Saturation = scan-everything: any non-empty footprint passes.
        assert!(sat.may_intersect(log.fingerprint()));
        assert!(log.fingerprint().may_intersect(&sat));
        assert!(sat.may_intersect(&sat));
        // ... except the empty footprint, which cannot conflict with
        // anything and is always skippable.
        assert!(!sat.may_intersect(&Fingerprint::empty()));
        assert!(!Fingerprint::empty().may_intersect(&sat));
    }
}
