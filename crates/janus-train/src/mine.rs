//! Sequence mining and the training driver (§5.1, Figure 6).

use std::collections::BTreeSet;

use janus_detect::{conflict_cell, MapState, Relaxation};
use janus_log::{CellKey, ClassId, Op, OpKind};
use janus_relational::{RelOp, Value};

use crate::abstraction::abstract_sequence;
use crate::cache::{CellShape, CommutativityCache, TrainReport};
use crate::condition::{evaluate_condition, Condition};
use crate::depgraph::DependenceGraph;
use crate::symbolic;

/// One sequential, synchronization-free training run: the initial shared
/// state and the operation log of each task, in execution order.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// The shared state at the start of the run.
    pub initial: MapState,
    /// Per-task operation logs, in sequential execution order.
    pub task_logs: Vec<Vec<Op>>,
}

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Apply the Kleene-cross sequence abstraction of §5.2. Disabling it
    /// reproduces the "without sequence abstraction" ablation of
    /// Figure 11.
    pub use_abstraction: bool,
    /// Run the SAT-backed symbolic verification pass over mined
    /// relational pairs (§6.2). Purely diagnostic: failures demote
    /// nothing, successes are counted in the [`TrainReport`].
    pub verify_symbolic: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            use_abstraction: true,
            verify_symbolic: true,
        }
    }
}

/// A candidate pair of dependent subsequences mined from a training run:
/// two different tasks' operations on the same cell.
#[derive(Debug, Clone)]
pub struct CandidatePair {
    /// The location's class.
    pub class: ClassId,
    /// The cell both subsequences range over.
    pub cell: CellKey,
    /// The first (earlier) task's subsequence.
    pub a: Vec<Op>,
    /// The second (later) task's subsequence.
    pub b: Vec<Op>,
    /// The location's value when the earlier task began (used to verify
    /// conditions against the concrete training observation).
    pub entry: Value,
}

/// Mines candidate pairs from a training run: builds the dependence graph
/// (Equation 1), takes each cell's maximal dependence path, partitions it
/// at task boundaries, and pairs up the per-task subsequences of distinct
/// tasks.
pub fn mine_pairs(run: &TrainingRun) -> Vec<CandidatePair> {
    let graph = DependenceGraph::build(&run.task_logs);
    let mut pairs = Vec::new();
    for (loc, cell) in graph.paths().keys() {
        let parts = graph.partitioned(*loc, cell);
        if parts.len() < 2 {
            continue;
        }
        // Entry value for verification: the location's value at the start
        // of the run (conditions are state-predicates; any concrete state
        // works as a verification probe, and production re-evaluates on
        // its own entry states).
        let Some(entry) = run.initial.0.get(loc).cloned() else {
            continue;
        };
        let class = run.task_logs[parts[0].0][parts[0].1[0].idx].class.clone();
        // Pair consecutive per-task subsequences (the pairs that actually
        // arise as (transaction, conflict-history) splits), plus the
        // first/last pair for long chains.
        let seq_of = |part: &(usize, Vec<crate::depgraph::OpNode>)| -> Vec<Op> {
            part.1
                .iter()
                .map(|n| run.task_logs[n.task][n.idx].clone())
                .collect()
        };
        for w in parts.windows(2) {
            pairs.push(CandidatePair {
                class: class.clone(),
                cell: cell.clone(),
                a: seq_of(&w[0]),
                b: seq_of(&w[1]),
                entry: entry.clone(),
            });
        }
        if parts.len() > 2 {
            pairs.push(CandidatePair {
                class: class.clone(),
                cell: cell.clone(),
                a: seq_of(&parts[0]),
                b: seq_of(&parts[parts.len() - 1]),
                entry: entry.clone(),
            });
        }
    }
    pairs
}

/// Whether every operation of both sides is a blind fetch-add (possibly
/// none): such pairs commute for every input state and every binding.
fn pure_adds(pair: &CandidatePair) -> bool {
    pair.a
        .iter()
        .chain(&pair.b)
        .all(|op| matches!(op.kind, OpKind::Scalar(janus_log::ScalarOp::Add(_))))
}

/// The relational mutation sequence of a side, if it consists solely of
/// relational ops (for the symbolic verification pass).
fn rel_ops(ops: &[Op]) -> Option<Vec<RelOp>> {
    ops.iter()
        .map(|op| match &op.kind {
            OpKind::Rel(r) => Some(r.clone()),
            OpKind::Scalar(_) => None,
        })
        .collect()
}

/// Runs the training phase over one or more sequential runs, producing
/// the commutativity cache consumed by
/// [`janus_detect::CachedSequenceDetector`].
pub fn train(runs: &[TrainingRun], config: TrainConfig) -> (CommutativityCache, TrainReport) {
    let mut cache = CommutativityCache::new(config.use_abstraction);
    let mut report = TrainReport::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();

    for run in runs {
        let pairs = mine_pairs(run);
        report.pairs_mined += pairs.len() as u64;
        for pair in pairs {
            let ra: Vec<&Op> = pair.a.iter().collect();
            let rb: Vec<&Op> = pair.b.iter().collect();
            let pat_a = abstract_sequence(&pair.cell, &ra, config.use_abstraction);
            let pat_b = abstract_sequence(&pair.cell, &rb, config.use_abstraction);
            let shape = CellShape::of(&pair.cell);

            // Deduplicate by abstract signature.
            let sig = format!("{}#{:?}#{pat_a}#{pat_b}", pair.class, shape);
            let sig_rev = format!("{}#{:?}#{pat_b}#{pat_a}", pair.class, shape);
            if seen.contains(&sig) || seen.contains(&sig_rev) {
                continue;
            }
            seen.insert(sig);

            // Verify on the concrete training observation that the
            // input-dependent evaluation agrees with the exact online
            // check; a disagreement would indicate a summary-algebra bug,
            // and the pair is skipped (production then falls back to
            // write-set — sound).
            let online = conflict_cell(&pair.entry, &pair.cell, &ra, &rb, Relaxation::strict());
            let evaluated = evaluate_condition(
                Condition::InputDependent,
                Some(&pair.entry),
                &pair.cell,
                &ra,
                &rb,
                Relaxation::strict(),
            );
            if evaluated != Some(online) {
                report.pairs_rejected += 1;
                continue;
            }

            // Symbolic verification pass for relational pairs (§6.2).
            if config.verify_symbolic {
                if let (Some(ops_a), Some(ops_b)) = (rel_ops(&pair.a), rel_ops(&pair.b)) {
                    report.symbolic_attempted += 1;
                    if symbolic::prove_commutes_all_states(
                        schema_of(&pair.entry),
                        &ops_a,
                        &ops_b,
                        true,
                    ) {
                        report.symbolic_proved += 1;
                    }
                }
            }

            let condition = if pure_adds(&pair) {
                Condition::CommutesAlways
            } else {
                Condition::InputDependent
            };
            cache.insert(pair.class.clone(), shape, pat_a, pat_b, condition);
            report.entries_added += 1;
        }
    }
    (cache, report)
}

fn schema_of(entry: &Value) -> &janus_relational::Schema {
    match entry {
        Value::Rel(r) => r.schema(),
        Value::Scalar(_) => {
            // rel_ops() only returns Some for relational sequences, whose
            // entry values are relations; this branch is unreachable in
            // practice but kept total.
            static EMPTY: std::sync::OnceLock<std::sync::Arc<janus_relational::Schema>> =
                std::sync::OnceLock::new();
            EMPTY.get_or_init(|| janus_relational::Schema::new(&["v"]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_detect::SequenceOracle;
    use janus_log::{LocId, ScalarOp};
    use janus_relational::Scalar;

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    /// A run of three tasks, each doing a balanced add/subtract on the
    /// shared `work` counter (Figure 1).
    fn identity_run() -> TrainingRun {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(0));
        let mut v = Value::int(0);
        let class = ClassId::new("work");
        let mut task = |kinds: Vec<OpKind>| -> Vec<Op> {
            kinds
                .into_iter()
                .map(|k| Op::execute(LocId(0), class.clone(), k, &mut v).0)
                .collect()
        };
        TrainingRun {
            initial: state,
            task_logs: vec![
                task(vec![add(2), add(-2)]),
                task(vec![add(3), add(-3)]),
                task(vec![add(1), add(-1), add(4), add(-4)]),
            ],
        }
    }

    #[test]
    fn mining_finds_cross_task_pairs() {
        let run = identity_run();
        let pairs = mine_pairs(&run);
        // Tasks (0,1), (1,2) and (0,2).
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|p| p.class == ClassId::new("work")));
        assert!(pairs.iter().all(|p| p.cell == CellKey::Whole));
    }

    #[test]
    fn training_learns_identity_pattern() {
        let run = identity_run();
        let (cache, report) = train(&[run], TrainConfig::default());
        assert!(report.entries_added >= 1);
        assert_eq!(report.pairs_rejected, 0);

        // A production query with fresh deltas and lengths hits the cache
        // and reports no conflict.
        let class = ClassId::new("work");
        let entry = Value::int(7);
        let mut v = entry.clone();
        let a: Vec<Op> = [add(9), add(-9)]
            .into_iter()
            .map(|k| Op::execute(LocId(5), class.clone(), k, &mut v).0)
            .collect();
        let b: Vec<Op> = [add(6), add(-6), add(2), add(-2), add(1), add(-1)]
            .into_iter()
            .map(|k| Op::execute(LocId(5), class.clone(), k, &mut v).0)
            .collect();
        let ra: Vec<&Op> = a.iter().collect();
        let rb: Vec<&Op> = b.iter().collect();
        let answer = cache.query(
            &class,
            Some(&entry),
            &CellKey::Whole,
            &ra,
            &rb,
            Relaxation::strict(),
        );
        assert_eq!(answer, Some(false), "identity pattern generalizes");
    }

    #[test]
    fn training_without_abstraction_misses_longer_sequences() {
        let run = identity_run();
        let (cache, _) = train(
            &[run],
            TrainConfig {
                use_abstraction: false,
                verify_symbolic: false,
            },
        );
        let class = ClassId::new("work");
        let entry = Value::int(0);
        let mut v = entry.clone();
        // Length-10 production sequence: no exact-length pattern matches
        // (training saw lengths 2 and 4).
        let a: Vec<Op> = (0..5)
            .flat_map(|i| [add(i + 1), add(-(i + 1))])
            .map(|k| Op::execute(LocId(5), class.clone(), k, &mut v).0)
            .collect();
        let b: Vec<Op> = [add(1), add(-1)]
            .into_iter()
            .map(|k| Op::execute(LocId(5), class.clone(), k, &mut v).0)
            .collect();
        let ra: Vec<&Op> = a.iter().collect();
        let rb: Vec<&Op> = b.iter().collect();
        assert_eq!(
            cache.query(
                &class,
                Some(&entry),
                &CellKey::Whole,
                &ra,
                &rb,
                Relaxation::strict()
            ),
            None,
            "exact patterns cannot match unseen lengths"
        );
    }

    #[test]
    fn equal_writes_condition_is_input_dependent() {
        // Two tasks writing the same value to a shared cell.
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(0));
        let class = ClassId::new("pixel");
        let mut v = Value::int(0);
        let mut task = |kinds: Vec<OpKind>| -> Vec<Op> {
            kinds
                .into_iter()
                .map(|k| Op::execute(LocId(0), class.clone(), k, &mut v).0)
                .collect()
        };
        let run = TrainingRun {
            initial: state,
            task_logs: vec![task(vec![write(3)]), task(vec![write(3)])],
        };
        let (cache, _) = train(&[run], TrainConfig::default());

        let entry = Value::int(0);
        let mk = |val: i64| -> Vec<Op> {
            let mut v = entry.clone();
            vec![Op::execute(LocId(9), class.clone(), write(val), &mut v).0]
        };
        let (a, b_eq, b_ne) = (mk(5), mk(5), mk(6));
        let q = |x: &Vec<Op>, y: &Vec<Op>| {
            let rx: Vec<&Op> = x.iter().collect();
            let ry: Vec<&Op> = y.iter().collect();
            cache.query(
                &class,
                Some(&entry),
                &CellKey::Whole,
                &rx,
                &ry,
                Relaxation::strict(),
            )
        };
        assert_eq!(q(&a, &b_eq), Some(false), "equal writes commute");
        assert_eq!(q(&a, &b_ne), Some(true), "unequal writes conflict");
    }

    #[test]
    fn report_counts_symbolic_proofs() {
        use janus_relational::{tuple, Fd, Relation, Schema};
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let mut state = MapState::default();
        state
            .0
            .insert(LocId(0), Value::Rel(Relation::empty(schema)));
        let class = ClassId::new("map");
        let mut v = state.0[&LocId(0)].clone();
        let mut task = |kinds: Vec<OpKind>| -> Vec<Op> {
            kinds
                .into_iter()
                .map(|k| Op::execute(LocId(0), class.clone(), k, &mut v).0)
                .collect()
        };
        let run = TrainingRun {
            initial: state,
            task_logs: vec![
                task(vec![
                    OpKind::Rel(RelOp::insert(tuple![1, 10])),
                    OpKind::Rel(RelOp::remove(tuple![1, 10])),
                ]),
                task(vec![
                    OpKind::Rel(RelOp::insert(tuple![1, 20])),
                    OpKind::Rel(RelOp::remove(tuple![1, 20])),
                ]),
            ],
        };
        let (_, report) = train(&[run], TrainConfig::default());
        assert!(report.symbolic_attempted >= 1);
        assert_eq!(report.symbolic_attempted, report.symbolic_proved);
    }
}
