//! Online training via memoization.
//!
//! §5.3 notes that JANUS "can be configured to perform the sequence-based
//! check online, which is unlikely to be acceptable in performance
//! (though memoization can be used to support online training)". This
//! module implements that configuration: an oracle that starts from an
//! empty (or pre-trained) cache, answers hits from it, and on a miss
//! evaluates the precise Figure 8 check *and memoizes the abstract pair*
//! so every later query with the same shape takes the cheap
//! summary-based path. No offline phase is needed; the first production
//! run pays for its own training.

use std::sync::RwLock;

use janus_detect::{conflict_cell, Relaxation, SequenceOracle};
use janus_log::{CellKey, ClassId, Op, OpKind, ScalarOp};
use janus_relational::Value;

use crate::abstraction::abstract_sequence;
use crate::cache::{CellShape, CommutativityCache};
use crate::condition::Condition;

/// A [`SequenceOracle`] that learns during production (memoized online
/// training).
///
/// # Example
///
/// ```
/// use janus_detect::CachedSequenceDetector;
/// use janus_train::OnlineLearningCache;
///
/// let detector = CachedSequenceDetector::new(OnlineLearningCache::new(true));
/// # let _ = detector;
/// ```
#[derive(Debug)]
pub struct OnlineLearningCache {
    inner: RwLock<CommutativityCache>,
    use_abstraction: bool,
}

impl OnlineLearningCache {
    /// Starts with an empty cache.
    pub fn new(use_abstraction: bool) -> Self {
        OnlineLearningCache {
            inner: RwLock::new(CommutativityCache::new(use_abstraction)),
            use_abstraction,
        }
    }

    /// Starts from an offline-trained cache and keeps learning.
    pub fn from_cache(cache: CommutativityCache) -> Self {
        let use_abstraction = cache.uses_abstraction();
        OnlineLearningCache {
            inner: RwLock::new(cache),
            use_abstraction,
        }
    }

    /// Number of memoized entries so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("cache lock").len()
    }

    /// Whether nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unique (hits, misses) of the underlying cache — a miss here is a
    /// query that had to be evaluated online and triggered learning.
    pub fn unique_counts(&self) -> (u64, u64) {
        self.inner
            .read()
            .expect("cache lock")
            .stats()
            .unique_counts()
    }
}

/// Whether every op of both sequences is a blind fetch-add.
fn pure_adds(a: &[&Op], b: &[&Op]) -> bool {
    a.iter()
        .chain(b.iter())
        .all(|op| matches!(op.kind, OpKind::Scalar(ScalarOp::Add(_))))
}

impl SequenceOracle for OnlineLearningCache {
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool> {
        // Fast path: the memoized cache answers.
        {
            let cache = self.inner.read().expect("cache lock");
            if let Some(answer) = cache.query(class, entry, cell, txn, committed, relax) {
                return Some(answer);
            }
        }
        // Miss: evaluate the precise check online (this needs the entry
        // state; without it we cannot learn or answer).
        let entry_value = entry?;
        let verdict = conflict_cell(entry_value, cell, txn, committed, relax);

        // Memoize the abstract pair so the next query with this shape
        // takes the summary path.
        let condition = if pure_adds(txn, committed) {
            Condition::CommutesAlways
        } else {
            Condition::InputDependent
        };
        let pat_a = abstract_sequence(cell, txn, self.use_abstraction);
        let pat_b = abstract_sequence(cell, committed, self.use_abstraction);
        self.inner.write().expect("cache lock").insert(
            class.clone(),
            CellShape::of(cell),
            pat_a,
            pat_b,
            condition,
        );
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_detect::{CachedSequenceDetector, ConflictDetector, MapState};
    use janus_log::LocId;

    fn mk_ops(kinds: Vec<OpKind>, entry: i64) -> Vec<Op> {
        let mut v = Value::int(entry);
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("work"), k, &mut v).0)
            .collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    #[test]
    fn learns_on_first_miss_and_hits_after() {
        let oracle = OnlineLearningCache::new(true);
        let detector = CachedSequenceDetector::new(oracle);
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(0));

        let a = mk_ops(vec![add(2), add(-2)], 0);
        let b = mk_ops(vec![add(3), add(-3)], 0);
        assert!(!detector.detect_ops(&state, &a, &b));
        // The detector always gets an answer (the oracle self-trains)...
        let (_, _, hits, misses) = detector.stats().snapshot();
        assert_eq!((hits, misses), (1, 0));
        // ...but internally the first query was a learning miss.
        assert_eq!(detector.oracle().unique_counts(), (0, 1));
        assert_eq!(detector.oracle().len(), 1);

        // Different deltas and lengths, same shape: an internal hit now.
        let c = mk_ops(vec![add(5), add(-5), add(1), add(-1)], 0);
        assert!(!detector.detect_ops(&state, &a, &c));
        let (uh, _) = detector.oracle().unique_counts();
        assert!(uh >= 1, "second query must hit the memoized entry");
    }

    #[test]
    fn learned_entries_keep_input_dependence() {
        let oracle = OnlineLearningCache::new(true);
        let detector = CachedSequenceDetector::new(oracle);
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(0));

        let w = |v: i64| OpKind::Scalar(ScalarOp::Write(janus_relational::Scalar::Int(v)));
        let a = mk_ops(vec![w(5)], 0);
        let b_eq = mk_ops(vec![w(5)], 0);
        let b_ne = mk_ops(vec![w(6)], 0);
        // First query learns from the equal-writes instance...
        assert!(!detector.detect_ops(&state, &a, &b_eq));
        // ...but the memoized condition still rejects unequal writes.
        assert!(detector.detect_ops(&state, &a, &b_ne));
    }

    #[test]
    fn seeding_from_offline_cache() {
        let oracle = OnlineLearningCache::from_cache(CommutativityCache::new(true));
        assert!(oracle.is_empty());
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(0));
        let detector = CachedSequenceDetector::new(oracle);
        let a = mk_ops(vec![add(1)], 0);
        let _ = detector.detect_ops(&state, &a, &a);
        assert_eq!(detector.oracle().len(), 1);
    }
}
