//! The JANUS training phase (§5.1–§5.2) and commutativity cache.
//!
//! The purpose of training is to specialize conflict detection in advance
//! of parallel execution: the application is exercised single-threaded on
//! training inputs, dependencies between trace operations are tracked
//! (Equation 1), and the per-location dependent operation subsequences
//! mined from the resulting dependence graph are paired up across task
//! boundaries. For each pair, a commutativity *condition* — a predicate
//! over input states — is computed offline, so that at runtime a conflict
//! query is answered by a cache lookup plus a cheap condition evaluation
//! instead of the quadratic `SAMEREAD`/`COMMUTE` re-evaluation of Figure 8.
//!
//! Generalization happens along two axes:
//!
//! * **Classes** — conditions are keyed by the locations' static
//!   [`janus_log::ClassId`], not their runtime identity, so knowledge
//!   transfers from training inputs to production inputs.
//! * **Sequence abstraction** (§5.2) — concrete sequences are abstracted
//!   into a regular form by collapsing *idempotent* repeated blocks under
//!   the Kleene-cross operator (Lemma 5.1), so a condition learned from
//!   `{work+=x; work-=x}` matches the arbitrarily long add/subtract
//!   chains production inputs induce.
//!
//! The [`CommutativityCache`] produced by [`train`] implements
//! [`janus_detect::SequenceOracle`] and plugs into
//! [`janus_detect::CachedSequenceDetector`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstraction;
mod cache;
mod condition;
mod depgraph;
mod effect;
mod frozen;
mod mine;
mod online;
mod persistfmt;
pub mod symbolic;

pub use abstraction::{
    abstract_kind, abstract_sequence, matches_pattern, AbstractOp, Element, Nfa, Pattern,
};
pub use cache::{CacheKey, CacheStats, CellShape, CommutativityCache, TrainReport};
pub use condition::{evaluate_condition, Condition};
pub use depgraph::{DependenceGraph, OpNode};
pub use effect::{compose, summarize, CellContent, Determined, Summary};
pub use frozen::{FrozenCache, FrozenCacheStats, INLINE_OPS};
pub use mine::{mine_pairs, train, CandidatePair, TrainConfig, TrainingRun};
pub use online::OnlineLearningCache;
pub use persistfmt::{parse_pattern, ParseCacheError};
