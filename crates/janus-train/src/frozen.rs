//! A frozen, lock-free view of the commutativity cache for production.
//!
//! [`CommutativityCache`] answers queries through a `BTreeMap` walk and
//! records statistics under a `Mutex` — fine for training, but in
//! production every validated cell takes that lock, and under high thread
//! counts the stats mutex becomes the hottest line in the cache. Freezing
//! converts the trained cache into an immutable, hash-indexed structure
//! whose query path is entirely lock-free:
//!
//! * buckets move into a two-level `HashMap<ClassId, _>` keyed by class
//!   then cell shape, so a lookup is one hash probe with **no key clone**;
//! * hit/miss totals are plain atomic counters;
//! * the §7.1 *unique*-signature set becomes an open-addressed table of
//!   `AtomicU64` slots claimed by compare-and-swap — readers and writers
//!   never block, and the table is bounded (1 MiB) regardless of run
//!   length.
//!
//! Combined with the compact-NFA matcher and inline abstraction buffers,
//! a frozen query performs **zero heap allocations** for transactions
//! touching ≤ [`INLINE_OPS`] operations per cell (the common case by a
//! wide margin), and acquires no mutex ever.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use janus_detect::{Relaxation, SequenceOracle};
use janus_log::{CellKey, ClassId, Op};
use janus_relational::Value;

use crate::abstraction::{abstract_kind, AbstractOp};
use crate::cache::{signature, CellShape, CommutativityCache, Entry};
use crate::condition::evaluate_condition;
use crate::Condition;

/// Abstract operations buffered on the stack per query side; longer
/// sequences spill to a heap vector.
pub const INLINE_OPS: usize = 32;

/// Number of `AtomicU64` slots in the unique-signature table. Power of
/// two; at 2× [`FrozenCacheStats::UNIQUE_SIG_CAP`] the load factor stays
/// ≤ 0.5, keeping linear probes short.
const SIG_SLOTS: usize = 1 << 17;

/// Probes attempted before a signature is counted as overflow instead of
/// inserted. Bounds worst-case work under adversarial clustering.
const MAX_PROBES: usize = 64;

/// Stand-in for the (astronomically unlikely) signature value 0, which
/// the table reserves as the empty-slot marker.
const ZERO_SIG_ALIAS: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Lock-free statistics of a [`FrozenCache`]: the same counters as
/// [`crate::CacheStats`] (total and §7.1 *unique* hits/misses), recorded
/// without any mutex. Unique signatures live in a fixed open-addressed
/// table of [`AtomicU64`] slots; a slot is claimed exactly once by
/// compare-and-swap, and the thread that wins the claim attributes the
/// signature's first outcome — identical first-outcome semantics to the
/// mutexed implementation. Signatures that arrive after
/// [`UNIQUE_SIG_CAP`](FrozenCacheStats::UNIQUE_SIG_CAP) distinct entries
/// (or whose probe window is full) are counted in
/// [`unique_overflow`](FrozenCacheStats::unique_overflow).
#[derive(Debug)]
pub struct FrozenCacheStats {
    /// Total per-cell queries answered from the cache.
    pub hits: AtomicU64,
    /// Total per-cell queries that missed.
    pub misses: AtomicU64,
    slots: Box<[AtomicU64]>,
    occupied: AtomicU64,
    unique_hits: AtomicU64,
    unique_misses: AtomicU64,
    unique_overflow: AtomicU64,
}

impl Default for FrozenCacheStats {
    fn default() -> Self {
        FrozenCacheStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            slots: (0..SIG_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            occupied: AtomicU64::new(0),
            unique_hits: AtomicU64::new(0),
            unique_misses: AtomicU64::new(0),
            unique_overflow: AtomicU64::new(0),
        }
    }
}

impl FrozenCacheStats {
    /// Maximum number of distinct query signatures tracked for the
    /// unique-miss-rate metric (matches [`crate::CacheStats`]).
    pub const UNIQUE_SIG_CAP: usize = 1 << 16;

    /// Unique query signatures that hit, and that missed.
    pub fn unique_counts(&self) -> (u64, u64) {
        (
            self.unique_hits.load(Ordering::Relaxed),
            self.unique_misses.load(Ordering::Relaxed),
        )
    }

    /// Signatures not tracked because the unique set was full (or the
    /// bounded probe window was exhausted).
    pub fn unique_overflow(&self) -> u64 {
        self.unique_overflow.load(Ordering::Relaxed)
    }

    /// The unique-query miss rate in percent (the Figure 11 metric), or
    /// `None` if no queries were recorded.
    pub fn miss_rate_percent(&self) -> Option<f64> {
        let (h, m) = self.unique_counts();
        let total = h + m;
        (total > 0).then(|| 100.0 * m as f64 / total as f64)
    }

    /// Resets all statistics. Not linearizable against concurrent
    /// `record` calls — call between measurement phases, as with
    /// [`crate::CacheStats::reset`].
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.occupied.store(0, Ordering::Relaxed);
        self.unique_hits.store(0, Ordering::Relaxed);
        self.unique_misses.store(0, Ordering::Relaxed);
        self.unique_overflow.store(0, Ordering::Relaxed);
        for slot in self.slots.iter() {
            slot.store(0, Ordering::Relaxed);
        }
    }

    fn record(&self, sig: u64, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let sig = if sig == 0 { ZERO_SIG_ALIAS } else { sig };
        let mask = SIG_SLOTS - 1;
        let mut idx = splitmix64(sig) as usize & mask;
        for _ in 0..MAX_PROBES {
            let slot = &self.slots[idx];
            match slot.load(Ordering::Relaxed) {
                0 => {
                    // Reserve capacity before claiming the slot so the
                    // distinct-signature count never exceeds the cap.
                    if self.occupied.fetch_add(1, Ordering::Relaxed)
                        >= FrozenCacheStats::UNIQUE_SIG_CAP as u64
                    {
                        self.occupied.fetch_sub(1, Ordering::Relaxed);
                        self.unique_overflow.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    match slot.compare_exchange(0, sig, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(_) => {
                            if hit {
                                self.unique_hits.fetch_add(1, Ordering::Relaxed);
                            } else {
                                self.unique_misses.fetch_add(1, Ordering::Relaxed);
                            }
                            return;
                        }
                        Err(existing) => {
                            // Lost the race: return the reservation and
                            // re-examine what the winner wrote.
                            self.occupied.fetch_sub(1, Ordering::Relaxed);
                            if existing == sig {
                                return;
                            }
                        }
                    }
                }
                s if s == sig => return,
                _ => {}
            }
            idx = (idx + 1) & mask;
        }
        self.unique_overflow.fetch_add(1, Ordering::Relaxed);
    }
}

impl janus_obs::Snapshot for FrozenCacheStats {
    fn source(&self) -> &'static str {
        "cache"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let (unique_hits, unique_misses) = self.unique_counts();
        vec![
            ("hits".to_string(), self.hits.load(Ordering::Relaxed)),
            ("misses".to_string(), self.misses.load(Ordering::Relaxed)),
            ("unique_hits".to_string(), unique_hits),
            ("unique_misses".to_string(), unique_misses),
            ("unique_overflow".to_string(), self.unique_overflow()),
        ]
    }
}

/// Per-class entry lists, split by cell shape so a query indexes its
/// shape without composing a hashed key.
#[derive(Debug, Default)]
struct FrozenBucket {
    whole: Box<[Entry]>,
    keyed: Box<[Entry]>,
}

impl FrozenBucket {
    fn of(&self, shape: CellShape) -> &[Entry] {
        match shape {
            CellShape::Whole => &self.whole,
            CellShape::Keyed => &self.keyed,
        }
    }
}

/// The immutable production form of a trained [`CommutativityCache`]:
/// hash-indexed entry lookup, lock-free statistics, and a query path
/// that allocates nothing for ordinary transactions. Built once with
/// [`CommutativityCache::freeze`], then shared across worker threads
/// behind an `Arc`. Implements [`SequenceOracle`], so it plugs into
/// `janus_detect::CachedSequenceDetector` exactly like the mutable cache.
#[derive(Debug)]
pub struct FrozenCache {
    buckets: HashMap<ClassId, FrozenBucket>,
    use_abstraction: bool,
    entries: usize,
    stats: FrozenCacheStats,
}

impl FrozenCache {
    pub(crate) fn from_cache(cache: CommutativityCache) -> FrozenCache {
        let (tree, use_abstraction) = cache.into_parts();
        let mut buckets: HashMap<ClassId, FrozenBucket> = HashMap::new();
        let mut entries = 0;
        for (key, list) in tree {
            entries += list.len();
            let bucket = buckets.entry(key.class).or_default();
            match key.shape {
                CellShape::Whole => bucket.whole = list.into_boxed_slice(),
                CellShape::Keyed => bucket.keyed = list.into_boxed_slice(),
            }
        }
        FrozenCache {
            buckets,
            use_abstraction,
            entries,
            stats: FrozenCacheStats::default(),
        }
    }

    /// Whether sequence abstraction was in force during training.
    pub fn uses_abstraction(&self) -> bool {
        self.use_abstraction
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Cache usage statistics.
    pub fn stats(&self) -> &FrozenCacheStats {
        &self.stats
    }

    fn find(
        &self,
        class: &ClassId,
        shape: CellShape,
        qa: &[AbstractOp],
        qb: &[AbstractOp],
    ) -> Option<Condition> {
        let entries = self.buckets.get(class)?.of(shape);
        entries
            .iter()
            .find(|e| {
                (e.nfa_a.matches(qa) && e.nfa_b.matches(qb))
                    || (e.nfa_a.matches(qb) && e.nfa_b.matches(qa))
            })
            .map(|e| e.condition)
    }
}

/// Abstracts `ops` into `buf` when it fits, spilling to `heap` otherwise.
fn abstract_into<'a>(
    ops: &[&Op],
    buf: &'a mut [AbstractOp; INLINE_OPS],
    heap: &'a mut Vec<AbstractOp>,
) -> &'a [AbstractOp] {
    if ops.len() <= INLINE_OPS {
        for (slot, op) in buf.iter_mut().zip(ops) {
            *slot = abstract_kind(op);
        }
        &buf[..ops.len()]
    } else {
        heap.extend(ops.iter().map(|op| abstract_kind(op)));
        &heap[..]
    }
}

impl SequenceOracle for FrozenCache {
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool> {
        let (mut buf_a, mut heap_a) = ([AbstractOp::Read; INLINE_OPS], Vec::new());
        let (mut buf_b, mut heap_b) = ([AbstractOp::Read; INLINE_OPS], Vec::new());
        let qa = abstract_into(txn, &mut buf_a, &mut heap_a);
        let qb = abstract_into(committed, &mut buf_b, &mut heap_b);
        let shape = CellShape::of(cell);
        let sig = signature(class, shape, qa, qb);
        let condition = self.find(class, shape, qa, qb);
        let answer =
            condition.and_then(|c| evaluate_condition(c, entry, cell, txn, committed, relax));
        self.stats.record(sig, answer.is_some());
        answer
    }
}

impl CommutativityCache {
    /// Consumes the trained cache into its immutable production form:
    /// hash-indexed buckets, lock-free statistics, allocation-free
    /// queries. Statistics accumulated before freezing are discarded —
    /// freeze at the train/production boundary, before measurement.
    pub fn freeze(self) -> FrozenCache {
        FrozenCache::from_cache(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{Element, Pattern};
    use janus_log::{LocId, OpKind, ScalarOp};

    fn mk_ops(kinds: Vec<OpKind>, class: &str) -> Vec<Op> {
        let mut v = Value::int(0);
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new(class), k, &mut v).0)
            .collect()
    }

    fn add_pattern_plus() -> Pattern {
        Pattern(vec![Element::Plus(vec![
            Element::Atom(AbstractOp::Add),
            Element::Atom(AbstractOp::Add),
        ])])
    }

    fn trained() -> FrozenCache {
        let mut cache = CommutativityCache::new(true);
        cache.insert(
            ClassId::new("work"),
            CellShape::Whole,
            add_pattern_plus(),
            add_pattern_plus(),
            Condition::CommutesAlways,
        );
        cache.freeze()
    }

    #[test]
    fn frozen_answers_match_mutable_cache() {
        let frozen = trained();
        assert_eq!(frozen.len(), 1);
        assert!(!frozen.is_empty());
        assert!(frozen.uses_abstraction());
        let a = mk_ops(
            vec![
                OpKind::Scalar(ScalarOp::Add(1)),
                OpKind::Scalar(ScalarOp::Add(-1)),
            ],
            "work",
        );
        let ra: Vec<&Op> = a.iter().collect();
        let answer = frozen.query(
            &ClassId::new("work"),
            None,
            &CellKey::Whole,
            &ra,
            &ra,
            Relaxation::strict(),
        );
        assert_eq!(answer, Some(false));
        assert_eq!(frozen.stats().unique_counts(), (1, 0));
        // The same abstract query again: totals grow, uniques do not.
        frozen
            .query(
                &ClassId::new("work"),
                None,
                &CellKey::Whole,
                &ra,
                &ra,
                Relaxation::strict(),
            )
            .unwrap();
        assert_eq!(frozen.stats().hits.load(Ordering::Relaxed), 2);
        assert_eq!(frozen.stats().unique_counts(), (1, 0));
        assert_eq!(frozen.stats().miss_rate_percent(), Some(0.0));
    }

    #[test]
    fn frozen_misses_unknown_classes() {
        let frozen = trained();
        let a = mk_ops(vec![OpKind::Scalar(ScalarOp::Read)], "other");
        let ra: Vec<&Op> = a.iter().collect();
        assert_eq!(
            frozen.query(
                &ClassId::new("other"),
                None,
                &CellKey::Whole,
                &ra,
                &ra,
                Relaxation::strict()
            ),
            None
        );
        assert_eq!(frozen.stats().unique_counts(), (0, 1));
        assert_eq!(frozen.stats().miss_rate_percent(), Some(100.0));
    }

    #[test]
    fn oversized_sequences_spill_and_still_answer() {
        let frozen = trained();
        let a = mk_ops(
            (0..(INLINE_OPS + 6))
                .map(|i| OpKind::Scalar(ScalarOp::Add(i as i64 % 3 - 1)))
                .collect(),
            "work",
        );
        let ra: Vec<&Op> = a.iter().collect();
        let answer = frozen.query(
            &ClassId::new("work"),
            None,
            &CellKey::Whole,
            &ra,
            &ra,
            Relaxation::strict(),
        );
        assert!(answer.is_some(), "spill path must reach the same entries");
    }

    #[test]
    fn frozen_signature_table_caps_and_overflows() {
        let stats = FrozenCacheStats::default();
        let extra = 10u64;
        for sig in 1..=(FrozenCacheStats::UNIQUE_SIG_CAP as u64 + extra) {
            stats.record(sig, false);
        }
        let (uh, um) = stats.unique_counts();
        assert_eq!((uh, um), (0, FrozenCacheStats::UNIQUE_SIG_CAP as u64));
        assert_eq!(stats.unique_overflow(), extra);
        // Re-recording a tracked signature is not overflow.
        stats.record(1, true);
        assert_eq!(stats.unique_overflow(), extra);
        assert_eq!(
            stats.unique_counts(),
            (0, FrozenCacheStats::UNIQUE_SIG_CAP as u64),
            "first outcome decides a signature's class"
        );
        stats.reset();
        assert_eq!(stats.unique_counts(), (0, 0));
        assert_eq!(stats.unique_overflow(), 0);
        // The table is reusable after reset.
        stats.record(7, true);
        assert_eq!(stats.unique_counts(), (1, 0));
    }

    #[test]
    fn zero_signature_is_remapped() {
        let stats = FrozenCacheStats::default();
        stats.record(0, true);
        stats.record(0, true);
        assert_eq!(stats.unique_counts(), (1, 0));
        assert_eq!(stats.hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_recording_loses_no_totals() {
        use std::sync::Arc;
        let stats = Arc::new(FrozenCacheStats::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        // Half the signatures are shared across threads,
                        // half are thread-private.
                        let sig = if i % 2 == 0 { i } else { t * 1_000_000 + i };
                        stats.record(sig, i % 3 == 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = stats.hits.load(Ordering::Relaxed) + stats.misses.load(Ordering::Relaxed);
        assert_eq!(total, 4000);
        let (uh, um) = stats.unique_counts();
        // 500 shared + 4×500 private distinct signatures, minus the
        // sig=0 alias collapsing nothing here (0 is even → shared).
        assert_eq!(uh + um, 500 + 4 * 500);
        assert_eq!(stats.unique_overflow(), 0);
    }
}
