//! Serialization of trained commutativity caches.
//!
//! The offline/production split of Figure 6 implies the cache outlives
//! the training process. This module round-trips a
//! [`CommutativityCache`] through a line-based text format:
//!
//! ```text
//! janus-cache v1 abstraction=true
//! entry\t<class>\t<shape>\t<pattern-a>\t<pattern-b>\t<condition>
//! ```
//!
//! Patterns use the display syntax (`{aa}+r`); class labels escape
//! backslash, tab and newline.

use std::fmt;

use janus_log::ClassId;

use crate::abstraction::{AbstractOp, Element, Pattern};
use crate::cache::{CellShape, CommutativityCache};
use crate::condition::Condition;

/// An error while parsing a serialized cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCacheError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCacheError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn char_op(c: char) -> Option<AbstractOp> {
    Some(match c {
        'r' => AbstractOp::Read,
        'a' => AbstractOp::Add,
        'm' => AbstractOp::Max,
        'w' => AbstractOp::Write,
        'i' => AbstractOp::Insert,
        'd' => AbstractOp::Remove,
        'k' => AbstractOp::RemoveKey,
        's' => AbstractOp::SelectPinned,
        'S' => AbstractOp::SelectAll,
        'C' => AbstractOp::Clear,
        _ => return None,
    })
}

/// Parses the display syntax of a [`Pattern`] (`{aa}+r`, nesting
/// allowed).
pub fn parse_pattern(s: &str) -> Result<Pattern, String> {
    // Stack of element lists: the top is the block being built.
    let mut stack: Vec<Vec<Element>> = vec![Vec::new()];
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => stack.push(Vec::new()),
            '}' => {
                if chars.next() != Some('+') {
                    return Err("'}' must be followed by '+'".to_string());
                }
                let block = stack.pop().expect("non-empty stack");
                if stack.is_empty() {
                    return Err("unbalanced '}'".to_string());
                }
                if block.is_empty() {
                    return Err("empty '+' block".to_string());
                }
                stack
                    .last_mut()
                    .expect("stack has a frame")
                    .push(Element::Plus(block));
            }
            c => match char_op(c) {
                Some(op) => stack
                    .last_mut()
                    .expect("stack has a frame")
                    .push(Element::Atom(op)),
                None => return Err(format!("unknown abstract op {c:?}")),
            },
        }
    }
    if stack.len() != 1 {
        return Err("unbalanced '{'".to_string());
    }
    Ok(Pattern(stack.pop().expect("single frame")))
}

impl CommutativityCache {
    /// Serializes the cache to the text format.
    pub fn to_text(&self) -> String {
        let mut out = format!("janus-cache v1 abstraction={}\n", self.uses_abstraction());
        for (class, shape, pat_a, pat_b, condition) in self.entries_iter() {
            let shape = match shape {
                CellShape::Whole => "whole",
                CellShape::Keyed => "keyed",
            };
            let cond = match condition {
                Condition::CommutesAlways => "always",
                Condition::InputDependent => "input",
            };
            out.push_str(&format!(
                "entry\t{}\t{shape}\t{pat_a}\t{pat_b}\t{cond}\n",
                escape(class.label()),
            ));
        }
        out
    }

    /// Parses a cache from the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCacheError`] naming the offending line on any
    /// malformed header, field count, shape, pattern or condition.
    pub fn from_text(text: &str) -> Result<CommutativityCache, ParseCacheError> {
        let err = |line: usize, message: String| ParseCacheError { line, message };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty input".to_string()))?;
        let abstraction = match header {
            "janus-cache v1 abstraction=true" => true,
            "janus-cache v1 abstraction=false" => false,
            other => return Err(err(1, format!("bad header {other:?}"))),
        };
        let mut cache = CommutativityCache::new(abstraction);
        for (i, line) in lines {
            let lineno = i + 1;
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 || fields[0] != "entry" {
                return Err(err(lineno, "expected 6 tab-separated fields".to_string()));
            }
            let class = ClassId::new(unescape(fields[1]));
            let shape = match fields[2] {
                "whole" => CellShape::Whole,
                "keyed" => CellShape::Keyed,
                other => return Err(err(lineno, format!("bad shape {other:?}"))),
            };
            let pat_a =
                parse_pattern(fields[3]).map_err(|m| err(lineno, format!("pattern a: {m}")))?;
            let pat_b =
                parse_pattern(fields[4]).map_err(|m| err(lineno, format!("pattern b: {m}")))?;
            let condition = match fields[5] {
                "always" => Condition::CommutesAlways,
                "input" => Condition::InputDependent,
                other => return Err(err(lineno, format!("bad condition {other:?}"))),
            };
            cache.insert(class, shape, pat_a, pat_b, condition);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, TrainConfig, TrainingRun};
    use janus_detect::MapState;
    use janus_log::{LocId, Op, OpKind, ScalarOp};
    use janus_relational::Value;

    fn trained() -> CommutativityCache {
        let mut initial = MapState::default();
        initial.0.insert(LocId(0), Value::int(0));
        let mk = |deltas: Vec<i64>| -> Vec<Op> {
            let mut v = Value::int(0);
            deltas
                .into_iter()
                .map(|d| {
                    Op::execute(
                        LocId(0),
                        ClassId::new("work\ttab"),
                        OpKind::Scalar(ScalarOp::Add(d)),
                        &mut v,
                    )
                    .0
                })
                .collect()
        };
        let run = TrainingRun {
            initial,
            task_logs: vec![mk(vec![2, -2]), mk(vec![3, -3])],
        };
        train(&[run], TrainConfig::default()).0
    }

    #[test]
    fn roundtrip_preserves_entries_and_answers() {
        let cache = trained();
        let text = cache.to_text();
        let parsed = CommutativityCache::from_text(&text).expect("parse");
        assert_eq!(parsed.len(), cache.len());
        assert_eq!(parsed.uses_abstraction(), cache.uses_abstraction());
        assert_eq!(parsed.to_text(), text, "serialization is canonical");
    }

    #[test]
    fn pattern_parse_roundtrip() {
        for src in [
            "",
            "r",
            "{aa}+",
            "{ {r}+w }+".replace(' ', "").as_str(),
            "rw{id}+C",
            "{{is}+{k}+}+",
        ] {
            let p = parse_pattern(src).expect("parse");
            assert_eq!(format!("{p}"), src);
        }
    }

    #[test]
    fn pattern_parse_errors() {
        assert!(parse_pattern("{a").is_err(), "unbalanced open");
        assert!(parse_pattern("a}+").is_err(), "unbalanced close");
        assert!(parse_pattern("{a}x").is_err(), "missing +");
        assert!(parse_pattern("{}+").is_err(), "empty block");
        assert!(parse_pattern("z").is_err(), "unknown op");
    }

    #[test]
    fn header_and_field_errors() {
        assert!(CommutativityCache::from_text("").is_err());
        assert!(CommutativityCache::from_text("nope\n").is_err());
        let bad = "janus-cache v1 abstraction=true\nentry\tc\twhole\ta\n";
        let e = CommutativityCache::from_text(bad).expect_err("field count");
        assert_eq!(e.line, 2);
        let bad = "janus-cache v1 abstraction=true\nentry\tc\tnope\ta\ta\talways\n";
        assert!(CommutativityCache::from_text(bad).is_err());
        let bad = "janus-cache v1 abstraction=true\nentry\tc\twhole\ta\ta\tmaybe\n";
        assert!(CommutativityCache::from_text(bad).is_err());
    }

    #[test]
    fn escaped_class_labels_roundtrip() {
        let cache = trained();
        let text = cache.to_text();
        assert!(text.contains("work\\ttab"), "tab must be escaped");
        let parsed = CommutativityCache::from_text(&text).expect("parse");
        let labels: Vec<String> = parsed
            .entries_iter()
            .map(|(c, _, _, _, _)| c.label().to_string())
            .collect();
        assert!(labels.iter().all(|l| l == "work\ttab"));
    }
}
