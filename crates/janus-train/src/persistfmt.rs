//! Serialization of trained commutativity caches.
//!
//! The offline/production split of Figure 6 implies the cache outlives
//! the training process — and a file that outlives its writer can rot.
//! This module round-trips a [`CommutativityCache`] through a versioned
//! line-based text format with a trailing integrity checksum:
//!
//! ```text
//! janus-cache v2 abstraction=true
//! entry\t<class>\t<shape>\t<pattern-a>\t<pattern-b>\t<condition>
//! checksum\t<fnv1a-64 of every preceding byte, 16 hex digits>
//! ```
//!
//! Patterns use the display syntax (`{aa}+r`); class labels escape
//! backslash, tab and newline. [`CommutativityCache::from_text`] also
//! reads the checksum-less v1 format (written by earlier builds), and
//! rejects unknown versions, truncation, and checksum mismatches with
//! an error naming the offending line.

use std::fmt;

use janus_log::ClassId;

use crate::abstraction::{AbstractOp, Element, Pattern};
use crate::cache::{CellShape, CommutativityCache};
use crate::condition::Condition;

/// An error while parsing a serialized cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCacheError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCacheError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn char_op(c: char) -> Option<AbstractOp> {
    Some(match c {
        'r' => AbstractOp::Read,
        'a' => AbstractOp::Add,
        'm' => AbstractOp::Max,
        'w' => AbstractOp::Write,
        'i' => AbstractOp::Insert,
        'd' => AbstractOp::Remove,
        'k' => AbstractOp::RemoveKey,
        's' => AbstractOp::SelectPinned,
        'S' => AbstractOp::SelectAll,
        'C' => AbstractOp::Clear,
        _ => return None,
    })
}

/// Parses the display syntax of a [`Pattern`] (`{aa}+r`, nesting
/// allowed).
pub fn parse_pattern(s: &str) -> Result<Pattern, String> {
    // Stack of element lists: the top is the block being built.
    let mut stack: Vec<Vec<Element>> = vec![Vec::new()];
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => stack.push(Vec::new()),
            '}' => {
                if chars.next() != Some('+') {
                    return Err("'}' must be followed by '+'".to_string());
                }
                let block = stack.pop().expect("non-empty stack");
                if stack.is_empty() {
                    return Err("unbalanced '}'".to_string());
                }
                if block.is_empty() {
                    return Err("empty '+' block".to_string());
                }
                stack
                    .last_mut()
                    .expect("stack has a frame")
                    .push(Element::Plus(block));
            }
            c => match char_op(c) {
                Some(op) => stack
                    .last_mut()
                    .expect("stack has a frame")
                    .push(Element::Atom(op)),
                None => return Err(format!("unknown abstract op {c:?}")),
            },
        }
    }
    if stack.len() != 1 {
        return Err("unbalanced '{'".to_string());
    }
    Ok(Pattern(stack.pop().expect("single frame")))
}

/// FNV-1a 64 over the serialized bytes preceding the checksum line
/// (header and entries, each including its trailing newline).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CommutativityCache {
    /// Serializes the cache to the current (v2) text format, ending with
    /// the integrity checksum line.
    pub fn to_text(&self) -> String {
        let mut out = format!("janus-cache v2 abstraction={}\n", self.uses_abstraction());
        for (class, shape, pat_a, pat_b, condition) in self.entries_iter() {
            let shape = match shape {
                CellShape::Whole => "whole",
                CellShape::Keyed => "keyed",
            };
            let cond = match condition {
                Condition::CommutesAlways => "always",
                Condition::InputDependent => "input",
            };
            out.push_str(&format!(
                "entry\t{}\t{shape}\t{pat_a}\t{pat_b}\t{cond}\n",
                escape(class.label()),
            ));
        }
        out.push_str(&format!("checksum\t{:016x}\n", fnv1a(out.as_bytes())));
        out
    }

    /// Parses a cache from the text format (v2, or the checksum-less v1
    /// written by earlier builds).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCacheError`] naming the offending line on any
    /// unsupported version, malformed header, field count, shape,
    /// pattern or condition — and, for v2, on a missing, malformed or
    /// mismatching checksum line (truncation and bit rot both land
    /// here).
    pub fn from_text(text: &str) -> Result<CommutativityCache, ParseCacheError> {
        let err = |line: usize, message: String| ParseCacheError { line, message };
        let header = text
            .lines()
            .next()
            .ok_or_else(|| err(1, "empty input".to_string()))?;
        let (version, abstraction) = match header {
            "janus-cache v2 abstraction=true" => (2, true),
            "janus-cache v2 abstraction=false" => (2, false),
            // v1 predates the checksum: still read, never written.
            "janus-cache v1 abstraction=true" => (1, true),
            "janus-cache v1 abstraction=false" => (1, false),
            other if other.starts_with("janus-cache v") => {
                return Err(err(
                    1,
                    format!(
                        "unsupported cache format version: {other:?} (this build reads v1 and v2)"
                    ),
                ));
            }
            other => return Err(err(1, format!("bad header {other:?}"))),
        };
        // v2: locate and verify the trailing checksum, then parse only
        // the body before it. The checksum line starts its own line, so
        // an escaped "checksum" inside a class label cannot shadow it.
        let body = if version >= 2 {
            let nl = text.rfind("\nchecksum\t").ok_or_else(|| {
                err(
                    text.lines().count().max(1),
                    "missing checksum line (truncated cache?)".to_string(),
                )
            })?;
            let body = &text[..nl + 1];
            let lineno = body.lines().count() + 1;
            let tail = &text[nl + 1..];
            let line = tail.lines().next().expect("found above");
            if tail.len() > line.len() + 1 {
                return Err(err(
                    lineno + 1,
                    "content after the checksum line".to_string(),
                ));
            }
            let hex = line.strip_prefix("checksum\t").expect("found above");
            let stated = u64::from_str_radix(hex, 16)
                .map_err(|_| err(lineno, format!("bad checksum field {hex:?}")))?;
            let computed = fnv1a(body.as_bytes());
            if stated != computed {
                return Err(err(
                    lineno,
                    format!(
                        "checksum mismatch: file says {stated:016x}, contents hash to \
                         {computed:016x} (corrupt or hand-edited cache)"
                    ),
                ));
            }
            body
        } else {
            text
        };
        let mut cache = CommutativityCache::new(abstraction);
        for (i, line) in body.lines().enumerate().skip(1) {
            let lineno = i + 1;
            if line.is_empty() {
                continue;
            }
            if line.starts_with("checksum\t") {
                // Only reachable in v1 input (the v2 body excludes its
                // checksum): a v1 cache never carries one.
                return Err(err(
                    lineno,
                    "unexpected checksum line in a v1 cache".to_string(),
                ));
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 || fields[0] != "entry" {
                return Err(err(lineno, "expected 6 tab-separated fields".to_string()));
            }
            let class = ClassId::new(unescape(fields[1]));
            let shape = match fields[2] {
                "whole" => CellShape::Whole,
                "keyed" => CellShape::Keyed,
                other => return Err(err(lineno, format!("bad shape {other:?}"))),
            };
            let pat_a =
                parse_pattern(fields[3]).map_err(|m| err(lineno, format!("pattern a: {m}")))?;
            let pat_b =
                parse_pattern(fields[4]).map_err(|m| err(lineno, format!("pattern b: {m}")))?;
            let condition = match fields[5] {
                "always" => Condition::CommutesAlways,
                "input" => Condition::InputDependent,
                other => return Err(err(lineno, format!("bad condition {other:?}"))),
            };
            cache.insert(class, shape, pat_a, pat_b, condition);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, TrainConfig, TrainingRun};
    use janus_detect::MapState;
    use janus_log::{LocId, Op, OpKind, ScalarOp};
    use janus_relational::Value;

    fn trained() -> CommutativityCache {
        let mut initial = MapState::default();
        initial.0.insert(LocId(0), Value::int(0));
        let mk = |deltas: Vec<i64>| -> Vec<Op> {
            let mut v = Value::int(0);
            deltas
                .into_iter()
                .map(|d| {
                    Op::execute(
                        LocId(0),
                        ClassId::new("work\ttab"),
                        OpKind::Scalar(ScalarOp::Add(d)),
                        &mut v,
                    )
                    .0
                })
                .collect()
        };
        let run = TrainingRun {
            initial,
            task_logs: vec![mk(vec![2, -2]), mk(vec![3, -3])],
        };
        train(&[run], TrainConfig::default()).0
    }

    #[test]
    fn roundtrip_preserves_entries_and_answers() {
        let cache = trained();
        let text = cache.to_text();
        let parsed = CommutativityCache::from_text(&text).expect("parse");
        assert_eq!(parsed.len(), cache.len());
        assert_eq!(parsed.uses_abstraction(), cache.uses_abstraction());
        assert_eq!(parsed.to_text(), text, "serialization is canonical");
    }

    #[test]
    fn pattern_parse_roundtrip() {
        for src in [
            "",
            "r",
            "{aa}+",
            "{ {r}+w }+".replace(' ', "").as_str(),
            "rw{id}+C",
            "{{is}+{k}+}+",
        ] {
            let p = parse_pattern(src).expect("parse");
            assert_eq!(format!("{p}"), src);
        }
    }

    #[test]
    fn pattern_parse_errors() {
        assert!(parse_pattern("{a").is_err(), "unbalanced open");
        assert!(parse_pattern("a}+").is_err(), "unbalanced close");
        assert!(parse_pattern("{a}x").is_err(), "missing +");
        assert!(parse_pattern("{}+").is_err(), "empty block");
        assert!(parse_pattern("z").is_err(), "unknown op");
    }

    #[test]
    fn header_and_field_errors() {
        assert!(CommutativityCache::from_text("").is_err());
        assert!(CommutativityCache::from_text("nope\n").is_err());
        let bad = "janus-cache v1 abstraction=true\nentry\tc\twhole\ta\n";
        let e = CommutativityCache::from_text(bad).expect_err("field count");
        assert_eq!(e.line, 2);
        let bad = "janus-cache v1 abstraction=true\nentry\tc\tnope\ta\ta\talways\n";
        assert!(CommutativityCache::from_text(bad).is_err());
        let bad = "janus-cache v1 abstraction=true\nentry\tc\twhole\ta\ta\tmaybe\n";
        assert!(CommutativityCache::from_text(bad).is_err());
    }

    #[test]
    fn legacy_v1_caches_still_parse() {
        // A v1 serialization of `trained()`: same entries, old header,
        // no checksum line.
        let v2 = trained().to_text();
        let v1: String = v2
            .replace("janus-cache v2", "janus-cache v1")
            .lines()
            .filter(|l| !l.starts_with("checksum\t"))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = CommutativityCache::from_text(&v1).expect("v1 parses");
        assert_eq!(parsed.len(), trained().len());
        // Re-serializing a legacy cache upgrades it to v2.
        assert!(parsed.to_text().starts_with("janus-cache v2 "));
    }

    #[test]
    fn unknown_version_is_rejected_with_a_version_error() {
        let e = CommutativityCache::from_text("janus-cache v3 abstraction=true\n")
            .expect_err("future version");
        assert_eq!(e.line, 1);
        assert!(
            e.message.contains("unsupported cache format version"),
            "message: {}",
            e.message
        );
    }

    #[test]
    fn checksum_mismatch_is_detected_and_located() {
        let good = trained().to_text();
        assert!(good
            .lines()
            .last()
            .expect("non-empty")
            .starts_with("checksum\t"));
        // Corrupt one entry byte without touching the checksum line.
        let corrupt = good.replacen("whole", "keyed", 1);
        assert_ne!(corrupt, good, "the fixture must contain a whole-cell entry");
        let e = CommutativityCache::from_text(&corrupt).expect_err("corruption");
        assert_eq!(e.line, good.lines().count());
        assert!(e.message.contains("checksum mismatch"), "{}", e.message);
    }

    #[test]
    fn truncated_v2_cache_is_rejected() {
        let good = trained().to_text();
        let truncated: String = good
            .lines()
            .filter(|l| !l.starts_with("checksum\t"))
            .map(|l| format!("{l}\n"))
            .collect();
        let e = CommutativityCache::from_text(&truncated).expect_err("truncation");
        assert!(e.message.contains("missing checksum"), "{}", e.message);
    }

    #[test]
    fn malformed_checksum_and_trailing_content_are_rejected() {
        let good = trained().to_text();
        let bad_hex = good.replace("checksum\t", "checksum\tzz");
        let e = CommutativityCache::from_text(&bad_hex).expect_err("bad hex");
        assert!(e.message.contains("bad checksum field"), "{}", e.message);

        let mut trailing = good.clone();
        trailing.push_str("entry\tc\twhole\ta\ta\talways\n");
        let e = CommutativityCache::from_text(&trailing).expect_err("trailing");
        assert!(
            e.message.contains("content after the checksum"),
            "{}",
            e.message
        );
    }

    #[test]
    fn escaped_class_labels_roundtrip() {
        let cache = trained();
        let text = cache.to_text();
        assert!(text.contains("work\\ttab"), "tab must be escaped");
        let parsed = CommutativityCache::from_text(&text).expect("parse");
        let labels: Vec<String> = parsed
            .entries_iter()
            .map(|(c, _, _, _, _)| c.label().to_string())
            .collect();
        assert!(labels.iter().all(|l| l == "work\ttab"));
    }
}
