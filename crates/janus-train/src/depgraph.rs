//! The global dependence graph of a training run (§5.1, Equation 1).
//!
//! Nodes are operation instances from the sequential trace; an edge
//! `v1 → v2` labelled by location `l` records that `v1` depends on `v2`
//! (they access a common subvalue of `l`, either for reading or for
//! writing — input dependencies are subsumed). For each location, the
//! unique maximal dependence path is the chronological sequence of
//! operations touching it; partitioning that path at task boundaries
//! yields the dependent subsequences that seed commutativity training.

use std::collections::BTreeMap;

use janus_log::{CellKey, LocId, Op};
use janus_relational::CellSet;

/// A node of the dependence graph: the `idx`-th operation of task `task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpNode {
    /// Task index within the training run.
    pub task: usize,
    /// Operation index within the task's log.
    pub idx: usize,
}

/// The dependence graph over a training run's sequential trace.
#[derive(Debug, Default)]
pub struct DependenceGraph {
    /// Edges `(from, to, loc)` with `from` later in the trace than `to`.
    edges: Vec<(OpNode, OpNode, LocId)>,
    /// Per-cell maximal dependence paths, in chronological order.
    paths: BTreeMap<(LocId, CellKey), Vec<OpNode>>,
}

impl DependenceGraph {
    /// Builds the graph from per-task logs, in sequential (task-order)
    /// execution order, applying Equation 1 at footprint granularity.
    pub fn build(task_logs: &[Vec<Op>]) -> Self {
        let mut graph = DependenceGraph::default();
        // Chronological trace of (node, op).
        let trace: Vec<(OpNode, &Op)> = task_logs
            .iter()
            .enumerate()
            .flat_map(|(task, log)| {
                log.iter()
                    .enumerate()
                    .map(move |(idx, op)| (OpNode { task, idx }, op))
            })
            .collect();

        // Per-cell chronological paths.
        for (node, op) in &trace {
            let accessed = op.footprint.accessed();
            match &accessed {
                CellSet::All => {
                    graph
                        .paths
                        .entry((op.loc, CellKey::Whole))
                        .or_default()
                        .push(*node);
                }
                CellSet::Keys(keys) => {
                    for k in keys {
                        graph
                            .paths
                            .entry((op.loc, CellKey::Key(k.clone())))
                            .or_default()
                            .push(*node);
                    }
                }
                CellSet::Empty => {}
            }
        }

        // Dependence edges: consecutive operations on each cell (the
        // transitive reduction of Equation 1's dependencies within a
        // cell — every pair on a cell is dependent since read/read
        // dependencies are subsumed).
        for ((loc, _cell), nodes) in &graph.paths {
            for w in nodes.windows(2) {
                graph.edges.push((w[1], w[0], *loc));
            }
        }
        graph
    }

    /// The dependence edges `(later, earlier, loc)`.
    pub fn edges(&self) -> &[(OpNode, OpNode, LocId)] {
        &self.edges
    }

    /// The maximal dependence path for each accessed cell, chronological.
    pub fn paths(&self) -> &BTreeMap<(LocId, CellKey), Vec<OpNode>> {
        &self.paths
    }

    /// Partitions a cell's dependence path at task boundaries, yielding
    /// the per-task dependent subsequences (§5.1 "the path is then
    /// partitioned according to task boundaries").
    pub fn partitioned(&self, loc: LocId, cell: &CellKey) -> Vec<(usize, Vec<OpNode>)> {
        let Some(path) = self.paths.get(&(loc, cell.clone())) else {
            return Vec::new();
        };
        let mut out: Vec<(usize, Vec<OpNode>)> = Vec::new();
        for node in path {
            match out.last_mut() {
                Some((task, nodes)) if *task == node.task => nodes.push(*node),
                _ => out.push((node.task, vec![*node])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{ClassId, OpKind, ScalarOp};
    use janus_relational::Value;

    fn task_log(loc: u64, kinds: Vec<OpKind>, v: &mut Value) -> Vec<Op> {
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(loc), ClassId::new("x"), k, v).0)
            .collect()
    }

    #[test]
    fn paths_follow_trace_order() {
        let mut v = Value::int(0);
        let logs = vec![
            task_log(0, vec![OpKind::Scalar(ScalarOp::Add(1))], &mut v),
            task_log(0, vec![OpKind::Scalar(ScalarOp::Add(2))], &mut v),
        ];
        let g = DependenceGraph::build(&logs);
        let path = &g.paths()[&(LocId(0), CellKey::Whole)];
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], OpNode { task: 0, idx: 0 });
        assert_eq!(path[1], OpNode { task: 1, idx: 0 });
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn partition_at_task_boundaries() {
        let mut v = Value::int(0);
        let logs = vec![
            task_log(
                0,
                vec![
                    OpKind::Scalar(ScalarOp::Add(1)),
                    OpKind::Scalar(ScalarOp::Add(-1)),
                ],
                &mut v,
            ),
            task_log(0, vec![OpKind::Scalar(ScalarOp::Read)], &mut v),
        ];
        let g = DependenceGraph::build(&logs);
        let parts = g.partitioned(LocId(0), &CellKey::Whole);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].0, 1);
        assert_eq!(parts[1].1.len(), 1);
    }

    #[test]
    fn disjoint_locations_have_disjoint_paths() {
        let mut a = Value::int(0);
        let mut b = Value::int(0);
        let logs = vec![
            task_log(0, vec![OpKind::Scalar(ScalarOp::Add(1))], &mut a),
            task_log(1, vec![OpKind::Scalar(ScalarOp::Add(1))], &mut b),
        ];
        let g = DependenceGraph::build(&logs);
        assert_eq!(g.paths().len(), 2);
        assert!(g.edges().is_empty(), "no cross-location dependencies");
    }

    #[test]
    fn missing_cell_partitions_empty() {
        let g = DependenceGraph::build(&[]);
        assert!(g.partitioned(LocId(9), &CellKey::Whole).is_empty());
    }
}
