//! The commutativity cache: what training produces and production
//! queries (Figure 6).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use janus_detect::{Relaxation, SequenceOracle};
use janus_log::{CellKey, ClassId, Op};
use janus_relational::Value;

use crate::abstraction::{abstract_kind, AbstractOp, Nfa, Pattern};
use crate::condition::{evaluate_condition, Condition};

/// The granularity of a cached cell: whole-object or per-key. The key
/// value itself is abstracted away — conditions are key-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellShape {
    /// A scalar location or whole relational object.
    Whole,
    /// One key of a relational object.
    Keyed,
}

impl CellShape {
    /// The shape of a concrete cell.
    pub fn of(cell: &CellKey) -> CellShape {
        match cell {
            CellKey::Whole => CellShape::Whole,
            CellKey::Key(_) => CellShape::Keyed,
        }
    }
}

/// The bucket key of the cache: a location class at a cell granularity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// The location class.
    pub class: ClassId,
    /// The cell granularity.
    pub shape: CellShape,
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) pat_a: Pattern,
    pub(crate) pat_b: Pattern,
    /// Precompiled matchers: queries run the NFA directly, so per-query
    /// matching is linear with no compilation cost.
    pub(crate) nfa_a: Nfa,
    pub(crate) nfa_b: Nfa,
    pub(crate) condition: Condition,
}

/// Statistics of cache usage. Following §7.1, *unique* queries are
/// counted: multiple hits/misses for the same abstract query signature
/// count once. Signatures are tracked as 64-bit hashes of the abstract
/// query (not as rendered strings), and the tracked set is capped at
/// [`CacheStats::UNIQUE_SIG_CAP`] — a long production run no longer grows
/// an unbounded map of signature strings. Signatures arriving past the
/// cap are counted in [`unique_overflow`](CacheStats::unique_overflow);
/// the Figure 11 unique-miss-rate is exact whenever that counter is zero.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Total per-cell queries answered from the cache.
    pub hits: AtomicU64,
    /// Total per-cell queries that missed.
    pub misses: AtomicU64,
    unique: Mutex<BTreeMap<u64, bool>>,
    unique_overflow: AtomicU64,
}

impl CacheStats {
    /// Maximum number of distinct query signatures tracked for the
    /// unique-miss-rate metric.
    pub const UNIQUE_SIG_CAP: usize = 1 << 16;

    /// Unique query signatures that hit, and that missed.
    pub fn unique_counts(&self) -> (u64, u64) {
        let unique = self.unique.lock().expect("cache stats mutex");
        let hits = unique.values().filter(|&&h| h).count() as u64;
        let misses = unique.len() as u64 - hits;
        (hits, misses)
    }

    /// Signatures that were not tracked because the unique set had
    /// already reached [`CacheStats::UNIQUE_SIG_CAP`] distinct entries.
    pub fn unique_overflow(&self) -> u64 {
        self.unique_overflow.load(Ordering::Relaxed)
    }

    /// The unique-query miss rate in percent (the Figure 11 metric), or
    /// `None` if no queries were recorded. Exact up to
    /// [`CacheStats::UNIQUE_SIG_CAP`] distinct signatures; beyond that it
    /// covers the first `UNIQUE_SIG_CAP` (see
    /// [`unique_overflow`](CacheStats::unique_overflow)).
    pub fn miss_rate_percent(&self) -> Option<f64> {
        let (h, m) = self.unique_counts();
        let total = h + m;
        (total > 0).then(|| 100.0 * m as f64 / total as f64)
    }

    /// Resets all statistics.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.unique_overflow.store(0, Ordering::Relaxed);
        self.unique.lock().expect("cache stats mutex").clear();
    }

    fn record(&self, sig: u64, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut unique = self.unique.lock().expect("cache stats mutex");
        if !unique.contains_key(&sig) {
            if unique.len() < CacheStats::UNIQUE_SIG_CAP {
                unique.insert(sig, hit);
            } else {
                self.unique_overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl janus_obs::Snapshot for CacheStats {
    fn source(&self) -> &'static str {
        "cache"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let (unique_hits, unique_misses) = self.unique_counts();
        vec![
            ("hits".to_string(), self.hits.load(Ordering::Relaxed)),
            ("misses".to_string(), self.misses.load(Ordering::Relaxed)),
            ("unique_hits".to_string(), unique_hits),
            ("unique_misses".to_string(), unique_misses),
            ("unique_overflow".to_string(), self.unique_overflow()),
        ]
    }
}

/// Summary of a training session.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TrainReport {
    /// Candidate pairs mined from the dependence graphs.
    pub pairs_mined: u64,
    /// Distinct cache entries added.
    pub entries_added: u64,
    /// Pairs rejected because the condition evaluation disagreed with the
    /// exact online check on the training observation.
    pub pairs_rejected: u64,
    /// Relational pairs submitted to the SAT-backed symbolic verifier.
    pub symbolic_attempted: u64,
    /// Relational pairs proven universally commutative by the verifier.
    pub symbolic_proved: u64,
}

/// The commutativity cache built by [`crate::train`] and queried — as a
/// [`SequenceOracle`] — by `janus_detect::CachedSequenceDetector`.
#[derive(Debug, Default)]
pub struct CommutativityCache {
    buckets: BTreeMap<CacheKey, Vec<Entry>>,
    use_abstraction: bool,
    stats: CacheStats,
}

impl CommutativityCache {
    /// An empty cache. `use_abstraction` controls whether production
    /// queries are matched against Kleene-cross patterns (it must match
    /// the setting used during training).
    pub fn new(use_abstraction: bool) -> Self {
        CommutativityCache {
            buckets: BTreeMap::new(),
            use_abstraction,
            stats: CacheStats::default(),
        }
    }

    /// Whether sequence abstraction is in force.
    pub fn uses_abstraction(&self) -> bool {
        self.use_abstraction
    }

    /// Adds an entry for a class/shape bucket.
    pub fn insert(
        &mut self,
        class: ClassId,
        shape: CellShape,
        pat_a: Pattern,
        pat_b: Pattern,
        condition: Condition,
    ) {
        let (pat_a, pat_b) = if pat_a <= pat_b {
            (pat_a, pat_b)
        } else {
            (pat_b, pat_a)
        };
        let (nfa_a, nfa_b) = (Nfa::compile(&pat_a), Nfa::compile(&pat_b));
        self.buckets
            .entry(CacheKey { class, shape })
            .or_default()
            .push(Entry {
                pat_a,
                pat_b,
                nfa_a,
                nfa_b,
                condition,
            });
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache usage statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Iterates over the cached entries (for serialization and
    /// diagnostics).
    pub fn entries_iter(
        &self,
    ) -> impl Iterator<Item = (&ClassId, CellShape, &Pattern, &Pattern, Condition)> {
        self.buckets.iter().flat_map(|(key, entries)| {
            entries
                .iter()
                .map(move |e| (&key.class, key.shape, &e.pat_a, &e.pat_b, e.condition))
        })
    }

    /// Decomposes the cache for [`crate::FrozenCache`] construction.
    pub(crate) fn into_parts(self) -> (BTreeMap<CacheKey, Vec<Entry>>, bool) {
        (self.buckets, self.use_abstraction)
    }

    fn find(&self, key: &CacheKey, qa: &[AbstractOp], qb: &[AbstractOp]) -> Option<Condition> {
        let entries = self.buckets.get(key)?;
        entries
            .iter()
            .find(|e| {
                (e.nfa_a.matches(qa) && e.nfa_b.matches(qb))
                    || (e.nfa_a.matches(qb) && e.nfa_b.matches(qa))
            })
            .map(|e| e.condition)
    }
}

/// Feeds `Display` output straight into a hasher, so signatures keep the
/// rendered-string identity of the old implementation without building a
/// string per query.
struct HashWriter<H>(H);

impl<H: std::hash::Hasher> std::fmt::Write for HashWriter<H> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// The 64-bit signature of one abstract query: class, shape, and the two
/// rendered operation streams in symmetric (order-independent) order.
pub(crate) fn signature(
    class: &ClassId,
    shape: CellShape,
    qa: &[AbstractOp],
    qb: &[AbstractOp],
) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::fmt::Write;
    use std::hash::Hasher;

    let side = |ops: &[AbstractOp]| {
        let mut w = HashWriter(DefaultHasher::new());
        for op in ops {
            let _ = write!(w, "{op}#");
        }
        w.0.finish()
    };
    let (sa, sb) = (side(qa), side(qb));
    let (lo, hi) = if sa <= sb { (sa, sb) } else { (sb, sa) };
    let mut w = HashWriter(DefaultHasher::new());
    let _ = write!(w, "{class}#{shape:?}#");
    w.0.write_u64(lo);
    w.0.write_u64(hi);
    w.0.finish()
}

impl SequenceOracle for CommutativityCache {
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool> {
        let qa: Vec<AbstractOp> = txn.iter().map(|op| abstract_kind(op)).collect();
        let qb: Vec<AbstractOp> = committed.iter().map(|op| abstract_kind(op)).collect();
        let key = CacheKey {
            class: class.clone(),
            shape: CellShape::of(cell),
        };
        let sig = signature(class, key.shape, &qa, &qb);
        let condition = self.find(&key, &qa, &qb);
        let answer =
            condition.and_then(|c| evaluate_condition(c, entry, cell, txn, committed, relax));
        self.stats.record(sig, answer.is_some());
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::Element;
    use janus_log::{LocId, OpKind, ScalarOp};

    fn mk_ops(kinds: Vec<OpKind>, class: &str) -> Vec<Op> {
        let mut v = Value::int(0);
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new(class), k, &mut v).0)
            .collect()
    }

    fn add_pattern_plus() -> Pattern {
        Pattern(vec![Element::Plus(vec![
            Element::Atom(AbstractOp::Add),
            Element::Atom(AbstractOp::Add),
        ])])
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let mut cache = CommutativityCache::new(true);
        cache.insert(
            ClassId::new("work"),
            CellShape::Whole,
            add_pattern_plus(),
            add_pattern_plus(),
            Condition::CommutesAlways,
        );
        assert_eq!(cache.len(), 1);
        let a = mk_ops(
            vec![
                OpKind::Scalar(ScalarOp::Add(1)),
                OpKind::Scalar(ScalarOp::Add(-1)),
            ],
            "work",
        );
        let ra: Vec<&Op> = a.iter().collect();
        let answer = cache.query(
            &ClassId::new("work"),
            None,
            &CellKey::Whole,
            &ra,
            &ra,
            Relaxation::strict(),
        );
        assert_eq!(answer, Some(false));
        let (uh, um) = cache.stats().unique_counts();
        assert_eq!((uh, um), (1, 0));
    }

    #[test]
    fn wrong_class_misses() {
        let mut cache = CommutativityCache::new(true);
        cache.insert(
            ClassId::new("work"),
            CellShape::Whole,
            add_pattern_plus(),
            add_pattern_plus(),
            Condition::CommutesAlways,
        );
        let a = mk_ops(
            vec![
                OpKind::Scalar(ScalarOp::Add(1)),
                OpKind::Scalar(ScalarOp::Add(-1)),
            ],
            "other",
        );
        let ra: Vec<&Op> = a.iter().collect();
        assert_eq!(
            cache.query(
                &ClassId::new("other"),
                None,
                &CellKey::Whole,
                &ra,
                &ra,
                Relaxation::strict()
            ),
            None
        );
        let (uh, um) = cache.stats().unique_counts();
        assert_eq!((uh, um), (0, 1));
        assert_eq!(cache.stats().miss_rate_percent(), Some(100.0));
    }

    #[test]
    fn unique_counting_deduplicates() {
        let cache = CommutativityCache::new(true);
        let a = mk_ops(vec![OpKind::Scalar(ScalarOp::Read)], "x");
        let ra: Vec<&Op> = a.iter().collect();
        for _ in 0..5 {
            cache.query(
                &ClassId::new("x"),
                None,
                &CellKey::Whole,
                &ra,
                &ra,
                Relaxation::strict(),
            );
        }
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 5);
        let (uh, um) = cache.stats().unique_counts();
        assert_eq!((uh, um), (0, 1), "five identical queries count once");
    }

    #[test]
    fn symmetric_matching() {
        let mut cache = CommutativityCache::new(true);
        // pat_a = read, pat_b = {aa}+ — inserted in one order, queried in
        // the other.
        cache.insert(
            ClassId::new("x"),
            CellShape::Whole,
            Pattern(vec![Element::Atom(AbstractOp::Read)]),
            add_pattern_plus(),
            Condition::InputDependent,
        );
        let reader = mk_ops(vec![OpKind::Scalar(ScalarOp::Read)], "x");
        let adder = mk_ops(
            vec![
                OpKind::Scalar(ScalarOp::Add(2)),
                OpKind::Scalar(ScalarOp::Add(-2)),
            ],
            "x",
        );
        let rr: Vec<&Op> = reader.iter().collect();
        let rad: Vec<&Op> = adder.iter().collect();
        let entry = Value::int(0);
        // (adder, reader) — reversed relative to insertion order.
        let ans = cache.query(
            &ClassId::new("x"),
            Some(&entry),
            &CellKey::Whole,
            &rad,
            &rr,
            Relaxation::strict(),
        );
        assert_eq!(ans, Some(false), "identity delta does not disturb the read");
    }

    #[test]
    fn unique_signatures_are_capped() {
        let stats = CacheStats::default();
        let extra = 10u64;
        for sig in 0..(CacheStats::UNIQUE_SIG_CAP as u64 + extra) {
            stats.record(sig, false);
        }
        let (uh, um) = stats.unique_counts();
        assert_eq!((uh, um), (0, CacheStats::UNIQUE_SIG_CAP as u64));
        assert_eq!(stats.unique_overflow(), extra);
        // A signature already tracked is not overflow, even at capacity.
        stats.record(0, false);
        assert_eq!(stats.unique_overflow(), extra);
        stats.reset();
        assert_eq!(stats.unique_overflow(), 0);
        assert_eq!(stats.unique_counts(), (0, 0));
    }

    #[test]
    fn signature_is_symmetric() {
        let a = vec![AbstractOp::Add, AbstractOp::Read];
        let b = vec![AbstractOp::Add];
        let class = ClassId::new("x");
        assert_eq!(
            signature(&class, CellShape::Whole, &a, &b),
            signature(&class, CellShape::Whole, &b, &a)
        );
        assert_ne!(
            signature(&class, CellShape::Whole, &a, &b),
            signature(&class, CellShape::Keyed, &a, &b)
        );
    }

    #[test]
    fn stats_reset() {
        let cache = CommutativityCache::new(true);
        let a = mk_ops(vec![OpKind::Scalar(ScalarOp::Read)], "x");
        let ra: Vec<&Op> = a.iter().collect();
        cache.query(
            &ClassId::new("x"),
            None,
            &CellKey::Whole,
            &ra,
            &ra,
            Relaxation::strict(),
        );
        cache.stats().reset();
        assert_eq!(cache.stats().unique_counts(), (0, 0));
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 0);
    }
}
