//! Sequence abstraction (§5.2): generalizing concrete operation sequences
//! into a regular form with the Kleene-cross operator.
//!
//! Concrete sequences on shared locations vary dynamically with the input
//! — the add/subtract chains induced by `work` in Figure 2 are length-wise
//! proportional to the complexity of the input items — so caching
//! commutativity information for particular concrete sequences would tie
//! the cache to the training payloads. JANUS instead searches bottom-up
//! for *idempotent* adjacent repeated blocks within the concrete sequence
//! and collapses them under `+` (Lemma 5.1 justifies that the projection
//! algorithm cannot distinguish `s1·s2·s3` from `s1·s2·s2·s3` when `s2`
//! is idempotent). A production sequence matches the abstract pattern via
//! ordinary regular-expression matching over the abstract op alphabet.

use janus_log::{CellKey, Op, OpKind, ScalarOp};
use janus_relational::{CellSet, RelOp};

use crate::effect::{summarize, Determined, Summary};

/// The abstract operation alphabet: operation kinds with their parameters
/// abstracted away ("concrete values are substituted by symbolic values",
/// §3 stage 3 — the symbolic values are re-bound from the production
/// sequence when the cached condition is evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbstractOp {
    /// A scalar read.
    Read,
    /// A fetch-add with a symbolic delta.
    Add,
    /// A blind fetch-max with a symbolic bound.
    Max,
    /// A blind scalar write of a symbolic value.
    Write,
    /// A relational insert of a symbolic tuple.
    Insert,
    /// A relational exact-tuple remove.
    Remove,
    /// A relational remove-by-key.
    RemoveKey,
    /// A select whose formula pins the key columns.
    SelectPinned,
    /// A select over the whole object.
    SelectAll,
    /// A whole-object clear.
    Clear,
}

impl std::fmt::Display for AbstractOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbstractOp::Read => "r",
            AbstractOp::Add => "a",
            AbstractOp::Max => "m",
            AbstractOp::Write => "w",
            AbstractOp::Insert => "i",
            AbstractOp::Remove => "d",
            AbstractOp::RemoveKey => "k",
            AbstractOp::SelectPinned => "s",
            AbstractOp::SelectAll => "S",
            AbstractOp::Clear => "C",
        };
        write!(f, "{s}")
    }
}

/// Abstracts one logged operation.
pub fn abstract_kind(op: &Op) -> AbstractOp {
    match &op.kind {
        OpKind::Scalar(ScalarOp::Read) => AbstractOp::Read,
        OpKind::Scalar(ScalarOp::Add(_)) => AbstractOp::Add,
        OpKind::Scalar(ScalarOp::Max(_)) => AbstractOp::Max,
        OpKind::Scalar(ScalarOp::Write(_)) => AbstractOp::Write,
        OpKind::Rel(RelOp::Insert(_)) => AbstractOp::Insert,
        OpKind::Rel(RelOp::Remove(_)) => AbstractOp::Remove,
        OpKind::Rel(RelOp::RemoveKey(_)) => AbstractOp::RemoveKey,
        OpKind::Rel(RelOp::Select(_)) => {
            if op.footprint.read == CellSet::All {
                AbstractOp::SelectAll
            } else {
                AbstractOp::SelectPinned
            }
        }
        OpKind::Rel(RelOp::Clear) => AbstractOp::Clear,
    }
}

/// One element of an abstract pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Element {
    /// A single abstract operation.
    Atom(AbstractOp),
    /// One or more repetitions of a block (the Kleene cross, `{...}+`).
    Plus(Vec<Element>),
}

/// A regular abstraction of a concrete operation sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pattern(pub Vec<Element>);

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_elems(elems: &[Element], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            for e in elems {
                match e {
                    Element::Atom(a) => write!(f, "{a}")?,
                    Element::Plus(block) => {
                        write!(f, "{{")?;
                        write_elems(block, f)?;
                        write!(f, "}}+")?;
                    }
                }
            }
            Ok(())
        }
        write_elems(&self.0, f)
    }
}

/// Whether a block with this composite summary is *idempotent* in the
/// sense of Lemma 5.1: evaluating it twice from any state is
/// indistinguishable (to `CONFLICT`) from evaluating it once.
///
/// Two sufficient conditions:
/// * the block provably restores the entry state (identity / zero shift):
///   every repetition then starts from the same state, so both final
///   state and internal reads repeat exactly;
/// * the block pins the cell to a constant and none of its observations
///   escape its own writes: the post-state is a fixed point and repeated
///   observations see the pinned constant.
fn is_idempotent(summary: &Summary) -> bool {
    match &summary.determined {
        Determined::Identity => true,
        Determined::Shifted(0) => true,
        Determined::Shifted(_) => false,
        Determined::Const(_) => !summary.exposed,
        Determined::MaxedWith(_) => !summary.exposed,
        Determined::Opaque => false,
    }
}

/// Whether a block may be collapsed under `+`. Idempotent blocks qualify
/// by Lemma 5.1. Pure blind-add blocks (the *reduction* pattern) qualify
/// too, even though repeating them shifts the value: a conflict history
/// spanning several committed reducer transactions concatenates their
/// add-sequences, and the cached condition is re-evaluated on the
/// concrete production sequences anyway, so matching `a+` is sound.
fn is_pumpable(ops: &[&Op], summary: &Summary) -> bool {
    is_idempotent(summary)
        || ops
            .iter()
            .all(|op| matches!(op.kind, OpKind::Scalar(ScalarOp::Add(_))))
}

/// Abstracts a concrete per-cell subsequence into a [`Pattern`].
///
/// With `use_abstraction = false` the pattern is the plain abstract-op
/// string (ablation D2 / the "without sequence abstraction" configuration
/// of Figure 11). With `use_abstraction = true`, idempotent repeated
/// adjacent blocks are collapsed under `+`, bottom-up, to fixpoint.
pub fn abstract_sequence(cell: &CellKey, ops: &[&Op], use_abstraction: bool) -> Pattern {
    let mut items: Vec<(Element, Vec<usize>)> = ops
        .iter()
        .enumerate()
        .map(|(i, op)| (Element::Atom(abstract_kind(op)), vec![i]))
        .collect();
    if !use_abstraction {
        return Pattern(items.into_iter().map(|(e, _)| e).collect());
    }
    let block_pumpable = |items: &[(Element, Vec<usize>)]| -> bool {
        let block_ops: Vec<&Op> = items
            .iter()
            .flat_map(|(_, idxs)| idxs.iter().map(|&k| ops[k]))
            .collect();
        is_pumpable(&block_ops, &summarize(cell, &block_ops))
    };
    loop {
        // Phase 1: collapse adjacent repetitions of idempotent blocks,
        // smallest window first, to fixpoint.
        let mut changed = false;
        'collapse: for w in 1..=items.len() / 2 {
            for i in 0..=(items.len() - 2 * w) {
                let block_equal = (0..w).all(|j| items[i + j].0 == items[i + w + j].0);
                if !block_equal || !block_pumpable(&items[i..i + w]) {
                    continue;
                }
                // Greedily absorb further occurrences.
                let mut end = i + 2 * w;
                while end + w <= items.len() && (0..w).all(|j| items[i + j].0 == items[end + j].0) {
                    end += w;
                }
                let block: Vec<Element> = items[i..i + w].iter().map(|(e, _)| e.clone()).collect();
                let covered: Vec<usize> = items[i..end]
                    .iter()
                    .flat_map(|(_, idxs)| idxs.iter().copied())
                    .collect();
                items.splice(i..end, [(Element::Plus(block), covered)]);
                changed = true;
                break 'collapse;
            }
        }
        if changed {
            continue;
        }
        // Phase 2: Kleene-cross a single idempotent block even without an
        // adjacent repetition — the paper's `{work+=x; work-=x}` becomes
        // `{work+=x; work-=x}+` from one training occurrence. Skip blocks
        // that are already a lone `+` element.
        'wrap: for w in 1..=items.len() {
            for i in 0..=(items.len() - w) {
                if w == 1 && matches!(items[i].0, Element::Plus(_)) {
                    continue;
                }
                if !block_pumpable(&items[i..i + w]) {
                    continue;
                }
                let block: Vec<Element> = items[i..i + w].iter().map(|(e, _)| e.clone()).collect();
                let covered: Vec<usize> = items[i..i + w]
                    .iter()
                    .flat_map(|(_, idxs)| idxs.iter().copied())
                    .collect();
                items.splice(i..i + w, [(Element::Plus(block), covered)]);
                changed = true;
                break 'wrap;
            }
        }
        if !changed {
            break;
        }
    }
    Pattern(items.into_iter().map(|(e, _)| e).collect())
}

/// Whether the abstract-op string `s` is in the language of `pattern`.
///
/// Matching compiles the pattern to a Thompson NFA and simulates it with
/// a state set — linear in `|s| × states`, immune to the exponential
/// backtracking a naive matcher exhibits on long conflict histories
/// (which concatenate many committed transactions' subsequences).
pub fn matches_pattern(pattern: &Pattern, s: &[AbstractOp]) -> bool {
    let nfa = Nfa::compile(pattern);
    nfa.matches(s)
}

/// A Thompson NFA over the abstract-op alphabet. Compile once per
/// pattern (the cache precompiles its entries); [`Nfa::matches`] is
/// linear in the input.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `consuming[q]` = (op, target) transition out of state `q`, if any.
    consuming: Vec<Option<(AbstractOp, usize)>>,
    /// `epsilon[q]` = ε-successors of state `q`.
    epsilon: Vec<Vec<usize>>,
    accept: usize,
    /// Precomputed ε-closures as bitmasks when the NFA has ≤ 128 states
    /// (every pattern the trainer mines in practice): simulation then
    /// runs on plain word operations with zero per-match allocation.
    /// Larger NFAs fall back to the `Vec<bool>` state sets.
    closure_masks: Option<Vec<u128>>,
}

impl Nfa {
    fn new_state(&mut self) -> usize {
        self.consuming.push(None);
        self.epsilon.push(Vec::new());
        self.consuming.len() - 1
    }

    /// Compiles `elems` as a concatenation from `entry`, returning the
    /// exit state.
    fn compile_seq(&mut self, elems: &[Element], entry: usize) -> usize {
        let mut cur = entry;
        for e in elems {
            cur = match e {
                Element::Atom(op) => {
                    let next = self.new_state();
                    self.consuming[cur] = Some((*op, next));
                    next
                }
                Element::Plus(block) => {
                    // cur -ε-> body_entry; body_exit -ε-> body_entry (repeat)
                    // and body_exit -ε-> out.
                    let body_entry = self.new_state();
                    self.epsilon[cur].push(body_entry);
                    let body_exit = self.compile_seq(block, body_entry);
                    let out = self.new_state();
                    self.epsilon[body_exit].push(body_entry);
                    self.epsilon[body_exit].push(out);
                    out
                }
            };
        }
        cur
    }

    /// Compiles a pattern.
    pub fn compile(pattern: &Pattern) -> Nfa {
        let mut nfa = Nfa {
            consuming: Vec::new(),
            epsilon: Vec::new(),
            accept: 0,
            closure_masks: None,
        };
        let entry = nfa.new_state();
        nfa.accept = nfa.compile_seq(&pattern.0, entry);
        nfa.closure_masks = nfa.compute_closure_masks();
        nfa
    }

    /// `masks[q]` = the ε-closure of `{q}` as a bitmask, by fixpoint
    /// iteration (compile-time cost only). `None` when the NFA is too
    /// large for 128-bit state sets.
    fn compute_closure_masks(&self) -> Option<Vec<u128>> {
        let n = self.consuming.len();
        if n > 128 {
            return None;
        }
        let mut masks: Vec<u128> = (0..n).map(|q| 1u128 << q).collect();
        loop {
            let mut changed = false;
            for q in 0..n {
                let mut m = masks[q];
                for &t in &self.epsilon[q] {
                    m |= masks[t];
                }
                if m != masks[q] {
                    masks[q] = m;
                    changed = true;
                }
            }
            if !changed {
                return Some(masks);
            }
        }
    }

    /// Bitmask simulation: the state set is a `u128`, ε-closure is a
    /// table lookup, and nothing is allocated.
    fn matches_compact(&self, masks: &[u128], s: &[AbstractOp]) -> bool {
        let mut current: u128 = masks[0];
        for &op in s {
            let mut next: u128 = 0;
            let mut live = current;
            while live != 0 {
                let q = live.trailing_zeros() as usize;
                live &= live - 1;
                if let Some((t_op, t)) = self.consuming[q] {
                    if t_op == op {
                        next |= masks[t];
                    }
                }
            }
            if next == 0 {
                return false;
            }
            current = next;
        }
        current & (1u128 << self.accept) != 0
    }

    fn closure(&self, set: &mut [bool]) {
        let mut stack: Vec<usize> = (0..set.len()).filter(|&q| set[q]).collect();
        while let Some(q) = stack.pop() {
            for &t in &self.epsilon[q] {
                if !set[t] {
                    set[t] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// Whether `s` is in the pattern's language.
    pub fn matches(&self, s: &[AbstractOp]) -> bool {
        if let Some(masks) = &self.closure_masks {
            return self.matches_compact(masks, s);
        }
        let n = self.consuming.len();
        let mut current = vec![false; n];
        current[0] = true;
        self.closure(&mut current);
        for &op in s {
            let mut next = vec![false; n];
            let mut any = false;
            for (q, _) in current.iter().enumerate().filter(|(_, &live)| live) {
                if let Some((t_op, t)) = self.consuming[q] {
                    if t_op == op {
                        next[t] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            self.closure(&mut next);
            current = next;
        }
        current[self.accept]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{ClassId, LocId};
    use janus_relational::{tuple, Fd, Relation, Schema, Value};

    fn mk_ops(kinds: Vec<OpKind>, start: &Value) -> Vec<Op> {
        let mut v = start.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("t"), k, &mut v).0)
            .collect()
    }

    fn refs(ops: &[Op]) -> Vec<&Op> {
        ops.iter().collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn string(ops: &[&Op]) -> Vec<AbstractOp> {
        ops.iter().map(|op| abstract_kind(op)).collect()
    }

    #[test]
    fn identity_block_collapses_to_plus() {
        // { +x; -x; +y; -y } abstracts to {add add}+ .
        let entry = Value::int(0);
        let ops = mk_ops(vec![add(2), add(-2), add(3), add(-3)], &entry);
        let r = refs(&ops);
        let p = abstract_sequence(&CellKey::Whole, &r, true);
        // Blind adds are pumpable (reduction pattern), so the whole chain
        // collapses to a single crossed add.
        assert_eq!(format!("{p}"), "{a}+");
        // It matches itself and any pumping.
        assert!(matches_pattern(&p, &string(&r)));
        let pumped = mk_ops(
            vec![add(1), add(-1), add(5), add(-5), add(7), add(-7)],
            &entry,
        );
        assert!(matches_pattern(&p, &string(&refs(&pumped))));
        let single = mk_ops(vec![add(9), add(-9)], &entry);
        assert!(matches_pattern(&p, &string(&refs(&single))));
    }

    #[test]
    fn exposed_shifting_block_not_collapsed() {
        // { read; +1 } both shifts the value and exposes a read:
        // repetitions are distinguishable, so no Plus may cover the pair.
        let entry = Value::int(0);
        let rd = OpKind::Scalar(ScalarOp::Read);
        let ops = mk_ops(vec![rd.clone(), add(1), rd, add(1)], &entry);
        let p = abstract_sequence(&CellKey::Whole, &refs(&ops), true);
        use AbstractOp::*;
        // Whatever nesting emerges, pumping the read/add *alternation*
        // must not be admitted (the reads observe different values);
        // only homogeneous read or add runs may stretch.
        assert!(matches_pattern(&p, &[Read, Add, Read, Add]));
        assert!(matches_pattern(&p, &[Read, Read, Add, Read, Add, Add]));
        assert!(
            !matches_pattern(&p, &[Read, Add, Read, Add, Read, Add]),
            "a third read/add alternation must not match"
        );
    }

    #[test]
    fn write_read_block_collapses() {
        // { write v; read } pins the value and covers its read.
        let entry = Value::int(0);
        let w = |v: i64| OpKind::Scalar(ScalarOp::Write(janus_relational::Scalar::Int(v)));
        let rd = OpKind::Scalar(ScalarOp::Read);
        let ops = mk_ops(vec![w(1), rd.clone(), w(2), rd], &entry);
        let p = abstract_sequence(&CellKey::Whole, &refs(&ops), true);
        assert_eq!(format!("{p}"), "{wr}+");
    }

    #[test]
    fn exposed_read_write_pair_cannot_pump() {
        // { read; write v } exposes its read: the block as a whole is not
        // idempotent, so the abstraction must not allow pumping the
        // read/write alternation from a single occurrence.
        let entry = Value::int(0);
        let w = |v: i64| OpKind::Scalar(ScalarOp::Write(janus_relational::Scalar::Int(v)));
        let rd = OpKind::Scalar(ScalarOp::Read);
        let ops = mk_ops(vec![rd, w(1)], &entry);
        let r = refs(&ops);
        let p = abstract_sequence(&CellKey::Whole, &r, true);
        // Individually, reads and covered writes are idempotent, so each
        // is crossed on its own — but the pair never is.
        assert_eq!(format!("{p}"), "{r}+{w}+");
        assert!(matches_pattern(&p, &string(&r)));
        use AbstractOp::*;
        assert!(
            !matches_pattern(&p, &[Read, Write, Read, Write]),
            "the exposed read/write alternation must not pump"
        );
    }

    #[test]
    fn without_abstraction_pattern_is_exact() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![add(2), add(-2), add(3), add(-3)], &entry);
        let r = refs(&ops);
        let p = abstract_sequence(&CellKey::Whole, &r, false);
        assert_eq!(format!("{p}"), "aaaa");
        assert!(matches_pattern(&p, &string(&r)));
        // A shorter production sequence does not match the exact pattern.
        let short = mk_ops(vec![add(1), add(-1)], &entry);
        assert!(!matches_pattern(&p, &string(&refs(&short))));
    }

    #[test]
    fn insert_remove_identity_collapses_per_key() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::empty(schema));
        let cell = CellKey::Key(janus_relational::Key::scalar(1i64));
        let ops = mk_ops(
            vec![
                OpKind::Rel(RelOp::insert(tuple![1, 10])),
                OpKind::Rel(RelOp::remove(tuple![1, 10])),
                OpKind::Rel(RelOp::insert(tuple![1, 20])),
                OpKind::Rel(RelOp::remove(tuple![1, 20])),
            ],
            &entry,
        );
        let p = abstract_sequence(&cell, &refs(&ops), true);
        assert_eq!(format!("{p}"), "{id}+");
    }

    #[test]
    fn nested_plus_matching() {
        // Pattern {{a a}+ w}+ built by hand matches strings of the shape
        // ((aa)+ w)+.
        let inner = Element::Plus(vec![
            Element::Atom(AbstractOp::Add),
            Element::Atom(AbstractOp::Add),
        ]);
        let p = Pattern(vec![Element::Plus(vec![
            inner,
            Element::Atom(AbstractOp::Write),
        ])]);
        use AbstractOp::*;
        assert!(matches_pattern(&p, &[Add, Add, Write]));
        assert!(matches_pattern(&p, &[Add, Add, Add, Add, Write]));
        assert!(matches_pattern(
            &p,
            &[Add, Add, Write, Add, Add, Add, Add, Write]
        ));
        assert!(!matches_pattern(&p, &[Add, Write]));
        assert!(!matches_pattern(&p, &[Add, Add]));
        assert!(!matches_pattern(&p, &[]));
    }

    #[test]
    fn compact_and_fallback_simulations_agree() {
        // Small pattern: the ≤128-state bitmask path.
        let small = Pattern(vec![Element::Plus(vec![Element::Atom(AbstractOp::Add)])]);
        let nfa = Nfa::compile(&small);
        assert!(nfa.matches(&[AbstractOp::Add, AbstractOp::Add]));
        assert!(!nfa.matches(&[AbstractOp::Read]));
        assert!(!nfa.matches(&[]));
        // A >128-state pattern exercises the Vec<bool> fallback on the
        // same language questions.
        let big = Pattern(vec![Element::Atom(AbstractOp::Add); 200]);
        let big_nfa = Nfa::compile(&big);
        assert!(big_nfa.matches(&[AbstractOp::Add; 200]));
        assert!(!big_nfa.matches(&[AbstractOp::Add; 199]));
        assert!(!big_nfa.matches(&[AbstractOp::Add; 201]));
    }

    #[test]
    fn empty_sequence_abstracts_to_empty_pattern() {
        let p = abstract_sequence(&CellKey::Whole, &[], true);
        assert_eq!(p, Pattern::default());
        assert!(matches_pattern(&p, &[]));
        assert!(!matches_pattern(&p, &[AbstractOp::Read]));
    }

    /// Lemma 5.1, as a property: pumping an idempotent block yields a
    /// sequence the abstraction still matches.
    #[test]
    fn pumping_property() {
        let entry = Value::int(0);
        let base = mk_ops(vec![add(4), add(-4)], &entry);
        let p = abstract_sequence(&CellKey::Whole, &refs(&base), true);
        for reps in 1..6 {
            let kinds: Vec<OpKind> = (0..reps)
                .flat_map(|i| vec![add(i + 1), add(-(i + 1))])
                .collect();
            let pumped = mk_ops(kinds, &entry);
            assert!(
                matches_pattern(&p, &string(&refs(&pumped))),
                "pumped {reps}x must match"
            );
        }
    }
}
