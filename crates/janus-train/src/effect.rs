//! Composite effect summaries of per-cell operation sequences.
//!
//! A [`Summary`] captures, in O(1) space, everything the cached detector
//! needs to know about a subsequence's effect on one cell:
//!
//! * [`Determined`] — the final cell value as a function of the entry
//!   value (identity, integer shift, a constant, or opaque);
//! * whether the subsequence *exposes* an observation of the entry state
//!   (an observing operation not covered by the subsequence's own prior
//!   writes);
//! * whether it writes at all.
//!
//! Summaries compose associatively ([`compose`]), which is what makes the
//! Kleene-cross abstraction of §5.2 work: a `+`-block's summary describes
//! every number of repetitions at once.

use janus_detect::{cell_value, observes, CellValue};
use janus_log::{CellKey, Op, OpKind, ScalarOp};
use janus_relational::{CellSet, RelOp, Scalar, Tuple, Value};

/// The final content of a cell when it is independent of the entry value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellContent {
    /// A scalar constant.
    Scalar(Scalar),
    /// The tuple under a relational key (`None` = absent).
    Entry(Option<Tuple>),
    /// A whole relational object determined by clearing and then applying
    /// the recorded mutations.
    ClearedThen(Vec<RelOp>),
}

impl CellContent {
    /// Materializes the content as a [`CellValue`], using `entry` only to
    /// recover the relation schema for [`CellContent::ClearedThen`].
    pub fn materialize(&self, entry: &Value) -> Option<CellValue> {
        match self {
            CellContent::Scalar(s) => Some(CellValue::Whole(Value::Scalar(s.clone()))),
            CellContent::Entry(t) => Some(CellValue::Entry(t.clone())),
            CellContent::ClearedThen(ops) => match entry {
                Value::Rel(r) => {
                    let mut rel = r.clone();
                    rel.clear();
                    for op in ops {
                        op.apply(&mut rel);
                    }
                    Some(CellValue::Whole(Value::Rel(rel)))
                }
                Value::Scalar(_) => None,
            },
        }
    }
}

/// The final value of a cell as a function of its entry value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Determined {
    /// Final value equals the entry value (no mutation, or mutations that
    /// provably cancel).
    Identity,
    /// Final value is the (integer) entry value plus a delta.
    Shifted(i64),
    /// Final value is a constant, independent of the entry value.
    Const(CellContent),
    /// Final value is the maximum of the (integer) entry value and a
    /// bound (a blind fetch-max chain — JGraphT's `maxColor`).
    MaxedWith(i64),
    /// The final value is some unknown function of the entry value.
    Opaque,
}

impl Determined {
    /// Whether the final value is independent of the entry value.
    pub fn is_const(&self) -> bool {
        matches!(self, Determined::Const(_))
    }

    /// Evaluates the final cell value given the entry *location* value and
    /// the cell. Returns `None` if the value cannot be determined.
    pub fn final_value(&self, entry: &Value, cell: &CellKey) -> Option<CellValue> {
        match self {
            Determined::Identity => Some(cell_value(entry, cell)),
            Determined::Shifted(d) => match cell_value(entry, cell) {
                CellValue::Whole(Value::Scalar(Scalar::Int(i))) => Some(CellValue::Whole(
                    Value::Scalar(Scalar::Int(i.wrapping_add(*d))),
                )),
                _ => None,
            },
            Determined::Const(c) => c.materialize(entry),
            Determined::MaxedWith(v) => match cell_value(entry, cell) {
                CellValue::Whole(Value::Scalar(Scalar::Int(i))) => {
                    Some(CellValue::Whole(Value::Scalar(Scalar::Int(i.max(*v)))))
                }
                _ => None,
            },
            Determined::Opaque => None,
        }
    }
}

/// The composite effect of a per-cell subsequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// The final cell value as a function of the entry value.
    pub determined: Determined,
    /// Whether any observing operation sees a value influenced by the
    /// entry state (i.e. not covered by the subsequence's prior writes).
    pub exposed: bool,
    /// Whether the subsequence writes the cell at all.
    pub writes: bool,
}

impl Summary {
    /// The summary of the empty subsequence.
    pub fn empty() -> Self {
        Summary {
            determined: Determined::Identity,
            exposed: false,
            writes: false,
        }
    }
}

/// Sequential composition: the summary of `a` followed by `b`.
pub fn compose(a: &Summary, b: &Summary) -> Summary {
    let determined = match (&a.determined, &b.determined) {
        (d, Determined::Identity) => d.clone(),
        (Determined::Identity, d) => d.clone(),
        (Determined::Shifted(d1), Determined::Shifted(d2)) => {
            Determined::Shifted(d1.wrapping_add(*d2))
        }
        (Determined::Const(CellContent::Scalar(Scalar::Int(i))), Determined::Shifted(d)) => {
            Determined::Const(CellContent::Scalar(Scalar::Int(i.wrapping_add(*d))))
        }
        (Determined::MaxedWith(a), Determined::MaxedWith(b)) => Determined::MaxedWith(*a.max(b)),
        (Determined::Const(CellContent::Scalar(Scalar::Int(i))), Determined::MaxedWith(v)) => {
            Determined::Const(CellContent::Scalar(Scalar::Int(*i.max(v))))
        }
        (_, Determined::Const(c)) => Determined::Const(c.clone()),
        _ => Determined::Opaque,
    };
    Summary {
        determined,
        // b's observations are covered when a pins the value to a constant.
        exposed: a.exposed || (b.exposed && !a.determined.is_const()),
        writes: a.writes || b.writes,
    }
}

/// The summary of a single operation restricted to `cell`.
fn op_summary(op: &Op, cell: &CellKey) -> Summary {
    let obs = observes(op);
    match (&op.kind, cell) {
        (OpKind::Scalar(ScalarOp::Read), _) => Summary {
            determined: Determined::Identity,
            exposed: obs,
            writes: false,
        },
        (OpKind::Scalar(ScalarOp::Write(v)), _) => Summary {
            determined: Determined::Const(CellContent::Scalar(v.clone())),
            exposed: false,
            writes: true,
        },
        (OpKind::Scalar(ScalarOp::Add(d)), _) => Summary {
            determined: Determined::Shifted(*d),
            exposed: false,
            writes: true,
        },
        (OpKind::Scalar(ScalarOp::Max(v)), _) => Summary {
            determined: Determined::MaxedWith(*v),
            exposed: false,
            writes: true,
        },
        (OpKind::Rel(rel), CellKey::Key(key)) => match rel {
            RelOp::Insert(t) => Summary {
                determined: Determined::Const(CellContent::Entry(Some(t.clone()))),
                exposed: false,
                writes: true,
            },
            RelOp::RemoveKey(_) => Summary {
                determined: Determined::Const(CellContent::Entry(None)),
                exposed: obs,
                writes: op.is_write(),
            },
            RelOp::Remove(t) => {
                // Removing an exact tuple leaves the key empty only if the
                // entry held exactly `t`; composition resolves this when a
                // preceding op pinned the content.
                Summary {
                    determined: Determined::Opaque,
                    exposed: obs,
                    writes: op.is_write(),
                }
                .resolve_remove(t, key)
            }
            RelOp::Select(_) => Summary {
                determined: Determined::Identity,
                exposed: obs,
                writes: false,
            },
            RelOp::Clear => Summary {
                determined: Determined::Const(CellContent::Entry(None)),
                exposed: false,
                writes: true,
            },
        },
        (OpKind::Rel(rel), CellKey::Whole) => match rel {
            RelOp::Select(_) => Summary {
                determined: Determined::Identity,
                exposed: obs,
                writes: false,
            },
            RelOp::Clear => Summary {
                determined: Determined::Const(CellContent::ClearedThen(Vec::new())),
                exposed: false,
                writes: true,
            },
            mutation => Summary {
                determined: Determined::Opaque,
                exposed: obs,
                writes: op.is_write() || matches!(mutation, RelOp::Insert(_)),
            },
        },
    }
}

impl Summary {
    /// Post-processing for exact-tuple removals: nothing to resolve at the
    /// single-op level (composition handles pinned contents), but keep the
    /// hook separate for clarity.
    fn resolve_remove(self, _t: &Tuple, _key: &janus_relational::Key) -> Summary {
        self
    }
}

/// Composition that additionally resolves whole-relation mutations into a
/// [`CellContent::ClearedThen`] chain and exact-tuple removals against
/// pinned contents.
fn compose_op(acc: &Summary, op: &Op, cell: &CellKey) -> Summary {
    // Whole-relation mutations extend a cleared chain.
    if let (CellKey::Whole, OpKind::Rel(rel)) = (cell, &op.kind) {
        if rel.is_mutation() {
            if let Determined::Const(CellContent::ClearedThen(ops)) = &acc.determined {
                let mut ops = ops.clone();
                if matches!(rel, RelOp::Clear) {
                    ops.clear();
                } else {
                    ops.push(rel.clone());
                }
                return Summary {
                    determined: Determined::Const(CellContent::ClearedThen(ops)),
                    exposed: acc.exposed,
                    writes: true,
                };
            }
        }
    }
    // Exact-tuple removal against a pinned per-key content.
    if let (CellKey::Key(_), OpKind::Rel(RelOp::Remove(t))) = (cell, &op.kind) {
        if let Determined::Const(CellContent::Entry(pinned)) = &acc.determined {
            let after = if pinned.as_ref() == Some(t) {
                None
            } else {
                pinned.clone()
            };
            return Summary {
                determined: Determined::Const(CellContent::Entry(after)),
                exposed: acc.exposed,
                writes: true,
            };
        }
    }
    compose(acc, &op_summary(op, cell))
}

/// Summarizes a per-cell subsequence: the fold of [`compose`] over the
/// operations' individual summaries, with whole-relation and exact-removal
/// refinements.
pub fn summarize(cell: &CellKey, ops: &[&Op]) -> Summary {
    let mut acc = Summary::empty();
    for op in ops {
        // Skip operations that don't actually touch this cell (defensive;
        // decomposition already filters).
        if matches!(cell, CellKey::Key(k) if !op.footprint.accessed().covers(k))
            && op.footprint.accessed() != CellSet::All
        {
            continue;
        }
        acc = compose_op(&acc, op, cell);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_detect::{commute, conflict_cell, Relaxation};
    use janus_log::{ClassId, LocId};
    use janus_relational::{tuple, Fd, Formula, Key, Relation, Schema};

    fn mk_ops(kinds: Vec<OpKind>, start: &Value) -> Vec<Op> {
        let mut v = start.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("t"), k, &mut v).0)
            .collect()
    }

    fn refs(ops: &[Op]) -> Vec<&Op> {
        ops.iter().collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn read() -> OpKind {
        OpKind::Scalar(ScalarOp::Read)
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    #[test]
    fn identity_sequence_summary() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![add(2), add(-2)], &entry);
        let s = summarize(&CellKey::Whole, &refs(&ops));
        assert_eq!(s.determined, Determined::Shifted(0));
        assert!(!s.exposed);
        assert!(s.writes);
    }

    #[test]
    fn write_then_read_is_const_unexposed() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![write(7), read()], &entry);
        let s = summarize(&CellKey::Whole, &refs(&ops));
        assert_eq!(
            s.determined,
            Determined::Const(CellContent::Scalar(Scalar::Int(7)))
        );
        assert!(!s.exposed, "read is covered by the write");
    }

    #[test]
    fn read_then_write_is_exposed() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![read(), write(7)], &entry);
        let s = summarize(&CellKey::Whole, &refs(&ops));
        assert!(s.exposed);
        assert!(s.determined.is_const());
    }

    #[test]
    fn write_plus_delta_composes() {
        let entry = Value::int(0);
        let ops = mk_ops(vec![write(10), add(5)], &entry);
        let s = summarize(&CellKey::Whole, &refs(&ops));
        assert_eq!(
            s.determined,
            Determined::Const(CellContent::Scalar(Scalar::Int(15)))
        );
    }

    #[test]
    fn final_value_agrees_with_replay() {
        let entry = Value::int(3);
        let cases = vec![
            vec![add(2), add(-2)],
            vec![add(5)],
            vec![write(9)],
            vec![write(9), add(1), read()],
            vec![read(), add(4), write(0), add(2)],
        ];
        for kinds in cases {
            let ops = mk_ops(kinds.clone(), &entry);
            let r = refs(&ops);
            let s = summarize(&CellKey::Whole, &r);
            let replayed = janus_detect::replay_cell(&entry, &r);
            if let Some(fv) = s.determined.final_value(&entry, &CellKey::Whole) {
                assert_eq!(
                    fv,
                    cell_value(&replayed, &CellKey::Whole),
                    "summary disagrees with replay for {kinds:?}"
                );
            }
        }
    }

    #[test]
    fn per_key_insert_remove_chain() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::empty(schema));
        let cell = CellKey::Key(Key::scalar(1i64));
        let ops = mk_ops(
            vec![
                OpKind::Rel(RelOp::insert(tuple![1, 10])),
                OpKind::Rel(RelOp::remove(tuple![1, 10])),
            ],
            &entry,
        );
        let s = summarize(&cell, &refs(&ops));
        assert_eq!(
            s.determined,
            Determined::Const(CellContent::Entry(None)),
            "insert then remove of the same tuple leaves the key empty"
        );
        assert!(!s.exposed);
    }

    #[test]
    fn bare_remove_is_opaque() {
        let schema = Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::from_tuples(schema, [tuple![1, 10]]));
        let cell = CellKey::Key(Key::scalar(1i64));
        let ops = mk_ops(vec![OpKind::Rel(RelOp::remove(tuple![1, 10]))], &entry);
        let s = summarize(&cell, &refs(&ops));
        assert_eq!(s.determined, Determined::Opaque);
    }

    #[test]
    fn clear_then_inserts_is_const_whole() {
        let schema = Schema::with_fd(&["i", "b"], Fd::new(&[0], &[1]));
        let entry = Value::Rel(Relation::from_tuples(
            std::sync::Arc::clone(&schema),
            [tuple![9, true]],
        ));
        let ops = mk_ops(
            vec![
                OpKind::Rel(RelOp::Clear),
                OpKind::Rel(RelOp::insert(tuple![1, true])),
                OpKind::Rel(RelOp::select(Formula::eq(0, 1i64))),
            ],
            &entry,
        );
        let s = summarize(&CellKey::Whole, &refs(&ops));
        assert!(s.determined.is_const());
        assert!(!s.exposed, "select after clear is covered");
        let fv = s
            .determined
            .final_value(&entry, &CellKey::Whole)
            .expect("determinable");
        let expected = {
            let mut r = Relation::empty(schema);
            r.insert(tuple![1, true]);
            CellValue::Whole(Value::Rel(r))
        };
        assert_eq!(fv, expected);
    }

    #[test]
    fn compose_is_consistent_with_concatenation() {
        let entry = Value::int(2);
        let a = mk_ops(vec![add(3), read()], &entry);
        let mut mid = entry.clone();
        for op in &a {
            op.kind.apply(&mut mid);
        }
        let b = mk_ops(vec![write(1), add(1)], &mid);
        let ra = refs(&a);
        let rb = refs(&b);
        let sa = summarize(&CellKey::Whole, &ra);
        let sb = summarize(&CellKey::Whole, &rb);
        let all: Vec<&Op> = ra.iter().chain(rb.iter()).copied().collect();
        let s_all = summarize(&CellKey::Whole, &all);
        assert_eq!(compose(&sa, &sb), s_all);
    }

    /// Cross-check: when both summaries are unexposed and the composed
    /// finals agree, the online detector agrees there is no conflict.
    #[test]
    fn summary_no_conflict_implies_online_no_conflict() {
        let entry = Value::int(1);
        let pairs = vec![
            (vec![add(2), add(-2)], vec![add(3), add(-3)]),
            (vec![add(1)], vec![add(2)]),
            (vec![write(5)], vec![write(5)]),
            (vec![write(5), read()], vec![add(1), add(-1)]),
        ];
        for (ka, kb) in pairs {
            let a = mk_ops(ka.clone(), &entry);
            let b = mk_ops(kb.clone(), &entry);
            let (ra, rb) = (refs(&a), refs(&b));
            let sa = summarize(&CellKey::Whole, &ra);
            let sb = summarize(&CellKey::Whole, &rb);
            let ab = compose(&sa, &sb)
                .determined
                .final_value(&entry, &CellKey::Whole);
            let ba = compose(&sb, &sa)
                .determined
                .final_value(&entry, &CellKey::Whole);
            let summary_ok = !sa.exposed && !sb.exposed && ab.is_some() && ab == ba;
            if summary_ok {
                assert!(
                    !conflict_cell(&entry, &CellKey::Whole, &ra, &rb, Relaxation::default()),
                    "summary said commute but online disagrees: {ka:?} vs {kb:?}"
                );
                assert!(commute(&entry, &CellKey::Whole, &ra, &rb));
            }
        }
    }
}
