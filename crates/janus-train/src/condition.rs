//! Commutativity conditions: the values stored in the cache.
//!
//! A condition is a predicate over *input states* (§5.1: "the conditions
//! refer to the input state in which the sequences are evaluated"),
//! re-bound at production time to the concrete matched sequences. The
//! evaluation cost is linear in the sequence lengths — one effect-summary
//! fold per side plus O(1) algebra — in contrast to the quadratic
//! prefix-replay of the online detector, which is what keeps cached
//! detection "on a par with" write-set detection.

use janus_detect::{cell_value, commute, read_prefixes, same_read, Relaxation};
use janus_log::{CellKey, Op};
use janus_relational::Value;

use crate::effect::{compose, summarize, Summary};

/// A cached commutativity condition for a pair of abstract sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// The pair commutes for every input state and every binding of the
    /// symbolic parameters (e.g. two pure fetch-add sequences).
    CommutesAlways,
    /// Commutativity depends on the input state and the bound parameters;
    /// evaluate the designated-input-state predicate at query time.
    InputDependent,
}

/// Evaluates a condition for a concrete query. Returns `Some(conflict)`;
/// `None` when the entry state needed by an input-dependent condition is
/// unavailable.
pub fn evaluate_condition(
    condition: Condition,
    entry: Option<&Value>,
    cell: &CellKey,
    txn: &[&Op],
    committed: &[&Op],
    relax: Relaxation,
) -> Option<bool> {
    match condition {
        Condition::CommutesAlways => Some(false),
        Condition::InputDependent => {
            let entry = entry?;
            Some(input_dependent_conflict(entry, cell, txn, committed, relax))
        }
    }
}

/// The general input-dependent check. Semantically equivalent to
/// [`janus_detect::conflict_cell`], but fast-pathed through effect
/// summaries:
///
/// * `SAMEREAD` passes outright when a side has no exposed observation,
///   or when the other side provably restores the entry value;
/// * `COMMUTE` is decided by comparing the composed summaries' final
///   values.
///
/// Only when the summaries are inconclusive (opaque effects) does the
/// check fall back to precise replay — bounded by the same sequences the
/// online detector would replay, and rare in practice.
fn input_dependent_conflict(
    entry: &Value,
    cell: &CellKey,
    txn: &[&Op],
    committed: &[&Op],
    relax: Relaxation,
) -> bool {
    let st = summarize(cell, txn);
    let sc = summarize(cell, committed);

    if !relax.tolerate_raw {
        if !same_read_fast(entry, cell, &st, &sc, txn, committed) {
            return true;
        }
        if !same_read_fast(entry, cell, &sc, &st, committed, txn) {
            return true;
        }
    }

    if !relax.tolerate_waw {
        let ab = compose(&st, &sc).determined.final_value(entry, cell);
        let ba = compose(&sc, &st).determined.final_value(entry, cell);
        let commutes = match (ab, ba) {
            (Some(x), Some(y)) => x == y,
            // Opaque composition: precise replay decides.
            _ => commute(entry, cell, txn, committed),
        };
        if !commutes {
            return true;
        }
    }
    false
}

/// `SAMEREAD` of `reader` against `other`, decided from summaries when
/// possible.
fn same_read_fast(
    entry: &Value,
    cell: &CellKey,
    reader_summary: &Summary,
    other_summary: &Summary,
    reader: &[&Op],
    other: &[&Op],
) -> bool {
    // No exposed observation: every read is covered by the reader's own
    // writes, so the interleaving cannot change what it sees.
    if !reader_summary.exposed {
        return true;
    }
    // The other side provably restores the entry value: evaluating it
    // first leaves the reader's start state unchanged.
    if let Some(fv) = other_summary.determined.final_value(entry, cell) {
        if fv == cell_value(entry, cell) {
            return true;
        }
    }
    // Inconclusive: precise per-prefix replay (exactly Figure 8).
    read_prefixes(reader)
        .into_iter()
        .all(|prefix| same_read(entry, prefix, other))
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_detect::conflict_cell;
    use janus_log::{ClassId, LocId, OpKind, ScalarOp};
    use janus_relational::Scalar;

    fn mk_ops(kinds: Vec<OpKind>, start: &Value) -> Vec<Op> {
        let mut v = start.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(0), ClassId::new("t"), k, &mut v).0)
            .collect()
    }

    fn refs(ops: &[Op]) -> Vec<&Op> {
        ops.iter().collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn read() -> OpKind {
        OpKind::Scalar(ScalarOp::Read)
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    /// The input-dependent evaluation must agree exactly with the online
    /// detector on a broad family of scalar sequence pairs.
    #[test]
    fn agrees_with_online_detector() {
        let kinds: Vec<Vec<OpKind>> = vec![
            vec![add(2), add(-2)],
            vec![add(1)],
            vec![read()],
            vec![write(5)],
            vec![write(5), read()],
            vec![read(), write(5)],
            vec![add(3), read(), add(-3)],
            vec![write(0), add(2)],
            vec![add(1), add(-1), add(1), add(-1)],
            vec![],
        ];
        for entry_val in [0i64, 5] {
            let entry = Value::int(entry_val);
            for ka in &kinds {
                for kb in &kinds {
                    let a = mk_ops(ka.clone(), &entry);
                    let b = mk_ops(kb.clone(), &entry);
                    let (ra, rb) = (refs(&a), refs(&b));
                    let online =
                        conflict_cell(&entry, &CellKey::Whole, &ra, &rb, Relaxation::default());
                    let cached = evaluate_condition(
                        Condition::InputDependent,
                        Some(&entry),
                        &CellKey::Whole,
                        &ra,
                        &rb,
                        Relaxation::default(),
                    )
                    .expect("entry available");
                    assert_eq!(
                        cached, online,
                        "disagreement on {ka:?} vs {kb:?} at entry {entry_val}"
                    );
                }
            }
        }
    }

    #[test]
    fn commutes_always_ignores_entry() {
        assert_eq!(
            evaluate_condition(
                Condition::CommutesAlways,
                None,
                &CellKey::Whole,
                &[],
                &[],
                Relaxation::default()
            ),
            Some(false)
        );
    }

    #[test]
    fn input_dependent_needs_entry() {
        assert_eq!(
            evaluate_condition(
                Condition::InputDependent,
                None,
                &CellKey::Whole,
                &[],
                &[],
                Relaxation::default()
            ),
            None
        );
    }

    #[test]
    fn relaxation_skips_checks() {
        let entry = Value::int(0);
        let a = mk_ops(vec![read()], &entry);
        let b = mk_ops(vec![add(1)], &entry);
        let (ra, rb) = (refs(&a), refs(&b));
        // Strict: RAW conflict.
        assert_eq!(
            evaluate_condition(
                Condition::InputDependent,
                Some(&entry),
                &CellKey::Whole,
                &ra,
                &rb,
                Relaxation::default()
            ),
            Some(true)
        );
        // RAW tolerated: the read no longer matters; adds commute.
        assert_eq!(
            evaluate_condition(
                Condition::InputDependent,
                Some(&entry),
                &CellKey::Whole,
                &ra,
                &rb,
                Relaxation::raw()
            ),
            Some(false)
        );
    }

    #[test]
    fn equal_writes_pass_unequal_fail() {
        let entry = Value::int(0);
        let a = mk_ops(vec![write(7)], &entry);
        let b7 = mk_ops(vec![write(7)], &entry);
        let b8 = mk_ops(vec![write(8)], &entry);
        let eval = |x: &[Op], y: &[Op]| {
            evaluate_condition(
                Condition::InputDependent,
                Some(&entry),
                &CellKey::Whole,
                &refs(x),
                &refs(y),
                Relaxation::default(),
            )
            .expect("entry available")
        };
        assert!(!eval(&a, &b7), "equal writes commute");
        assert!(eval(&a, &b8), "unequal writes conflict");
    }
}
