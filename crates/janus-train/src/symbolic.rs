//! SAT-backed symbolic verification of relational commutativity (§6.2).
//!
//! Relation contents are described propositionally (Table 4, implemented
//! in [`janus_relational::content`]); equivalence between two symbolic
//! descriptions is decided by asking the SAT solver for a satisfying
//! assignment of `¬(f ↔ g)` — exactly the Sat4j pipeline of the paper,
//! with `janus-sat` substituted.
//!
//! The initial relation is the free variable [`Content::Base`], so a
//! successful proof holds for *every* entry state: training uses this to
//! certify that two mined relational transformer sequences commute
//! universally, and the test suite uses it as an oracle against concrete
//! evaluation.

use std::collections::BTreeMap;

use janus_relational::content::{boolean_totality_pairs, exclusivity_pairs, Content};
use janus_relational::{RelOp, Scalar, Schema};
use janus_sat::{is_equivalent, Lit, PropFormula, Var};

/// Numbering of content atoms as propositional variables: variable 0 is
/// `Base`, the rest are `(column, value)` atoms.
fn atom_vars(contents: &[&Content]) -> BTreeMap<(usize, Scalar), u32> {
    let mut atoms = std::collections::BTreeSet::new();
    for c in contents {
        atoms.extend(c.atoms());
    }
    atoms
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i as u32 + 1))
        .collect()
}

/// Translates a [`Content`] formula to a [`PropFormula`] under an atom
/// numbering.
fn to_prop(c: &Content, vars: &BTreeMap<(usize, Scalar), u32>) -> PropFormula {
    match c {
        Content::Base => PropFormula::var(0),
        Content::True => PropFormula::True,
        Content::False => PropFormula::False,
        Content::Atom(col, v) => {
            let id = vars[&(*col, v.clone())];
            PropFormula::var(id)
        }
        Content::Not(f) => to_prop(f, vars).not(),
        Content::And(f, g) => to_prop(f, vars).and(to_prop(g, vars)),
        Content::Or(f, g) => to_prop(f, vars).or(to_prop(g, vars)),
    }
}

/// The theory axioms making the propositional encoding faithful to the
/// equality semantics of atoms:
///
/// * two equalities over the same column with different values are
///   mutually exclusive (`¬a ∨ ¬b`);
/// * for a boolean column mentioned with both polarities, exactly one
///   holds (`a ∨ b`).
///
/// Pass `with_value_axioms = false` to *drop* them: the proof then also
/// covers every re-binding of the concrete values (distinct training
/// values may coincide in production), at the cost of completeness.
fn axioms(
    contents: &[&Content],
    vars: &BTreeMap<(usize, Scalar), u32>,
    with_value_axioms: bool,
) -> Vec<Vec<Lit>> {
    if !with_value_axioms {
        return Vec::new();
    }
    let mut atoms = std::collections::BTreeSet::new();
    for c in contents {
        atoms.extend(c.atoms());
    }
    let mut out = Vec::new();
    for (a, b) in exclusivity_pairs(&atoms) {
        out.push(vec![Var(vars[&a]).neg(), Var(vars[&b]).neg()]);
    }
    for (a, b) in boolean_totality_pairs(&atoms) {
        out.push(vec![Var(vars[&a]).pos(), Var(vars[&b]).pos()]);
    }
    out
}

/// Decides whether two content formulas are equivalent (describe the same
/// relation for every tuple and every entry state).
pub fn contents_equivalent(f: &Content, g: &Content, with_value_axioms: bool) -> bool {
    let contents = [f, g];
    let vars = atom_vars(&contents);
    let pf = to_prop(f, &vars);
    let pg = to_prop(g, &vars);
    let ax = axioms(&contents, &vars, with_value_axioms);
    is_equivalent(&pf, &pg, &ax)
}

/// Proves that two relational transformer sequences commute for every
/// entry state: the content of `a·b` applied to the symbolic base
/// relation equals the content of `b·a`.
///
/// A `true` answer is a universal commutativity certificate; `false`
/// means the proof failed (the sequences may still commute on specific
/// entry states, which the input-dependent condition checks at runtime).
pub fn prove_commutes_all_states(
    schema: &Schema,
    a: &[RelOp],
    b: &[RelOp],
    with_value_axioms: bool,
) -> bool {
    let ab = Content::Base.apply_all(a.iter().chain(b), schema);
    let ba = Content::Base.apply_all(b.iter().chain(a), schema);
    contents_equivalent(&ab, &ba, with_value_axioms)
}

/// Proves that every select in `a` observes the same content whether or
/// not `b` is evaluated first (the symbolic `SAMEREAD` direction), for
/// every entry state.
pub fn prove_same_reads_all_states(
    schema: &Schema,
    a: &[RelOp],
    b: &[RelOp],
    with_value_axioms: bool,
) -> bool {
    let b_content = Content::Base.apply_all(b.iter(), schema);
    let mut direct = Content::Base;
    let mut shifted = b_content;
    for op in a {
        if let RelOp::Select(_) = op {
            let d = direct.apply(op, schema);
            let s = shifted.apply(op, schema);
            if !contents_equivalent(&d, &s, with_value_axioms) {
                return false;
            }
        }
        if op.is_mutation() {
            direct = direct.apply(op, schema);
            shifted = shifted.apply(op, schema);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_relational::{tuple, Fd, Formula, Relation};
    use std::sync::Arc;

    fn map_schema() -> Arc<Schema> {
        Schema::with_fd(&["k", "v"], Fd::new(&[0], &[1]))
    }

    #[test]
    fn insert_remove_identity_commutes_universally() {
        let s = map_schema();
        let a = vec![RelOp::insert(tuple![1, 10]), RelOp::remove(tuple![1, 10])];
        let b = vec![RelOp::insert(tuple![1, 20]), RelOp::remove(tuple![1, 20])];
        assert!(prove_commutes_all_states(&s, &a, &b, true));
    }

    #[test]
    fn conflicting_inserts_fail_the_proof() {
        let s = map_schema();
        let a = vec![RelOp::insert(tuple![1, 10])];
        let b = vec![RelOp::insert(tuple![1, 20])];
        assert!(!prove_commutes_all_states(&s, &a, &b, true));
    }

    #[test]
    fn inserts_on_distinct_keys_commute() {
        let s = map_schema();
        let a = vec![RelOp::insert(tuple![1, 10])];
        let b = vec![RelOp::insert(tuple![2, 20])];
        assert!(prove_commutes_all_states(&s, &a, &b, true));
    }

    #[test]
    fn equal_inserts_commute() {
        let s = map_schema();
        let a = vec![RelOp::insert(tuple![1, 10])];
        assert!(prove_commutes_all_states(&s, &a, &a, true));
    }

    #[test]
    fn dropping_value_axioms_is_more_conservative() {
        let s = map_schema();
        // Without the exclusivity axioms, the displaced-tuple reasoning
        // for two inserts of the same tuple still goes through (pure
        // structural equality)...
        let a = vec![RelOp::insert(tuple![1, 10])];
        assert!(prove_commutes_all_states(&s, &a, &a, false));
        // ...but distinct-key commutativity, which relies on key
        // disjointness, may no longer be provable.
        let b = vec![RelOp::insert(tuple![2, 20])];
        assert!(!prove_commutes_all_states(&s, &a, &b, false));
    }

    #[test]
    fn remove_then_insert_vs_clear_semantics() {
        let s = map_schema();
        // remove(1,10) after insert(1,10) leaves key 1 empty; composing
        // with an unrelated insert on key 2 commutes.
        let a = vec![RelOp::insert(tuple![1, 10]), RelOp::remove(tuple![1, 10])];
        let b = vec![RelOp::insert(tuple![2, 5])];
        assert!(prove_commutes_all_states(&s, &a, &b, true));
    }

    #[test]
    fn same_reads_proof_detects_visible_insert() {
        let s = map_schema();
        let a = vec![RelOp::select(Formula::eq(0, 1i64))];
        let b = vec![RelOp::insert(tuple![1, 10])];
        assert!(!prove_same_reads_all_states(&s, &a, &b, true));
        // A select on a different key is unaffected.
        let a2 = vec![RelOp::select(Formula::eq(0, 2i64))];
        assert!(prove_same_reads_all_states(&s, &a2, &b, true));
    }

    #[test]
    fn covered_select_passes_same_reads() {
        let s = map_schema();
        // Insert then select of the same key: the select is covered.
        let a = vec![
            RelOp::insert(tuple![1, 10]),
            RelOp::select(Formula::eq(0, 1i64)),
        ];
        let b = vec![RelOp::insert(tuple![1, 20])];
        assert!(prove_same_reads_all_states(&s, &a, &b, true));
    }

    /// Symbolic equivalence must agree with concrete evaluation on probe
    /// tuples and entry states.
    #[test]
    fn symbolic_agrees_with_concrete_oracle() {
        let s = map_schema();
        let seq_pairs: Vec<(Vec<RelOp>, Vec<RelOp>)> = vec![
            (
                vec![RelOp::insert(tuple![1, 10]), RelOp::remove(tuple![1, 10])],
                vec![RelOp::insert(tuple![1, 20]), RelOp::remove(tuple![1, 20])],
            ),
            (
                vec![RelOp::insert(tuple![1, 10])],
                vec![RelOp::insert(tuple![1, 20])],
            ),
            (
                vec![RelOp::insert(tuple![1, 10])],
                vec![RelOp::RemoveKey(janus_relational::Key::scalar(2i64))],
            ),
            (vec![RelOp::Clear], vec![RelOp::Clear]),
            (vec![RelOp::Clear], vec![RelOp::insert(tuple![3, 30])]),
        ];
        let entries = [
            Relation::empty(Arc::clone(&s)),
            Relation::from_tuples(Arc::clone(&s), [tuple![1, 10]]),
            Relation::from_tuples(Arc::clone(&s), [tuple![1, 99], tuple![3, 30]]),
        ];
        for (a, b) in &seq_pairs {
            let proved = prove_commutes_all_states(&s, a, b, true);
            // Concrete check over all probe entries.
            let concrete_all = entries.iter().all(|entry| {
                let mut ab = entry.clone();
                for op in a.iter().chain(b) {
                    op.apply(&mut ab);
                }
                let mut ba = entry.clone();
                for op in b.iter().chain(a) {
                    op.apply(&mut ba);
                }
                ab == ba
            });
            if proved {
                assert!(
                    concrete_all,
                    "symbolic proof contradicted by {a:?} vs {b:?}"
                );
            } else {
                // The proof is complete for these finite cases: failure
                // should be witnessed by some probe entry.
                assert!(
                    !concrete_all,
                    "proof failed but no concrete counterexample for {a:?} vs {b:?}"
                );
            }
        }
    }
}
