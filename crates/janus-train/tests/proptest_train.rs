//! Property tests for the training machinery: effect summaries agree
//! with replay, the input-dependent condition is exactly the online
//! check, and Lemma 5.1's pumping is invisible to conflict detection.

use janus_detect::{conflict_cell, replay_cell, Relaxation};
use janus_log::{CellKey, ClassId, LocId, Op, OpKind, ScalarOp};
use janus_relational::{Scalar, Value};
use janus_train::{
    abstract_kind, abstract_sequence, evaluate_condition, matches_pattern, summarize, Condition,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
    }
}

fn k_strategy() -> impl Strategy<Value = K> {
    prop_oneof![
        Just(K::Read),
        (-3i64..4).prop_map(K::Add),
        (0i64..5).prop_map(K::Write),
    ]
}

fn mk_ops(ks: &[K], entry: i64) -> Vec<Op> {
    let mut v = Value::int(entry);
    ks.iter()
        .map(|&k| Op::execute(LocId(0), ClassId::new("x"), kind(k), &mut v).0)
        .collect()
}

proptest! {
    /// The effect summary's final value, when determinable, equals the
    /// replayed final value.
    #[test]
    fn summary_final_value_agrees_with_replay(
        ks in proptest::collection::vec(k_strategy(), 0..10),
        entry in -5i64..6,
    ) {
        let ops = mk_ops(&ks, entry);
        let refs: Vec<&Op> = ops.iter().collect();
        let entry_value = Value::int(entry);
        let summary = summarize(&CellKey::Whole, &refs);
        if let Some(fv) = summary.determined.final_value(&entry_value, &CellKey::Whole) {
            let replayed = replay_cell(&entry_value, &refs);
            prop_assert_eq!(
                fv,
                janus_detect::cell_value(&replayed, &CellKey::Whole)
            );
        }
    }

    /// The cached input-dependent condition is *exactly* the online
    /// Figure 8 check on scalar cells.
    #[test]
    fn input_dependent_condition_equals_online_check(
        ka in proptest::collection::vec(k_strategy(), 0..7),
        kb in proptest::collection::vec(k_strategy(), 0..7),
        entry in -3i64..4,
    ) {
        let a = mk_ops(&ka, entry);
        let b = mk_ops(&kb, entry);
        let (ra, rb): (Vec<&Op>, Vec<&Op>) = (a.iter().collect(), b.iter().collect());
        let entry_value = Value::int(entry);
        let online = conflict_cell(&entry_value, &CellKey::Whole, &ra, &rb, Relaxation::default());
        let cached = evaluate_condition(
            Condition::InputDependent,
            Some(&entry_value),
            &CellKey::Whole,
            &ra,
            &rb,
            Relaxation::default(),
        );
        prop_assert_eq!(cached, Some(online), "{:?} vs {:?} at {}", ka, kb, entry);
    }

    /// A sequence always matches its own abstraction, with or without
    /// Kleene-crossing.
    #[test]
    fn abstraction_matches_itself(
        ks in proptest::collection::vec(k_strategy(), 0..10),
    ) {
        let ops = mk_ops(&ks, 0);
        let refs: Vec<&Op> = ops.iter().collect();
        let string: Vec<_> = refs.iter().map(|op| abstract_kind(op)).collect();
        for use_abs in [true, false] {
            let p = abstract_sequence(&CellKey::Whole, &refs, use_abs);
            prop_assert!(
                matches_pattern(&p, &string),
                "pattern {} rejects its own source {:?}", p, ks
            );
        }
    }

    /// Lemma 5.1: pumping a balanced add/sub block is invisible to the
    /// conflict check — the base and pumped sequences get identical
    /// verdicts against any other sequence.
    #[test]
    fn pumping_is_invisible_to_conflict_detection(
        delta in 1i64..5,
        reps in 1usize..4,
        other in proptest::collection::vec(k_strategy(), 0..6),
        entry in -3i64..4,
    ) {
        let base_ks = vec![K::Add(delta), K::Add(-delta)];
        let mut pumped_ks = Vec::new();
        for _ in 0..reps {
            pumped_ks.extend_from_slice(&base_ks);
        }
        let entry_value = Value::int(entry);
        let base = mk_ops(&base_ks, entry);
        let pumped = mk_ops(&pumped_ks, entry);
        let other_ops = mk_ops(&other, entry);
        let rb: Vec<&Op> = base.iter().collect();
        let rp: Vec<&Op> = pumped.iter().collect();
        let ro: Vec<&Op> = other_ops.iter().collect();
        prop_assert_eq!(
            conflict_cell(&entry_value, &CellKey::Whole, &rb, &ro, Relaxation::default()),
            conflict_cell(&entry_value, &CellKey::Whole, &rp, &ro, Relaxation::default()),
            "CONFLICT distinguished a pumped idempotent block"
        );
        // And the abstraction of the base matches the pumped string.
        let p = abstract_sequence(&CellKey::Whole, &rb, true);
        let pumped_string: Vec<_> = rp.iter().map(|op| abstract_kind(op)).collect();
        prop_assert!(matches_pattern(&p, &pumped_string));
    }

    /// Summaries compose: summarize(a ++ b) == compose(summarize a, summarize b).
    #[test]
    fn summaries_compose(
        ka in proptest::collection::vec(k_strategy(), 0..6),
        kb in proptest::collection::vec(k_strategy(), 0..6),
    ) {
        let a = mk_ops(&ka, 0);
        // b continues from a's final state.
        let mut v = Value::int(0);
        for op in &a {
            op.kind.apply(&mut v);
        }
        let b = mk_ops(&kb, v.as_int().expect("int"));
        let ra: Vec<&Op> = a.iter().collect();
        let rb: Vec<&Op> = b.iter().collect();
        let all: Vec<&Op> = ra.iter().chain(rb.iter()).copied().collect();
        let composed = janus_train::compose(
            &summarize(&CellKey::Whole, &ra),
            &summarize(&CellKey::Whole, &rb),
        );
        prop_assert_eq!(composed, summarize(&CellKey::Whole, &all));
    }
}
