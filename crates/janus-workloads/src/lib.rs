//! Rust reimplementations of the five real-world benchmarks of the JANUS
//! evaluation (§7, Tables 5 & 6).
//!
//! Each workload reproduces, op-for-op, the shared-state access pattern
//! of the parallelized loop in the original Java application — the
//! property the evaluation actually depends on — while the pure local
//! computation is replaced by synthetic work of equivalent shape
//! ([`local_work`]). Inputs are generated per Table 6 from seeded RNGs.
//!
//! | Workload | Original | Prevalent patterns |
//! |---|---|---|
//! | [`JFileSync`] | JFileSync 2.2 directory comparison | identity, shared-as-local |
//! | [`JGraphTColor`] | JGraphT 0.8.1 greedy coloring | shared-as-local, spurious-reads |
//! | [`JGraphTOrder`] | JGraphT 0.8.1 saturation-degree ordering | shared-as-local, equal-writes |
//! | [`Pmd`] | PMD 4.2 source analyzer | shared-as-local, reduction |
//! | [`Weka`] | Weka 3.6.4 graph visualizer | equal-writes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod harness;
mod inputs;
mod jfilesync;
mod jgrapht_color;
mod jgrapht_order;
mod pmd;
mod util;
mod weka;

pub use catalog::{all_workloads, workload_by_name};
pub use harness::{run_workload, training_runs, DetectorKind, RunConfig, WorkloadMetrics};
pub use inputs::{DirTree, Graph, InputSpec, SourceFile};
pub use jfilesync::JFileSync;
pub use jgrapht_color::JGraphTColor;
pub use jgrapht_order::JGraphTOrder;
pub use pmd::Pmd;
pub use util::local_work;
pub use weka::Weka;

use janus_core::{Store, Task};
use janus_detect::RelaxationSpec;

/// A ready-to-run instance of a workload: the initial store, the tasks,
/// and a predicate validating the final state.
pub struct Scenario {
    /// The initial shared state.
    pub store: Store,
    /// One task per loop iteration of the original benchmark.
    pub tasks: Vec<Task>,
    /// Validates the final state (used by tests and the harness).
    pub check: Box<dyn Fn(&Store) -> bool + Send + Sync>,
    /// Per-task predicted footprints: the `LocId` keys (as raw `u64`s,
    /// the encoding `janus_sched`'s `FootprintPredictor` uses) each task
    /// is expected to touch. Declared by the workload from what it
    /// allocated — no sequential pre-run needed — so affinity scheduling
    /// can route from them directly (`--footprints shard`). An empty
    /// outer vector means "not declared"; an empty inner vector means
    /// "task touches nothing shared".
    pub footprints: Vec<Vec<u64>>,
}

/// One of the five evaluation benchmarks.
pub trait Workload: Send + Sync {
    /// Short identifier ("jfilesync", "jgrapht-1", ...).
    fn name(&self) -> &'static str;

    /// The original application and version (Table 5).
    fn source(&self) -> &'static str;

    /// One-line description (Table 5).
    fn description(&self) -> &'static str;

    /// The prevalent commutativity patterns (Table 5).
    fn patterns(&self) -> &'static [&'static str];

    /// Input characterization for Table 6: (input kind, training data,
    /// production data).
    fn input_description(&self) -> (&'static str, &'static str, &'static str);

    /// Whether the benchmark requires in-order commits (the greedy
    /// coloring's ordered traversal).
    fn ordered(&self) -> bool {
        false
    }

    /// The consistency-relaxation specification the benchmark's author
    /// provides (§5.3) — the analogue of the abstraction specifications
    /// written for the paper's experiments.
    fn relaxations(&self) -> RelaxationSpec;

    /// The training inputs (Table 6).
    fn training_inputs(&self) -> Vec<InputSpec>;

    /// The production inputs (Table 6).
    fn production_inputs(&self) -> Vec<InputSpec>;

    /// Materializes a scenario from an input specification.
    fn build(&self, input: &InputSpec) -> Scenario;
}
