//! Weka: rendering a Bayesian-network graph to a display device
//! (Figure 5 of the paper).
//!
//! `GraphVisualizer` iterates over the nodes of a graph, painting each
//! node's box, label and outgoing edges onto a shared `Graphics2D`
//! surface. Distinct iterations touching the same pixel do not conflict
//! when they set the graphics object to the same color — the
//! *equal-writes* pattern: edges between neighboring nodes overlap at
//! their endpoints but are all drawn in black.

use janus_adt::Canvas;
use janus_core::{Store, Task, TxView};
use janus_detect::RelaxationSpec;

use crate::inputs::{Graph, InputSpec};
use crate::util::local_work;
use crate::{Scenario, Workload};

/// Work units per node (label layout in the original).
const WORK_PER_NODE: u64 = 500_000;

/// Node box size in pixels.
const NODE_W: i64 = 3;
const NODE_H: i64 = 2;

/// Colors.
const BACKGROUND_DARK: i64 = 10;
const WHITE: i64 = 1;
const BLACK: i64 = 0;

/// The Weka graph-visualizer benchmark.
#[derive(Debug, Default)]
pub struct Weka;

impl Weka {
    /// The (deterministic) layout position of node `v`.
    fn position(v: usize, nodes: usize) -> (i64, i64) {
        let cols = (nodes as f64).sqrt().ceil() as i64;
        let v = v as i64;
        ((v % cols) * 8, (v / cols) * 8)
    }
}

impl Workload for Weka {
    fn name(&self) -> &'static str {
        "weka"
    }

    fn source(&self) -> &'static str {
        "Weka 3.6.4"
    }

    fn description(&self) -> &'static str {
        "Machine-learning library for data-mining tasks (graph visualizer)"
    }

    fn patterns(&self) -> &'static [&'static str] {
        &["equal-writes"]
    }

    fn input_description(&self) -> (&'static str, &'static str, &'static str) {
        (
            "Parameters for creation of random Bayesian network",
            "100 nodes; average degree of 5 / 10",
            "1000 nodes; average degree of 5 / 10",
        )
    }

    fn relaxations(&self) -> RelaxationSpec {
        // The brush cell is written before every draw (covered reads), so
        // out-of-order inference tolerates its WAW chains; pixel conflicts
        // are resolved by the equal-writes condition itself.
        RelaxationSpec::new().with_ooo_inference()
    }

    fn training_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(100, 5, 51), InputSpec::new(100, 10, 52)]
    }

    fn production_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(1000, 5, 53), InputSpec::new(1000, 10, 54)]
    }

    fn build(&self, input: &InputSpec) -> Scenario {
        let mut rng = input.rng();
        // A Bayesian network is a DAG; orient the random graph's edges
        // from lower to higher node id.
        let graph = Graph::generate(&mut rng, input.scale, input.degree);
        let nodes = graph.len();

        let mut store = Store::new();
        let canvas = Canvas::alloc(&mut store, "graphics");

        let graph = std::sync::Arc::new(graph);
        let tasks: Vec<Task> = (0..nodes)
            .map(|v| {
                let graph = std::sync::Arc::clone(&graph);
                let canvas = canvas.clone();
                Task::new(move |tx: &mut TxView| {
                    let (x, y) = Weka::position(v, graph.len());
                    // g.setColor(background.darker().darker());
                    // g.fillOval(...)
                    canvas.set_color(tx, BACKGROUND_DARK);
                    canvas.fill_rect(tx, x, y, NODE_W, NODE_H);
                    // g.setColor(Color.white); g.drawString(lbl, ...);
                    canvas.set_color(tx, WHITE);
                    canvas.plot(tx, x + 1, y + 1);
                    // Label layout: local work.
                    local_work(WORK_PER_NODE);
                    // g.setColor(Color.black); edges to successors.
                    canvas.set_color(tx, BLACK);
                    for &u in &graph.neighbors[v] {
                        if u > v {
                            let (x2, y2) = Weka::position(u, graph.len());
                            canvas.draw_line(tx, x + NODE_W, y + NODE_H, x2, y2);
                        }
                    }
                })
            })
            .collect();

        // Every iteration paints through the same brush and pixel
        // relation; the conflict structure below that granularity is the
        // detector's business, not the scheduler's.
        let footprint = vec![canvas.brush_loc().0, canvas.pixels_loc().0];
        let footprints = vec![footprint; nodes];

        let canvas_check = canvas.clone();
        Scenario {
            store,
            tasks,
            footprints,
            check: Box::new(move |store| {
                // Every node box was painted: at least nodes * box pixels
                // distinct pixels exist.
                canvas_check.painted(store) >= nodes * (NODE_W * NODE_H) as usize
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::SequenceDetector;
    use std::sync::Arc;

    #[test]
    fn sequential_render() {
        let w = Weka;
        let scenario = w.build(&InputSpec::new(30, 4, 1));
        let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
        assert!((scenario.check)(&final_store));
    }

    #[test]
    fn parallel_render_with_sequence_detection() {
        let w = Weka;
        let scenario = w.build(&InputSpec::new(30, 4, 2));
        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
    }

    #[test]
    fn parallel_render_matches_sequential_pixels() {
        let w = Weka;
        let seq = w.build(&InputSpec::new(25, 4, 3));
        let par = w.build(&InputSpec::new(25, 4, 3));
        let (seq_store, _) = Janus::run_sequential(seq.store, &seq.tasks);
        // Ordered commits make the final image deterministic even where
        // a black edge crosses another node's dark box (the rare
        // unequal-writes overlap the paper notes make the iterations
        // "not invariantly independent").
        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(3)
        .ordered(true);
        let outcome = janus.run(par.store, par.tasks);
        // Pixel relation is loc 0.
        let loc = janus_log::LocId(0);
        assert_eq!(seq_store.value(loc), outcome.store.value(loc));
    }
}
