//! JGraphT-1: greedy graph coloring (Figure 3 of the paper).
//!
//! The greedy algorithm visits nodes in a fixed order; for each node it
//! clears a shared scratch `usedColors` bit set, marks the colors of
//! already-colored neighbors, picks the smallest free color, writes it
//! into the shared `color` array, and bumps the shared `maxColor` if the
//! new color exceeds it. `usedColors` is *shared-as-local* (cleared
//! before use), and `maxColor` is a *spurious read* — two parallel
//! iterations conflict on it only if both write different values.
//!
//! The algorithm mandates ordered traversal, so the benchmark runs with
//! in-order commits.

use janus_adt::{BitSetAdt, Cell, MapAdt};
use janus_core::{Store, Task, TxView};
use janus_detect::{Relaxation, RelaxationSpec};
use janus_log::ClassId;
use janus_relational::Scalar;

use crate::inputs::{Graph, InputSpec};
use crate::util::local_work;
use crate::{Scenario, Workload};

/// Work units per node visit (layout bookkeeping etc. in the original).
const WORK_PER_NODE: u64 = 400_000;

/// The JGraphT greedy-coloring benchmark.
#[derive(Debug, Default)]
pub struct JGraphTColor;

impl Workload for JGraphTColor {
    fn name(&self) -> &'static str {
        "jgrapht-1"
    }

    fn source(&self) -> &'static str {
        "JGraphT 0.8.1"
    }

    fn description(&self) -> &'static str {
        "Greedy graph-coloring algorithm"
    }

    fn patterns(&self) -> &'static [&'static str] {
        &["shared-as-local", "spurious-reads"]
    }

    fn input_description(&self) -> (&'static str, &'static str, &'static str) {
        (
            "Parameters for creation of random simple graph",
            "100 nodes; average degree of 5 / 10",
            "1000 nodes; average degree of 5 / 10",
        )
    }

    fn ordered(&self) -> bool {
        true
    }

    fn relaxations(&self) -> RelaxationSpec {
        let mut spec = RelaxationSpec::new();
        // usedColors is a scratch pad: its final value is immaterial, so
        // WAW conflicts on it are declared tolerable (§5.3, the Figure 4
        // treatment). RAW tolerance is implied by the clear-first
        // discipline but declared for robustness.
        spec.relax(
            ClassId::new("usedColors"),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true,
            },
        );
        // maxColor reads are spurious (the early-release treatment of
        // Figure 3): suppress read/write conflicts, keep write/write.
        spec.relax(ClassId::new("maxColor"), Relaxation::raw());
        spec
    }

    fn training_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(100, 5, 21), InputSpec::new(100, 10, 22)]
    }

    fn production_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(1000, 5, 23), InputSpec::new(1000, 10, 24)]
    }

    fn build(&self, input: &InputSpec) -> Scenario {
        let mut rng = input.rng();
        let graph = Graph::generate(&mut rng, input.scale, input.degree);
        let nodes = graph.len();

        let mut store = Store::new();
        let color = MapAdt::alloc(&mut store, "color");
        let used = BitSetAdt::alloc(&mut store, "usedColors");
        let max_color = Cell::alloc(&mut store, "maxColor", 1i64);

        let graph = std::sync::Arc::new(graph);
        let tasks: Vec<Task> = (0..nodes)
            .map(|v| {
                let graph = std::sync::Arc::clone(&graph);
                let color = color.clone();
                let used = used.clone();
                Task::new(move |tx: &mut TxView| {
                    used.clear(tx);
                    for &nb in &graph.neighbors[v] {
                        if let Some(Scalar::Int(c)) = color.get(tx, nb as i64) {
                            if c > 0 {
                                used.set(tx, c, true);
                            }
                        }
                    }
                    let mut c = 1i64;
                    while used.get(tx, c) {
                        c += 1;
                    }
                    color.put(tx, v as i64, c);
                    // if (color[v] > maxColor) maxColor = color[v];
                    if max_color.get(tx).as_int().expect("maxColor is an integer") < c {
                        max_color.set(tx, c);
                    }
                    local_work(WORK_PER_NODE);
                })
            })
            .collect();

        // Every node's coloring step reads/writes the shared color map,
        // the scratch used-color set, and the running maximum.
        let footprint = vec![color.loc().0, used.loc().0, max_color.loc().0];
        let footprints = vec![footprint; nodes];

        let color_check = color.clone();
        let graph_check = graph;
        Scenario {
            store,
            tasks,
            footprints,
            check: Box::new(move |store| {
                // Proper coloring: no edge joins equal colors, everyone
                // colored.
                let entries = color_check.entries(store);
                if entries.len() != graph_check.len() {
                    return false;
                }
                let mut colors = vec![0i64; graph_check.len()];
                for (k, v) in entries {
                    let (Scalar::Int(k), Scalar::Int(c)) = (k, v) else {
                        return false;
                    };
                    colors[k as usize] = c;
                }
                colors.iter().all(|&c| c >= 1)
                    && graph_check
                        .neighbors
                        .iter()
                        .enumerate()
                        .all(|(v, ns)| ns.iter().all(|&u| colors[v] != colors[u]))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::SequenceDetector;
    use std::sync::Arc;

    #[test]
    fn sequential_coloring_is_proper() {
        let w = JGraphTColor;
        let scenario = w.build(&InputSpec::new(60, 5, 5));
        let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
        assert!((scenario.check)(&final_store));
    }

    #[test]
    fn ordered_parallel_coloring_matches_sequential() {
        let w = JGraphTColor;
        let scenario = w.build(&InputSpec::new(60, 5, 6));
        let seq = w.build(&InputSpec::new(60, 5, 6));
        let (seq_store, _) = Janus::run_sequential(seq.store, &seq.tasks);

        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4)
        .ordered(true);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
        // In-order commits reproduce the sequential greedy coloring
        // exactly (Theorem 4.1).
        for loc in 0..seq_store.len() as u64 {
            let l = janus_log::LocId(loc);
            assert_eq!(seq_store.value(l), outcome.store.value(l));
        }
    }
}
