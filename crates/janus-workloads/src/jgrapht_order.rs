//! JGraphT-2: saturation-degree node ordering for heuristic coloring.
//!
//! The ordering algorithm maintains several shared containers — degree
//! counters, saturation counters, per-node adjacent-color sets, bucket
//! lists and running statistics — and updates most of them on every
//! visit. Transactions therefore make *intensive* access to shared
//! memory across their whole execution; sequence-based detection removes
//! almost all false conflicts (§7.2 reports only 16% cache misses), but
//! the speedup stays negligible because privatization and replay costs
//! are not amortized by local work. We reproduce exactly that profile.

use janus_adt::{BitSetAdt, Counter, MapAdt};
use janus_core::{Store, Task, TxView};
use janus_detect::{Relaxation, RelaxationSpec};
use janus_log::ClassId;

use crate::inputs::{Graph, InputSpec};
use crate::util::local_work;
use crate::{Scenario, Workload};

/// Deliberately small: the benchmark is shared-access-bound.
const WORK_PER_NODE: u64 = 2_000;

/// The JGraphT saturation-degree ordering benchmark.
#[derive(Debug, Default)]
pub struct JGraphTOrder;

impl Workload for JGraphTOrder {
    fn name(&self) -> &'static str {
        "jgrapht-2"
    }

    fn source(&self) -> &'static str {
        "JGraphT 0.8.1"
    }

    fn description(&self) -> &'static str {
        "Saturation-degree node-ordering algorithm for heuristic graph coloring"
    }

    fn patterns(&self) -> &'static [&'static str] {
        &["shared-as-local", "equal-writes", "reduction"]
    }

    fn input_description(&self) -> (&'static str, &'static str, &'static str) {
        (
            "Parameters for creation of random simple graph",
            "100 nodes; average degree of 5 / 10",
            "1000 nodes; average degree of 5 / 10",
        )
    }

    fn relaxations(&self) -> RelaxationSpec {
        let mut spec = RelaxationSpec::new().with_ooo_inference();
        // The scratch marker set is cleared before use by every task.
        spec.relax(
            ClassId::new("marker"),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true,
            },
        );
        spec
    }

    fn training_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(100, 5, 31), InputSpec::new(100, 10, 32)]
    }

    fn production_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(1000, 5, 33), InputSpec::new(1000, 10, 34)]
    }

    fn build(&self, input: &InputSpec) -> Scenario {
        let mut rng = input.rng();
        let graph = Graph::generate(&mut rng, input.scale, input.degree);
        let nodes = graph.len();
        // A fixed precoloring drives the saturation computation (the
        // ordering pass runs over a partially colored graph).
        let precolor: Vec<i64> = (0..nodes).map(|v| (v % 4) as i64 + 1).collect();

        let mut store = Store::new();
        // Six shared containers, as in the original entry point.
        let saturation = MapAdt::alloc(&mut store, "saturation");
        let degree_sum = Counter::alloc(&mut store, "degreeSum", 0);
        let sat_sum = Counter::alloc(&mut store, "satSum", 0);
        let buckets = MapAdt::alloc(&mut store, "buckets");
        let marker = BitSetAdt::alloc(&mut store, "marker");
        let processed = Counter::alloc(&mut store, "processed", 0);

        let graph = std::sync::Arc::new(graph);
        let precolor = std::sync::Arc::new(precolor);
        let tasks: Vec<Task> = (0..nodes)
            .map(|v| {
                let graph = std::sync::Arc::clone(&graph);
                let precolor = std::sync::Arc::clone(&precolor);
                let saturation = saturation.clone();
                let buckets = buckets.clone();
                let marker = marker.clone();
                Task::new(move |tx: &mut TxView| {
                    // Distinct neighbor colors via the scratch marker set.
                    marker.clear(tx);
                    let mut sat = 0i64;
                    for &nb in &graph.neighbors[v] {
                        let c = precolor[nb];
                        if !marker.get(tx, c) {
                            marker.set(tx, c, true);
                            sat += 1;
                        }
                    }
                    // Per-node saturation record (disjoint keys).
                    saturation.put(tx, v as i64, sat);
                    // Bucket head for this saturation level: every task
                    // with the same saturation writes the same marker
                    // value (equal-writes).
                    buckets.put(tx, sat, 1i64);
                    // Reductions over shared counters.
                    degree_sum.add(tx, graph.neighbors[v].len() as i64);
                    sat_sum.add(tx, sat);
                    processed.add(tx, 1);
                    local_work(WORK_PER_NODE);
                })
            })
            .collect();

        // Each ordering step touches all six shared containers of the
        // original entry point.
        let footprint = vec![
            saturation.loc().0,
            degree_sum.loc().0,
            sat_sum.loc().0,
            buckets.loc().0,
            marker.loc().0,
            processed.loc().0,
        ];
        let footprints = vec![footprint; nodes];

        let saturation_check = saturation.clone();
        let expected_nodes = nodes;
        Scenario {
            store,
            tasks,
            footprints,
            check: Box::new(move |store| {
                saturation_check.entries(store).len() == expected_nodes
                    && processed.value(store) == expected_nodes as i64
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::SequenceDetector;
    use janus_relational::Scalar;
    use std::sync::Arc;

    #[test]
    fn sequential_run_counts_all_nodes() {
        let w = JGraphTOrder;
        let scenario = w.build(&InputSpec::new(40, 5, 7));
        let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
        assert!((scenario.check)(&final_store));
    }

    #[test]
    fn parallel_run_with_relaxed_sequence_detection() {
        let w = JGraphTOrder;
        let scenario = w.build(&InputSpec::new(40, 5, 8));
        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
    }

    #[test]
    fn saturation_values_are_degree_bounded() {
        let w = JGraphTOrder;
        let scenario = w.build(&InputSpec::new(30, 6, 9));
        let input = InputSpec::new(30, 6, 9);
        let graph = Graph::generate(&mut input.rng(), 30, 6);
        let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
        // Saturation of v is at most min(deg(v), 4 colors). The
        // saturation map is the workload's first allocation (counter 0),
        // so its id is exactly the class's shard hint.
        let sat_loc = janus_log::LocId(ClassId::new("saturation").shard_hint());
        let entries: Vec<(Scalar, Scalar)> = final_store
            .value(sat_loc)
            .and_then(janus_relational::Value::as_rel)
            .expect("saturation relation")
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).clone()))
            .collect();
        for (k, s) in entries {
            let (Scalar::Int(v), Scalar::Int(s)) = (k, s) else {
                panic!("integer entries")
            };
            let deg = graph.neighbors[v as usize].len() as i64;
            assert!(s <= deg.min(4) && s >= 0);
        }
    }
}
