//! Input generation (Table 6).
//!
//! Inputs for the training and production runs are synthesized from
//! seeded RNGs, at the scales the paper reports: random directory-pair
//! lists of length 5/10 (training) and 25/100 (production) for JFileSync;
//! random simple graphs with 100 nodes of average degree 5/10 (training)
//! and 1000 nodes of degree 5/10 (production) for the JGraphT
//! algorithms; and analogous scales for PMD's source-file lists and
//! Weka's random Bayesian networks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sized, seeded input specification; each workload interprets `scale`
/// and `degree` per its Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// The primary size knob: list length for JFileSync/PMD, node count
    /// for the graph workloads.
    pub scale: usize,
    /// The secondary knob: average degree for graphs, subtree size for
    /// directory trees, file size for PMD.
    pub degree: usize,
    /// RNG seed (all generation is deterministic given the spec).
    pub seed: u64,
}

impl InputSpec {
    /// Creates a specification.
    pub fn new(scale: usize, degree: usize, seed: u64) -> Self {
        InputSpec {
            scale,
            degree,
            seed,
        }
    }

    /// The seeded RNG for this input.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ (self.scale as u64) << 32 ^ self.degree as u64)
    }
}

/// A synthetic directory tree (a JFileSync directory-pair side).
#[derive(Debug, Clone)]
pub struct DirTree {
    /// Number of files directly in this directory.
    pub files: usize,
    /// Total comparison weight of the subtree.
    pub weight: u64,
    /// Subdirectories.
    pub children: Vec<DirTree>,
}

impl DirTree {
    /// Generates a random tree with roughly `degree` entries per level
    /// and bounded depth.
    pub fn generate(rng: &mut SmallRng, degree: usize, depth: usize) -> DirTree {
        let files = rng.gen_range(1..=degree.max(1));
        let children = if depth == 0 {
            Vec::new()
        } else {
            (0..rng.gen_range(0..=degree.min(3)))
                .map(|_| DirTree::generate(rng, degree, depth - 1))
                .collect()
        };
        let weight = files as u64 + children.iter().map(|c| c.weight).sum::<u64>();
        DirTree {
            files,
            weight,
            children,
        }
    }

    /// Total number of directories in the subtree (including this one).
    pub fn dir_count(&self) -> usize {
        1 + self.children.iter().map(DirTree::dir_count).sum::<usize>()
    }
}

/// A random simple undirected graph in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `neighbors[v]` = the adjacency list of node `v`.
    pub neighbors: Vec<Vec<usize>>,
}

impl Graph {
    /// Generates a random simple graph with `nodes` nodes and expected
    /// average degree `degree`.
    pub fn generate(rng: &mut SmallRng, nodes: usize, degree: usize) -> Graph {
        let mut neighbors = vec![Vec::new(); nodes];
        if nodes < 2 {
            return Graph { neighbors };
        }
        let edges = nodes * degree / 2;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..edges {
            let a = rng.gen_range(0..nodes);
            let b = rng.gen_range(0..nodes);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                neighbors[a].push(b);
                neighbors[b].push(a);
            }
        }
        Graph { neighbors }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The maximum degree.
    pub fn max_degree(&self) -> usize {
        self.neighbors.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// A synthetic Java source file for PMD: a stream of token codes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// A display name.
    pub name: String,
    /// Token codes (0..64); rule analysis scans these.
    pub tokens: Vec<u8>,
}

impl SourceFile {
    /// Generates a file of roughly `size` tokens.
    pub fn generate(rng: &mut SmallRng, index: usize, size: usize) -> SourceFile {
        let len = rng.gen_range(size / 2..=size.max(2));
        SourceFile {
            name: format!("src/File{index}.java"),
            tokens: (0..len).map(|_| rng.gen_range(0..64u8)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = InputSpec::new(10, 5, 42);
        let g1 = Graph::generate(&mut spec.rng(), 50, 4);
        let g2 = Graph::generate(&mut spec.rng(), 50, 4);
        assert_eq!(g1.neighbors, g2.neighbors);
        let t1 = DirTree::generate(&mut spec.rng(), 3, 2);
        let t2 = DirTree::generate(&mut spec.rng(), 3, 2);
        assert_eq!(t1.weight, t2.weight);
    }

    #[test]
    fn graph_is_simple_and_undirected() {
        let spec = InputSpec::new(100, 6, 7);
        let g = Graph::generate(&mut spec.rng(), 100, 6);
        assert_eq!(g.len(), 100);
        for (v, ns) in g.neighbors.iter().enumerate() {
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ns.len(), "no multi-edges at {v}");
            assert!(!ns.contains(&v), "no self loops at {v}");
            for &u in ns {
                assert!(g.neighbors[u].contains(&v), "undirected edge {v}-{u}");
            }
        }
        // Average degree in the right ballpark.
        assert!(g.edge_count() > 100);
    }

    #[test]
    fn dir_tree_weight_is_consistent() {
        let spec = InputSpec::new(5, 4, 1);
        let t = DirTree::generate(&mut spec.rng(), 4, 3);
        fn total(t: &DirTree) -> u64 {
            t.files as u64 + t.children.iter().map(total).sum::<u64>()
        }
        assert_eq!(t.weight, total(&t));
        assert!(t.dir_count() >= 1);
    }

    #[test]
    fn source_files_have_tokens() {
        let spec = InputSpec::new(5, 100, 3);
        let f = SourceFile::generate(&mut spec.rng(), 2, 100);
        assert!(f.tokens.len() >= 50);
        assert!(f.name.contains("File2"));
        assert!(f.tokens.iter().all(|&t| t < 64));
    }
}
