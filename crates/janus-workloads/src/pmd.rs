//! PMD: per-file rule analysis (Figure 4 of the paper).
//!
//! PMD's main loop iterates over Java source files; each iteration
//! writes the file's name and handle into the shared `RuleContext`
//! before reading them back deep inside the rule implementations
//! (*shared-as-local*), and rules stash per-run attributes in the
//! context (`setAttribute(COUNTER_LABEL, new AtomicLong())` — a WAW
//! chain on a fixed key), plus a shared violation counter (*reduction*).

use janus_adt::{Cell, Counter, MapAdt};
use janus_core::{Store, Task, TxView};
use janus_detect::RelaxationSpec;

use crate::inputs::{InputSpec, SourceFile};
use crate::util::local_work;
use crate::{Scenario, Workload};

/// Work units per token analyzed.
const WORK_PER_TOKEN: u64 = 4_000;

/// The attribute key the counter rule uses (`COUNTER_LABEL`).
const COUNTER_LABEL: i64 = 1;

/// The PMD benchmark.
#[derive(Debug, Default)]
pub struct Pmd;

impl Workload for Pmd {
    fn name(&self) -> &'static str {
        "pmd"
    }

    fn source(&self) -> &'static str {
        "PMD 4.2"
    }

    fn description(&self) -> &'static str {
        "Java source code analyzer"
    }

    fn patterns(&self) -> &'static [&'static str] {
        &["shared-as-local", "reduction"]
    }

    fn input_description(&self) -> (&'static str, &'static str, &'static str) {
        (
            "List of Java source files",
            "random lists of length 5 / 10",
            "random lists of length 25 / 100",
        )
    }

    fn relaxations(&self) -> RelaxationSpec {
        // Out-of-order run: the automatic inference tolerates the WAW
        // chains on ctx.sourceCodeFilename / ctx.sourceCodeFile and the
        // per-key attribute writes, because every read is preceded by the
        // task's own write (Figure 4's discussion).
        RelaxationSpec::new().with_ooo_inference()
    }

    fn training_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(5, 120, 41), InputSpec::new(10, 120, 42)]
    }

    fn production_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(25, 120, 43), InputSpec::new(100, 120, 44)]
    }

    fn build(&self, input: &InputSpec) -> Scenario {
        let mut rng = input.rng();
        let files: Vec<SourceFile> = (0..input.scale)
            .map(|i| SourceFile::generate(&mut rng, i, input.degree))
            .collect();

        let mut store = Store::new();
        let ctx_filename = Cell::alloc(&mut store, "ctx.sourceCodeFilename", "");
        let ctx_file = Cell::alloc(&mut store, "ctx.sourceCodeFile", 0i64);
        let ctx_attrs = MapAdt::alloc(&mut store, "ctx.attributes");
        let violations = Counter::alloc(&mut store, "report.violations", 0);

        let tasks: Vec<Task> = files
            .iter()
            .enumerate()
            .map(|(i, file)| {
                let file = file.clone();
                let ctx_attrs = ctx_attrs.clone();
                Task::new(move |tx: &mut TxView| {
                    // ctx.sourceCodeFilename = niceFileName;
                    // ctx.sourceCodeFile = new File(niceFileName);
                    ctx_filename.set(tx, file.name.as_str());
                    ctx_file.set(tx, i as i64);

                    // rs.start(ctx): the counter rule stores a fresh
                    // accumulator under COUNTER_LABEL.
                    ctx_attrs.put(tx, COUNTER_LABEL, 0i64);

                    // Rule analysis: scan the token stream (local work),
                    // reading the ctx fields the loop wrote
                    // (shared-as-local) and bumping the stored attribute.
                    let _name = ctx_filename.get(tx);
                    let mut hits = 0i64;
                    for &t in &file.tokens {
                        if t % 16 == 0 {
                            hits += 1;
                        }
                    }
                    local_work(file.tokens.len() as u64 * WORK_PER_TOKEN);
                    let acc = ctx_attrs
                        .get(tx, COUNTER_LABEL)
                        .and_then(|s| s.as_int())
                        .unwrap_or(0);
                    ctx_attrs.put(tx, COUNTER_LABEL, acc + hits);

                    // rs.end(ctx): fold the attribute into the shared
                    // report (reduction) and drop it.
                    let total = ctx_attrs
                        .get(tx, COUNTER_LABEL)
                        .and_then(|s| s.as_int())
                        .unwrap_or(0);
                    violations.add(tx, total);
                    ctx_attrs.remove(tx, COUNTER_LABEL);
                })
            })
            .collect();

        // Expected violations, computed directly from the inputs.
        let expected: i64 = files
            .iter()
            .map(|f| f.tokens.iter().filter(|&&t| t % 16 == 0).count() as i64)
            .sum();
        // Every file's rule pass funnels through the same shared context
        // cells, attribute map, and report counter.
        let footprint = vec![
            ctx_filename.loc().0,
            ctx_file.loc().0,
            ctx_attrs.loc().0,
            violations.loc().0,
        ];
        let footprints = vec![footprint; files.len()];
        Scenario {
            store,
            tasks,
            footprints,
            check: Box::new(move |store| violations.value(store) == expected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::{SequenceDetector, WriteSetDetector};
    use std::sync::Arc;

    #[test]
    fn sequential_run_counts_violations() {
        let w = Pmd;
        let scenario = w.build(&InputSpec::new(6, 80, 1));
        let (final_store, _) = Janus::run_sequential(scenario.store, &scenario.tasks);
        assert!((scenario.check)(&final_store));
    }

    #[test]
    fn parallel_run_with_inference_is_correct() {
        let w = Pmd;
        let scenario = w.build(&InputSpec::new(12, 80, 2));
        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
    }

    #[test]
    fn write_set_is_correct_but_serialized() {
        let w = Pmd;
        let scenario = w.build(&InputSpec::new(10, 80, 3));
        let janus = Janus::new(Arc::new(WriteSetDetector::new())).threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
    }

    #[test]
    fn ctx_fields_use_shared_as_local_discipline() {
        let w = Pmd;
        let scenario = w.build(&InputSpec::new(3, 60, 4));
        let (_, run) = Janus::run_sequential(scenario.store, &scenario.tasks);
        // In every task log, the first op on ctx.sourceCodeFilename is a
        // write.
        for log in &run.task_logs {
            let first = log
                .iter()
                .find(|op| op.class.label() == "ctx.sourceCodeFilename")
                .expect("ctx accessed");
            assert!(first.is_write());
        }
    }
}
