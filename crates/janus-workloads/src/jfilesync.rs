//! JFileSync: directory-pair comparison (Figure 2 of the paper).
//!
//! The main loop of `JFSComparison` iterates over directory pairs,
//! pushing the number of items started and the pending weight onto the
//! shared progress monitor's lists, writing the pair's root URIs into
//! shared fields, polling the progress object for cancellation, and
//! popping the monitor entries once the (recursive) comparison finishes.
//! Every iteration leaves the monitor exactly as it found it — the
//! *identity* pattern — while the root-URI fields are *shared-as-local*.

use janus_adt::{Cell, StackList};
use janus_core::{Store, Task, TxView};
use janus_detect::RelaxationSpec;
use janus_relational::Scalar;

use crate::inputs::{DirTree, InputSpec};
use crate::util::local_work;
use crate::{Scenario, Workload};

/// Work units per file compared (tunes the local-compute share).
const WORK_PER_FILE: u64 = 150_000;

/// The JFileSync benchmark.
#[derive(Debug, Default)]
pub struct JFileSync;

impl JFileSync {
    /// Compares one directory pair recursively, mirroring the push/pop
    /// discipline of `compareFiles`.
    fn compare(
        tx: &mut TxView,
        tree: &DirTree,
        started: &StackList,
        weight: &StackList,
        canceled: &Cell,
    ) {
        if canceled.get(tx) == Scalar::Bool(true) {
            return;
        }
        started.push(tx, tree.files as i64);
        weight.push(tx, tree.weight as i64);
        // The actual file comparison: pure local work.
        local_work(tree.files as u64 * WORK_PER_FILE);
        for child in &tree.children {
            Self::compare(tx, child, started, weight, canceled);
        }
        started.pop(tx);
        weight.pop(tx);
    }
}

impl Workload for JFileSync {
    fn name(&self) -> &'static str {
        "jfilesync"
    }

    fn source(&self) -> &'static str {
        "JFileSync 2.2"
    }

    fn description(&self) -> &'static str {
        "Utility for synchronizing pairs of directories"
    }

    fn patterns(&self) -> &'static [&'static str] {
        &["identity", "shared-as-local"]
    }

    fn input_description(&self) -> (&'static str, &'static str, &'static str) {
        (
            "List of directory pairs",
            "random lists of length 5 / 10",
            "random lists of length 25 / 100",
        )
    }

    fn relaxations(&self) -> RelaxationSpec {
        // Unordered run: the automatic WAW inference admits the
        // shared-as-local root-URI fields (write before read).
        RelaxationSpec::new().with_ooo_inference()
    }

    fn training_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(5, 3, 11), InputSpec::new(10, 3, 12)]
    }

    fn production_inputs(&self) -> Vec<InputSpec> {
        vec![InputSpec::new(25, 3, 13), InputSpec::new(100, 3, 14)]
    }

    fn build(&self, input: &InputSpec) -> Scenario {
        let mut rng = input.rng();
        let pairs: Vec<DirTree> = (0..input.scale)
            .map(|_| DirTree::generate(&mut rng, input.degree, 2))
            .collect();

        let mut store = Store::new();
        let started = StackList::alloc(&mut store, "monitor.itemsStarted");
        let weight = StackList::alloc(&mut store, "monitor.itemsWeight");
        let root_src = Cell::alloc(&mut store, "monitor.rootUriSrc", "");
        let root_tgt = Cell::alloc(&mut store, "monitor.rootUriTgt", "");
        let canceled = Cell::alloc(&mut store, "progress.canceled", false);

        let tasks: Vec<Task> = pairs
            .iter()
            .enumerate()
            .map(|(i, tree)| {
                let tree = tree.clone();
                let started = started.clone();
                let weight = weight.clone();
                Task::new(move |tx: &mut TxView| {
                    // monitor.itemsStarted.add(2); monitor.itemsWeight.add(1);
                    started.push(tx, 2);
                    weight.push(tx, 1);
                    // Shared-as-local root URI fields.
                    root_src.set(tx, format!("src/pair{i}").as_str());
                    root_tgt.set(tx, format!("tgt/pair{i}").as_str());
                    if canceled.get(tx) != Scalar::Bool(true) {
                        Self::compare(tx, &tree, &started, &weight, &canceled);
                    }
                    started.pop(tx);
                    weight.pop(tx);
                })
            })
            .collect();

        // Each pair's sync walks the shared progress monitor (both stack
        // lists), the root-URI cells, and the cancellation flag.
        let footprint = vec![
            started.items_loc().0,
            started.size_loc().0,
            weight.items_loc().0,
            weight.size_loc().0,
            root_src.loc().0,
            root_tgt.loc().0,
            canceled.loc().0,
        ];
        let footprints = vec![footprint; pairs.len()];

        let started_check = started.clone();
        let weight_check = weight.clone();
        Scenario {
            store,
            tasks,
            footprints,
            check: Box::new(move |store| {
                started_check.depth(store) == 0 && weight_check.depth(store) == 0
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::{CachedSequenceDetector, SequenceDetector, WriteSetDetector};
    use janus_train::TrainConfig;
    use std::sync::Arc;

    #[test]
    fn sequential_run_is_identity_on_monitor() {
        let w = JFileSync;
        let scenario = w.build(&InputSpec::new(4, 3, 1));
        let (final_store, run) = Janus::run_sequential(scenario.store, &scenario.tasks);
        assert!((scenario.check)(&final_store));
        assert_eq!(run.task_logs.len(), 4);
    }

    #[test]
    fn parallel_sequence_detection_preserves_state() {
        let w = JFileSync;
        let scenario = w.build(&InputSpec::new(8, 3, 2));
        let janus = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));
    }

    #[test]
    fn write_set_detection_also_correct_but_conflicted() {
        let w = JFileSync;
        let scenario = w.build(&InputSpec::new(6, 3, 3));
        let janus = Janus::new(Arc::new(WriteSetDetector::new())).threads(4);
        let outcome = janus.run(scenario.store, scenario.tasks);
        assert!((scenario.check)(&outcome.store));

        // Retry comparison: the sequence detector never aborts more than
        // the write-set baseline on the same input. (A strict `> 0` on
        // the baseline would be timing-dependent: with fast tasks the
        // transactions may simply never overlap.)
        let scenario_seq = w.build(&InputSpec::new(6, 3, 3));
        let seq = Janus::new(Arc::new(SequenceDetector::with_relaxations(
            w.relaxations(),
        )))
        .threads(4);
        let seq_outcome = seq.run(scenario_seq.store, scenario_seq.tasks);
        assert!(seq_outcome.stats.retries <= outcome.stats.retries);
    }

    #[test]
    fn trained_cache_covers_production() {
        let w = JFileSync;
        let train_scenario = w.build(&w.training_inputs()[0]);
        let (_, cache, report) = Janus::train_sequential(
            train_scenario.store,
            &train_scenario.tasks,
            TrainConfig::default(),
        );
        assert!(report.entries_added > 0);

        let prod = w.build(&InputSpec::new(12, 3, 99));
        let detector = Arc::new(CachedSequenceDetector::with_relaxations(
            cache,
            w.relaxations(),
        ));
        let janus = Janus::new(detector.clone()).threads(4);
        let outcome = janus.run(prod.store, prod.tasks);
        assert!((prod.check)(&outcome.store));
    }
}
