//! The benchmark catalog (Table 5).

use crate::{JFileSync, JGraphTColor, JGraphTOrder, Pmd, Weka, Workload};

/// All five evaluation benchmarks, in the paper's order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(JFileSync),
        Box::new(JGraphTColor),
        Box::new(JGraphTOrder),
        Box::new(Pmd),
        Box::new(Weka),
    ]
}

/// Looks a workload up by its short name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 5);
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["jfilesync", "jgrapht-1", "jgrapht-2", "pmd", "weka"]
        );
        for w in &ws {
            assert!(!w.description().is_empty());
            assert!(!w.patterns().is_empty());
            assert!(!w.training_inputs().is_empty());
            assert!(!w.production_inputs().is_empty());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("pmd").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn only_greedy_coloring_is_ordered() {
        for w in all_workloads() {
            assert_eq!(w.ordered(), w.name() == "jgrapht-1", "{}", w.name());
        }
    }
}
