//! The experiment harness: trains, runs and measures a workload under a
//! chosen detector configuration (the machinery behind Figures 9–11).

use std::sync::Arc;
use std::time::{Duration, Instant};

use janus_core::{Janus, Outcome};
use janus_detect::{CachedSequenceDetector, ConflictDetector, SequenceDetector, WriteSetDetector};
use janus_train::{train, TrainConfig, TrainingRun};

use crate::{InputSpec, Workload};

/// Which conflict detector to run a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The standard write-set baseline.
    WriteSet,
    /// Online sequence-based detection (no cache; ablation D3).
    SequenceOnline,
    /// Cached sequence-based detection with offline training; the flag
    /// controls the §5.2 sequence abstraction (Figure 11's two bars).
    SequenceCached {
        /// Apply Kleene-cross abstraction during training and matching.
        use_abstraction: bool,
    },
}

impl DetectorKind {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::WriteSet => "write-set",
            DetectorKind::SequenceOnline => "sequence-online",
            DetectorKind::SequenceCached {
                use_abstraction: true,
            } => "sequence-cached",
            DetectorKind::SequenceCached {
                use_abstraction: false,
            } => "sequence-cached-noabs",
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The detector.
    pub detector: DetectorKind,
    /// Worker threads.
    pub threads: usize,
    /// The production input to run.
    pub input: InputSpec,
}

/// Measurements from one experiment run.
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    /// Workload name.
    pub workload: &'static str,
    /// Detector label.
    pub detector: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Wall time of the parallel region.
    pub wall: Duration,
    /// Wall time of the plain sequential execution of the same input
    /// (the speedup baseline, as in Figure 9).
    pub sequential_wall: Duration,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub retries: u64,
    /// Unique conflict queries answered from the cache (cached modes).
    pub unique_hits: u64,
    /// Unique conflict queries that missed the cache (cached modes).
    pub unique_misses: u64,
    /// Whether the final state passed the workload's check.
    pub check_ok: bool,
}

impl WorkloadMetrics {
    /// Speedup over the sequential execution (>1 is faster than the
    /// original loop).
    pub fn speedup(&self) -> f64 {
        self.sequential_wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Retries per committed transaction (Figure 10's metric).
    pub fn retry_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.retries as f64 / self.commits as f64
        }
    }

    /// Unique-query miss rate in percent (Figure 11's metric).
    pub fn miss_rate(&self) -> Option<f64> {
        let total = self.unique_hits + self.unique_misses;
        (total > 0).then(|| 100.0 * self.unique_misses as f64 / total as f64)
    }
}

/// Runs the workload's training inputs sequentially and collects the
/// traces (Figure 6's offline path).
pub fn training_runs(workload: &dyn Workload) -> Vec<TrainingRun> {
    workload
        .training_inputs()
        .iter()
        .map(|input| {
            let scenario = workload.build(input);
            let (_, run) = Janus::run_sequential(scenario.store, &scenario.tasks);
            run
        })
        .collect()
}

/// Runs one experiment: trains if needed, executes the production input
/// under the configured detector, and reports all the metrics the
/// paper's figures use.
pub fn run_workload(workload: &dyn Workload, config: &RunConfig) -> WorkloadMetrics {
    // Sequential baseline on the same input.
    let seq_scenario = workload.build(&config.input);
    let seq_start = Instant::now();
    let (seq_store, _) = Janus::run_sequential(seq_scenario.store, &seq_scenario.tasks);
    let sequential_wall = seq_start.elapsed();
    debug_assert!((seq_scenario.check)(&seq_store));

    let scenario = workload.build(&config.input);
    let relax = workload.relaxations();

    let (outcome, unique, detector_label): (Outcome, (u64, u64), &'static str) =
        match config.detector {
            DetectorKind::WriteSet => {
                let detector: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
                let janus = Janus::new(detector)
                    .threads(config.threads)
                    .ordered(workload.ordered());
                (
                    janus.run(scenario.store, scenario.tasks),
                    (0, 0),
                    config.detector.label(),
                )
            }
            DetectorKind::SequenceOnline => {
                let detector: Arc<dyn ConflictDetector> =
                    Arc::new(SequenceDetector::with_relaxations(relax));
                let janus = Janus::new(detector)
                    .threads(config.threads)
                    .ordered(workload.ordered());
                (
                    janus.run(scenario.store, scenario.tasks),
                    (0, 0),
                    config.detector.label(),
                )
            }
            DetectorKind::SequenceCached { use_abstraction } => {
                let runs = training_runs(workload);
                let (cache, _report) = train(
                    &runs,
                    TrainConfig {
                        use_abstraction,
                        verify_symbolic: false,
                    },
                );
                let detector = Arc::new(CachedSequenceDetector::with_relaxations(cache, relax));
                let janus = Janus::new(detector.clone())
                    .threads(config.threads)
                    .ordered(workload.ordered());
                let outcome = janus.run(scenario.store, scenario.tasks);
                let unique = detector.oracle().stats().unique_counts();
                (outcome, unique, config.detector.label())
            }
        };

    WorkloadMetrics {
        workload: workload.name(),
        detector: detector_label,
        threads: config.threads,
        wall: outcome.stats.wall,
        sequential_wall,
        commits: outcome.stats.commits,
        retries: outcome.stats.retries,
        unique_hits: unique.0,
        unique_misses: unique.1,
        check_ok: (scenario.check)(&outcome.store),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_workloads;

    #[test]
    fn every_workload_runs_under_every_detector() {
        for workload in all_workloads() {
            // Small instance for test speed.
            let input = InputSpec::new(10, 4, 77);
            for detector in [
                DetectorKind::WriteSet,
                DetectorKind::SequenceOnline,
                DetectorKind::SequenceCached {
                    use_abstraction: true,
                },
            ] {
                let metrics = run_workload(
                    workload.as_ref(),
                    &RunConfig {
                        detector,
                        threads: 2,
                        input,
                    },
                );
                assert!(
                    metrics.check_ok,
                    "{} under {} produced a wrong final state",
                    workload.name(),
                    detector.label()
                );
                assert_eq!(metrics.commits, 10, "{}", workload.name());
            }
        }
    }

    #[test]
    fn sequence_detection_reduces_retries() {
        // Aggregate across workloads: sequence-based detection must abort
        // far less than write-set detection (the 22x headline, in shape).
        let mut ws_retries = 0u64;
        let mut seq_retries = 0u64;
        for workload in all_workloads() {
            let input = InputSpec::new(16, 4, 88);
            let ws = run_workload(
                workload.as_ref(),
                &RunConfig {
                    detector: DetectorKind::WriteSet,
                    threads: 4,
                    input,
                },
            );
            let seq = run_workload(
                workload.as_ref(),
                &RunConfig {
                    detector: DetectorKind::SequenceOnline,
                    threads: 4,
                    input,
                },
            );
            ws_retries += ws.retries;
            seq_retries += seq.retries;
        }
        // Timing-robust form of the 22x headline: the sequence detector
        // never aborts more than the baseline. (The quantitative gap is
        // measured by the figures harness, not asserted here, because on
        // a loaded machine the scheduler may serialize the short test
        // tasks and produce zero aborts for both detectors.)
        assert!(
            seq_retries <= ws_retries,
            "sequence retries ({seq_retries}) must undercut write-set ({ws_retries})"
        );
    }
}
