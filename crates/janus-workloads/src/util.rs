//! Synthetic local computation.

use std::hint::black_box;

/// Performs `units` rounds of FNV-1a hashing — the stand-in for the
/// benchmarks' pure local computation (file comparison, rule analysis,
/// label layout). One unit is on the order of a few nanoseconds; the
/// result is returned (and fed through [`black_box`]) so the optimizer
/// cannot elide the loop.
pub fn local_work(units: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for i in 0..units {
        h ^= black_box(i);
        h = h.wrapping_mul(0x100000001b3);
    }
    black_box(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_deterministic() {
        assert_eq!(local_work(100), local_work(100));
        assert_ne!(local_work(100), local_work(101));
        assert_eq!(local_work(0), 0xcbf29ce484222325);
    }
}
