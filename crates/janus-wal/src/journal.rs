//! The journal writer: segmented appends, group-commit fsync, store
//! snapshots with segment truncation, and deterministic crash points.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use janus_core::{CommitSink, Store};
use janus_fault::{CrashSite, FaultKind, FaultPlan};
use janus_log::{wire, Op};

use crate::stats::WalStats;

/// Segment-file magic, followed by the segment's first commit ticket.
pub const SEGMENT_MAGIC: [u8; 8] = *b"JWALSEG1";
/// Snapshot-file magic, followed by the checksummed snapshot body.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"JWALSNP1";
/// Clean-shutdown-marker magic, followed by the final synced ticket.
pub const CLEAN_MAGIC: [u8; 8] = *b"JWALCLN1";
/// The clean-shutdown marker's file name inside the journal directory.
pub const CLEAN_MARKER: &str = "CLEAN";

/// Record type: a committed transaction's effects.
pub(crate) const REC_COMMIT: u8 = 1;
/// Record type: a consumed-but-unpublished ticket (ordered tombstone).
pub(crate) const REC_SKIP: u8 = 2;

/// The segment file name for a first ticket (`seg-<16hex>.jwal`).
pub fn segment_name(first_seq: u64) -> String {
    format!("seg-{first_seq:016x}.jwal")
}

/// The snapshot file name for a watermark (`snap-<16hex>.jsnap`).
pub fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:016x}.jsnap")
}

/// Parses the sequence number out of a `prefix<16hex>suffix` file name.
pub(crate) fn parse_seq_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// When the group-commit fsync happens.
///
/// Records are buffered in userspace until a flush writes and fsyncs
/// them in one batch. The batching window is exactly the window a
/// process kill can lose: recovery returns the fsynced prefix (plus
/// whatever of the written-but-unsynced tail the OS kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush + fsync after every record: nothing committed is ever lost,
    /// at one fsync per commit.
    Always,
    /// Flush + fsync once per `n` buffered records (group commit).
    EveryN(u64),
    /// Flush + fsync from a background thread every `ms` milliseconds.
    IntervalMs(u64),
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `always`, `every-n:<N>` or `interval-ms:<N>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "always" {
            return Ok(FsyncPolicy::Always);
        }
        if let Some(n) = s.strip_prefix("every-n:") {
            return match n.parse::<u64>() {
                Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!("every-n wants a positive count, got {n:?}")),
            };
        }
        if let Some(ms) = s.strip_prefix("interval-ms:") {
            return match ms.parse::<u64>() {
                Ok(ms) if ms > 0 => Ok(FsyncPolicy::IntervalMs(ms)),
                _ => Err(format!("interval-ms wants a positive duration, got {ms:?}")),
            };
        }
        Err(format!(
            "unknown fsync policy {s:?} (expected always, every-n:<N> or interval-ms:<N>)"
        ))
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-n:{n}"),
            FsyncPolicy::IntervalMs(ms) => write!(f, "interval-ms:{ms}"),
        }
    }
}

/// The journal's mutable core, under one mutex: reordering state,
/// userspace buffer, and the open segment.
struct Inner {
    file: File,
    pending: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    buf: Vec<u8>,
    unsynced: u64,
    buffered_seq: u64,
    synced_seq: u64,
    /// Set by a simulated crash point or a fatal I/O error: every later
    /// operation is a silent no-op, modeling the dead process.
    dead: bool,
}

/// A segmented, checksummed write-ahead commit journal.
///
/// Hangs off the runtime's [`CommitSink`] seam (see [`Wal::sink`]):
/// every commit ticket the session oracle issues arrives exactly once —
/// possibly out of ticket order, since commits on disjoint shards run
/// concurrently — and is reordered internally (a `BTreeMap` keyed by
/// ticket, drained as the contiguous prefix extends). Drained records
/// accumulate in a userspace buffer until the [`FsyncPolicy`] flushes
/// them: the buffer is the group-commit window, and exactly what a
/// crash can lose.
///
/// Record frame: `u32 len | payload | u64 fnv1a(payload)`. Commit
/// payloads carry the ticket, the touched-shard bitmask and the
/// transaction's mutating effects in `janus-log` wire encoding;
/// tombstone payloads carry just the ticket, keeping the journaled
/// ticket stream dense.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    base_seq: u64,
    stats: Arc<WalStats>,
    faults: Option<Arc<FaultPlan>>,
    inner: Mutex<Inner>,
    shutdown: AtomicBool,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Wal {
    /// Opens a journal in `dir` (created if missing), journaling tickets
    /// above `base_seq` — the recovered commit floor, `0` for a fresh
    /// store. Consumes any clean-shutdown marker (the journal is live
    /// again) and starts a fresh segment at `base_seq + 1`; an existing
    /// file under that name can only be the header-only remnant of a
    /// boot that appended nothing, so truncating it destroys no records.
    pub fn open(dir: impl AsRef<Path>, policy: FsyncPolicy, base_seq: u64) -> io::Result<Arc<Wal>> {
        Wal::open_with_faults(dir, policy, base_seq, None)
    }

    /// [`Wal::open`] with a fault plan: [`FaultKind::CrashPoint`] sites
    /// (subject: the global commit ticket; attempt: a
    /// [`CrashSite::attempt`]) kill the journal at that durability
    /// boundary — it stops accepting work, exactly like a dead process,
    /// while the files stay on disk for [`crate::recover`].
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
        base_seq: u64,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Arc<Wal>> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let marker = dir.join(CLEAN_MARKER);
        if marker.exists() {
            fs::remove_file(&marker)?;
        }
        let (file, _path) = new_segment(&dir, base_seq + 1)?;
        let wal = Arc::new(Wal {
            dir,
            policy,
            base_seq,
            stats: Arc::new(WalStats::default()),
            faults,
            inner: Mutex::new(Inner {
                file,
                pending: BTreeMap::new(),
                next_seq: base_seq + 1,
                buf: Vec::new(),
                unsynced: 0,
                buffered_seq: base_seq,
                synced_seq: base_seq,
                dead: false,
            }),
            shutdown: AtomicBool::new(false),
            flusher: Mutex::new(None),
        });
        if let FsyncPolicy::IntervalMs(ms) = policy {
            let weak = Arc::downgrade(&wal);
            let handle = std::thread::Builder::new()
                .name("janus-wal-flush".into())
                .spawn(move || loop {
                    std::thread::park_timeout(Duration::from_millis(ms.max(1)));
                    let Some(wal) = weak.upgrade() else { break };
                    if wal.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let _ = wal.flush();
                })
                .expect("spawn the wal flusher thread");
            *wal.flusher.lock().unwrap() = Some(handle);
        }
        Ok(wal)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The commit floor this journal opened above: session-local tickets
    /// are offset by this before journaling.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The journal's counters.
    pub fn stats(&self) -> &Arc<WalStats> {
        &self.stats
    }

    /// The highest ticket known durable (fsynced).
    pub fn synced_seq(&self) -> u64 {
        self.inner.lock().unwrap().synced_seq
    }

    /// The highest ticket drained into the userspace buffer.
    pub fn buffered_seq(&self) -> u64 {
        self.inner.lock().unwrap().buffered_seq
    }

    /// Whether a crash point or fatal I/O error killed this journal.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().unwrap().dead
    }

    /// The [`CommitSink`] adapter to hand to
    /// [`janus_core::Janus::commit_sink`]. Session-local tickets are
    /// offset by [`Wal::base_seq`] into the global sequence.
    pub fn sink(self: &Arc<Self>) -> Arc<WalSink> {
        Arc::new(WalSink {
            wal: Arc::clone(self),
        })
    }

    /// Flushes the userspace buffer to the segment and fsyncs it — one
    /// group-commit batch. No-op on a dead journal.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.dead {
            return Ok(());
        }
        self.flush_inner(&mut inner)
    }

    /// Serializes the store and its commit watermark to a snapshot file,
    /// rolls the journal onto a fresh segment above the watermark, and
    /// deletes every segment (and older snapshot) at or below it.
    ///
    /// Must be called at a quiescent point: every issued ticket already
    /// journaled (drained, no pending reordering gaps) and the store
    /// reflecting all of them — in practice, after a drain barrier.
    /// Returns the snapshot watermark.
    pub fn snapshot_and_truncate(&self, store: &Store) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        if inner.dead {
            return Ok(inner.synced_seq);
        }
        self.flush_inner(&mut inner)?;
        let seq = inner.synced_seq;

        let mut body = Vec::new();
        wire::put_u64(&mut body, seq);
        wire::put_u64(&mut body, store.alloc_count());
        let entries: Vec<_> = store.entries().collect();
        wire::put_u32(&mut body, entries.len() as u32);
        for (loc, class, value) in entries {
            wire::put_u64(&mut body, loc.0);
            wire::put_str(&mut body, class.label());
            wire::encode_value(&mut body, value);
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&body);
        wire::put_u64(&mut out, wire::checksum(&body));

        // Write-then-rename so a crash mid-snapshot leaves either the
        // old state or the new one, never a half-written snapshot under
        // the real name.
        let tmp = self.dir.join("snap.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, self.dir.join(snapshot_name(seq)))?;

        let (file, _path) = new_segment(&self.dir, seq + 1)?;
        inner.file = file;
        inner.next_seq = inner.next_seq.max(seq + 1);
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match parse_seq_name(name, "seg-", ".jwal") {
                Some(first) => first <= seq,
                None => matches!(
                    parse_seq_name(name, "snap-", ".jsnap"),
                    Some(s) if s < seq
                ),
            };
            if stale {
                fs::remove_file(entry.path())?;
            }
        }
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Flushes, fsyncs and writes the clean-shutdown marker stating the
    /// final synced ticket: the next boot trusts the tail instead of
    /// torn-scanning it. No-op (no marker) on a dead journal — a crashed
    /// process never shuts down cleanly.
    pub fn mark_clean(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.dead {
            return Ok(());
        }
        self.flush_inner(&mut inner)?;
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&CLEAN_MAGIC);
        wire::put_u64(&mut out, inner.synced_seq);
        let mut f = File::create(self.dir.join(CLEAN_MARKER))?;
        f.write_all(&out)?;
        f.sync_data()
    }

    /// Accepts one framed record for `seq` and drains the contiguous
    /// prefix into the buffer, applying the fsync policy and any armed
    /// crash points.
    fn submit(&self, seq: u64, frame: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.dead {
            return;
        }
        if let Some(plan) = &self.faults {
            if plan.should_inject(FaultKind::CrashPoint, seq, CrashSite::PreAppend.attempt()) {
                // Dead before the record exists anywhere: this commit —
                // and everything still pending — is lost to recovery.
                inner.dead = true;
                self.stats.crash_points.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        inner.pending.insert(seq, frame);
        while !inner.dead {
            let next = inner.next_seq;
            let Some(frame) = inner.pending.remove(&next) else {
                break;
            };
            let frame_len = frame.len();
            if frame[4] == REC_COMMIT {
                self.stats.appends.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.skips.fetch_add(1, Ordering::Relaxed);
            }
            self.stats
                .bytes
                .fetch_add(frame_len as u64, Ordering::Relaxed);
            inner.buf.extend_from_slice(&frame);
            inner.buffered_seq = next;
            inner.next_seq = next + 1;
            inner.unsynced += 1;
            if let Some(plan) = &self.faults {
                if plan.should_inject(
                    FaultKind::CrashPoint,
                    next,
                    CrashSite::PostAppendPreFsync.attempt(),
                ) {
                    // The kill lands mid-write: a strict prefix of the
                    // buffered bytes reaches the file — cutting this
                    // record in half — and no fsync happens. Earlier
                    // buffered records ride along un-torn, modeling
                    // page-cache survival of a process kill.
                    let keep = inner.buf.len() - frame_len.div_ceil(2);
                    let torn = inner.buf[..keep].to_vec();
                    let _ = inner.file.write_all(&torn);
                    inner.buf.clear();
                    inner.dead = true;
                    self.stats.crash_points.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if plan.should_inject(FaultKind::CrashPoint, next, CrashSite::PostFsync.attempt()) {
                    // The record reached disk; the process dies on the
                    // next instruction. Recovery must replay it.
                    let _ = self.flush_inner(&mut inner);
                    inner.dead = true;
                    self.stats.crash_points.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let due = match self.policy {
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => inner.unsynced >= n,
                FsyncPolicy::IntervalMs(_) => false,
            };
            if due {
                if let Err(_e) = self.flush_inner(&mut inner) {
                    inner.dead = true;
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn flush_inner(&self, inner: &mut Inner) -> io::Result<()> {
        if inner.buf.is_empty() {
            inner.synced_seq = inner.buffered_seq;
            return Ok(());
        }
        inner.file.write_all(&inner.buf)?;
        inner.file.sync_data()?;
        inner.buf.clear();
        inner.unsynced = 0;
        inner.synced_seq = inner.buffered_seq;
        self.stats.fsync_batches.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.flusher.lock().unwrap().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("base_seq", &self.base_seq)
            .finish()
    }
}

/// The [`CommitSink`] adapter over a journal: offsets session-local
/// tickets by the journal's recovered base and frames the records.
pub struct WalSink {
    wal: Arc<Wal>,
}

impl CommitSink for WalSink {
    fn committed(&self, seq: u64, shard_mask: u64, ops: &[Op]) {
        let global = self.wal.base_seq + seq;
        self.wal
            .submit(global, commit_frame(global, shard_mask, ops));
    }

    fn skipped(&self, seq: u64) {
        let global = self.wal.base_seq + seq;
        self.wal.submit(global, skip_frame(global));
    }
}

/// Creates (truncating) and headers a segment file.
fn new_segment(dir: &Path, first_seq: u64) -> io::Result<(File, PathBuf)> {
    let path = dir.join(segment_name(first_seq));
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&SEGMENT_MAGIC);
    wire::put_u64(&mut header, first_seq);
    file.write_all(&header)?;
    file.sync_data()?;
    Ok((file, path))
}

/// Frames a payload: `u32 len | payload | u64 fnv1a(payload)`.
pub(crate) fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    wire::put_u32(&mut out, payload.len() as u32);
    let sum = wire::checksum(&payload);
    out.extend_from_slice(&payload);
    wire::put_u64(&mut out, sum);
    out
}

/// Frames one commit record: ticket, shard mask, and the log's mutating
/// effects (reads cost nothing to replay and are dropped).
pub(crate) fn commit_frame(seq: u64, shard_mask: u64, ops: &[Op]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.push(REC_COMMIT);
    wire::put_u64(&mut payload, seq);
    wire::put_u64(&mut payload, shard_mask);
    let count_at = payload.len();
    wire::put_u32(&mut payload, 0);
    let mut n: u32 = 0;
    for op in ops {
        if !op.kind.is_write() {
            continue;
        }
        wire::encode_effect(&mut payload, op.loc, &op.kind)
            .expect("a write op kind encodes as an effect");
        n += 1;
    }
    payload[count_at..count_at + 4].copy_from_slice(&n.to_le_bytes());
    frame(payload)
}

/// Frames one tombstone record: just the consumed ticket.
pub(crate) fn skip_frame(seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(REC_SKIP);
    wire::put_u64(&mut payload, seq);
    frame(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, want) in [
            ("always", FsyncPolicy::Always),
            ("every-n:8", FsyncPolicy::EveryN(8)),
            ("interval-ms:25", FsyncPolicy::IntervalMs(25)),
        ] {
            let got: FsyncPolicy = s.parse().expect("policy parses");
            assert_eq!(got, want);
            assert_eq!(got.to_string(), s, "display is the parse inverse");
        }
        for bad in ["", "sometimes", "every-n:0", "every-n:x", "interval-ms:-1"] {
            assert!(
                bad.parse::<FsyncPolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn file_names_roundtrip_their_sequence() {
        assert_eq!(segment_name(1), "seg-0000000000000001.jwal");
        assert_eq!(
            parse_seq_name(&segment_name(0xdead_beef), "seg-", ".jwal"),
            Some(0xdead_beef)
        );
        assert_eq!(
            parse_seq_name(&snapshot_name(42), "snap-", ".jsnap"),
            Some(42)
        );
        assert_eq!(parse_seq_name("seg-xyz.jwal", "seg-", ".jwal"), None);
        assert_eq!(parse_seq_name("seg-01.jwal", "seg-", ".jwal"), None);
    }

    #[test]
    fn frames_checksum_their_payload() {
        let f = skip_frame(7);
        let len = u32::from_le_bytes(f[..4].try_into().unwrap()) as usize;
        assert_eq!(len, 9);
        assert_eq!(f.len(), 4 + len + 8);
        assert_eq!(f[4], REC_SKIP);
        let payload = &f[4..4 + len];
        let stored = u64::from_le_bytes(f[4 + len..].try_into().unwrap());
        assert_eq!(stored, wire::checksum(payload));
    }
}
