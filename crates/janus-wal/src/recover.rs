//! Crash recovery: restore the newest snapshot, replay the journal
//! tail, tolerate torn tails, fail loudly on mid-log corruption.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use janus_core::Store;
use janus_log::{wire, ClassId, LocId, OpKind};

use crate::journal::{
    parse_seq_name, CLEAN_MAGIC, CLEAN_MARKER, REC_COMMIT, REC_SKIP, SEGMENT_MAGIC, SNAPSHOT_MAGIC,
};

/// Why a recovery refused to proceed. Everything here is loud on
/// purpose: the only silently-tolerated damage is a torn tail in the
/// final segment of an unclean shutdown, which is truncated and
/// counted, never errored.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error against a journal file.
    Io {
        /// The file being read or truncated.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file's magic or fixed header didn't parse.
    BadHeader {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A record in the durable body of the log failed its checksum —
    /// not a torn tail, real corruption.
    Corrupt {
        /// The offending segment.
        path: PathBuf,
        /// Byte offset of the record frame.
        offset: u64,
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum the payload actually hashes to.
        computed: u64,
    },
    /// A record frame in the durable body of the log was cut short —
    /// truncation anywhere but the unclean final tail is corruption.
    Truncated {
        /// The offending segment.
        path: PathBuf,
        /// Byte offset of the incomplete frame.
        offset: u64,
    },
    /// A checksummed record failed to decode: the bytes are as written,
    /// so this is a format bug, not bit rot.
    Wire {
        /// The offending file.
        path: PathBuf,
        /// The decode failure.
        source: wire::WireError,
    },
    /// The journaled ticket stream has a hole: a record skipped past
    /// `expected` — fsynced commits are missing.
    Gap {
        /// The offending segment.
        path: PathBuf,
        /// The ticket the dense stream required next.
        expected: u64,
        /// The ticket the record actually carried.
        found: u64,
    },
    /// A replayed effect targets a location the boot store never
    /// allocated: the journal and the provisioned store disagree.
    UnknownLoc {
        /// The commit ticket being replayed.
        seq: u64,
        /// The unallocated location.
        loc: LocId,
    },
    /// The clean-shutdown marker's stated final ticket disagrees with
    /// what the journal actually contains.
    CleanMismatch {
        /// The ticket the marker stated.
        stated: u64,
        /// The last ticket the journal replayed.
        found: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "journal i/o error on {}: {source}", path.display())
            }
            WalError::BadHeader { path, detail } => {
                write!(f, "bad journal header in {}: {detail}", path.display())
            }
            WalError::Corrupt {
                path,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "corrupt journal record in {} at byte {offset}: checksum mismatch: \
                 file says {stored:016x}, contents hash to {computed:016x}",
                path.display()
            ),
            WalError::Truncated { path, offset } => write!(
                f,
                "truncated journal record in {} at byte {offset} (not the unclean final tail)",
                path.display()
            ),
            WalError::Wire { path, source } => {
                write!(f, "undecodable journal record in {}: {source}", path.display())
            }
            WalError::Gap {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal gap in {}: expected ticket {expected}, found {found}",
                path.display()
            ),
            WalError::UnknownLoc { seq, loc } => write!(
                f,
                "journal replay of commit {seq} targets unallocated location {loc}"
            ),
            WalError::CleanMismatch { stated, found } => write!(
                f,
                "clean-shutdown marker states commit_seq={stated} but the journal replays to {found}"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Wire { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What a recovery produced.
#[derive(Debug)]
pub struct Recovered {
    /// The reconstructed store: snapshot state plus every replayed
    /// journal record, in ticket order, exactly once.
    pub store: Store,
    /// The last ticket the journal accounts for (commits + tombstones);
    /// the base the next [`crate::Wal::open`] must use.
    pub commit_seq: u64,
    /// Commit records replayed from segments (snapshot state excluded,
    /// duplicates excluded).
    pub commits_replayed: u64,
    /// Tombstone records replayed from segments.
    pub skips_replayed: u64,
    /// Records skipped because the snapshot already covered their
    /// ticket — the exactly-once dedupe at work.
    pub duplicates_skipped: u64,
    /// Torn tails physically truncated (0 or 1; an unclean shutdown's
    /// final segment may end mid-record).
    pub torn_tail_truncations: u64,
    /// The snapshot watermark restored, if a snapshot existed.
    pub snapshot_seq: Option<u64>,
    /// Whether a clean-shutdown marker vouched for the tail.
    pub clean: bool,
}

fn io_err(path: &Path, source: io::Error) -> WalError {
    WalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Rebuilds a store from a journal directory.
///
/// `base` is the boot-time provisioned store (the same initial state
/// every boot constructs); it seeds the replay when no snapshot exists
/// and is discarded when one does. A missing or empty directory is a
/// fresh start, not an error.
///
/// Invariants enforced:
///
/// * **Exactly once** — records at or below the snapshot watermark are
///   skipped (counted as duplicates), every record above it is applied
///   once, and the ticket stream must be dense ([`WalError::Gap`]).
/// * **Torn tail** — without a clean-shutdown marker, the final
///   segment may end in an incomplete or checksum-failing record: it is
///   physically truncated at the first bad frame and counted. With the
///   marker — or anywhere before the final tail — the same damage is a
///   hard error with both hashes.
/// * **Idempotence** — recovering twice (the second time over the
///   already-truncated files) yields the same store and watermark.
pub fn recover(dir: impl AsRef<Path>, base: Store) -> Result<Recovered, WalError> {
    let dir = dir.as_ref();
    let mut out = Recovered {
        store: base,
        commit_seq: 0,
        commits_replayed: 0,
        skips_replayed: 0,
        duplicates_skipped: 0,
        torn_tail_truncations: 0,
        snapshot_seq: None,
        clean: false,
    };
    if !dir.exists() {
        return Ok(out);
    }

    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(first) = parse_seq_name(name, "seg-", ".jwal") {
            segments.push((first, entry.path()));
        } else if let Some(seq) = parse_seq_name(name, "snap-", ".jsnap") {
            snapshots.push((seq, entry.path()));
        }
    }
    segments.sort_unstable();
    snapshots.sort_unstable();

    let clean_stated = read_clean_marker(dir)?;
    out.clean = clean_stated.is_some();

    // Restore the newest snapshot; older ones are superseded leftovers.
    let mut applied = 0u64;
    if let Some((seq, path)) = snapshots.pop() {
        out.store = read_snapshot(path.as_path(), seq)?;
        out.snapshot_seq = Some(seq);
        applied = seq;
    }

    let last_idx = segments.len().wrapping_sub(1);
    for (idx, (first_seq, path)) in segments.iter().enumerate() {
        // Torn-tail tolerance applies only to the final segment of an
        // unclean shutdown; everywhere else damage is corruption.
        let tolerant = idx == last_idx && clean_stated.is_none();
        replay_segment(path, *first_seq, tolerant, &mut applied, &mut out)?;
    }
    out.commit_seq = applied;

    if let Some(stated) = clean_stated {
        if stated != applied {
            return Err(WalError::CleanMismatch {
                stated,
                found: applied,
            });
        }
    }
    Ok(out)
}

/// Reads and validates the clean-shutdown marker, if present.
fn read_clean_marker(dir: &Path) -> Result<Option<u64>, WalError> {
    let path = dir.join(CLEAN_MARKER);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    if bytes.len() != 16 || bytes[..8] != CLEAN_MAGIC {
        return Err(WalError::BadHeader {
            path,
            detail: "clean marker is not 16 bytes of magic + ticket".to_string(),
        });
    }
    Ok(Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap())))
}

/// Reads, checksums and decodes one snapshot file.
fn read_snapshot(path: &Path, name_seq: u64) -> Result<Store, WalError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 16 || bytes[..8] != SNAPSHOT_MAGIC {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            detail: "missing snapshot magic".to_string(),
        });
    }
    let body = &bytes[8..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = wire::checksum(body);
    if stored != computed {
        return Err(WalError::Corrupt {
            path: path.to_path_buf(),
            offset: 8,
            stored,
            computed,
        });
    }
    let wire_err = |source| WalError::Wire {
        path: path.to_path_buf(),
        source,
    };
    let mut c = wire::Cursor::new(body);
    let seq = c.take_u64().map_err(wire_err)?;
    if seq != name_seq {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            detail: format!("snapshot body says seq {seq}, file name says {name_seq}"),
        });
    }
    let next = c.take_u64().map_err(wire_err)?;
    let n = c.take_u32().map_err(wire_err)?;
    let mut entries = Vec::with_capacity((n as usize).min(1 << 20));
    for _ in 0..n {
        let loc = LocId(c.take_u64().map_err(wire_err)?);
        let class = ClassId::new(c.take_str().map_err(wire_err)?);
        let value = wire::decode_value(&mut c).map_err(wire_err)?;
        entries.push((loc, class, value));
    }
    Ok(Store::restore(next, entries))
}

/// Replays one segment's records above the applied floor.
fn replay_segment(
    path: &Path,
    first_seq: u64,
    tolerant: bool,
    applied: &mut u64,
    out: &mut Recovered,
) -> Result<(), WalError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 16 || bytes[..8] != SEGMENT_MAGIC {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            detail: "missing segment magic".to_string(),
        });
    }
    let header_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_seq != first_seq {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            detail: format!(
                "segment header says first seq {header_seq}, file name says {first_seq}"
            ),
        });
    }

    let mut off = 16usize;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        // A frame needs at least its length prefix, one payload byte and
        // the checksum; anything shorter is a torn write.
        let frame_len = if remaining >= 4 {
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize
        } else {
            0
        };
        if remaining < 4 || frame_len == 0 || remaining < 4 + frame_len + 8 {
            if tolerant {
                truncate_tail(path, off as u64)?;
                out.torn_tail_truncations += 1;
                return Ok(());
            }
            return Err(WalError::Truncated {
                path: path.to_path_buf(),
                offset: off as u64,
            });
        }
        let payload = &bytes[off + 4..off + 4 + frame_len];
        let stored = u64::from_le_bytes(
            bytes[off + 4 + frame_len..off + 12 + frame_len]
                .try_into()
                .unwrap(),
        );
        let computed = wire::checksum(payload);
        if stored != computed {
            // A checksum failure is a torn write only if nothing sound
            // follows it; a valid record *after* the bad one means the
            // log's durable body is damaged, which no shutdown mode
            // tolerates.
            if tolerant && !has_valid_record_after(&bytes, off + 4 + frame_len + 8) {
                truncate_tail(path, off as u64)?;
                out.torn_tail_truncations += 1;
                return Ok(());
            }
            return Err(WalError::Corrupt {
                path: path.to_path_buf(),
                offset: off as u64,
                stored,
                computed,
            });
        }
        apply_record(path, payload, applied, out)?;
        off += 4 + frame_len + 8;
    }
    Ok(())
}

/// Decodes and applies one checksummed record payload.
fn apply_record(
    path: &Path,
    payload: &[u8],
    applied: &mut u64,
    out: &mut Recovered,
) -> Result<(), WalError> {
    let wire_err = |source| WalError::Wire {
        path: path.to_path_buf(),
        source,
    };
    let mut c = wire::Cursor::new(payload);
    let rec_type = c.take_u8().map_err(wire_err)?;
    let seq = c.take_u64().map_err(wire_err)?;
    let duplicate = seq <= *applied;
    if !duplicate && seq != *applied + 1 {
        return Err(WalError::Gap {
            path: path.to_path_buf(),
            expected: *applied + 1,
            found: seq,
        });
    }
    match rec_type {
        REC_COMMIT => {
            let _shard_mask = c.take_u64().map_err(wire_err)?;
            let n = c.take_u32().map_err(wire_err)?;
            let mut effects: Vec<(LocId, OpKind)> = Vec::with_capacity((n as usize).min(1 << 16));
            for _ in 0..n {
                effects.push(wire::decode_effect(&mut c).map_err(wire_err)?);
            }
            if duplicate {
                out.duplicates_skipped += 1;
                return Ok(());
            }
            out.store
                .apply_effects(&effects)
                .map_err(|loc| WalError::UnknownLoc { seq, loc })?;
            out.commits_replayed += 1;
        }
        REC_SKIP => {
            if duplicate {
                out.duplicates_skipped += 1;
                return Ok(());
            }
            out.skips_replayed += 1;
        }
        t => {
            return Err(wire_err(wire::WireError {
                offset: 0,
                message: format!("unknown record type {t}"),
            }));
        }
    }
    *applied = seq;
    Ok(())
}

/// Whether any well-checksummed frame parses at or after `from` —
/// frames are self-delimiting, so a sound record past a bad one proves
/// the damage is mid-log, not a torn tail.
fn has_valid_record_after(bytes: &[u8], mut from: usize) -> bool {
    while from < bytes.len() {
        let remaining = bytes.len() - from;
        if remaining < 4 {
            return false;
        }
        let frame_len = u32::from_le_bytes(bytes[from..from + 4].try_into().unwrap()) as usize;
        if frame_len == 0 || remaining < 4 + frame_len + 8 {
            return false;
        }
        let payload = &bytes[from + 4..from + 4 + frame_len];
        let stored = u64::from_le_bytes(
            bytes[from + 4 + frame_len..from + 12 + frame_len]
                .try_into()
                .unwrap(),
        );
        if stored == wire::checksum(payload) {
            return true;
        }
        from += 4 + frame_len + 8;
    }
    false
}

/// Physically truncates a torn tail so later recoveries see a clean
/// segment end — what makes double recovery idempotent.
fn truncate_tail(path: &Path, offset: u64) -> Result<(), WalError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    file.set_len(offset).map_err(|e| io_err(path, e))?;
    file.sync_data().map_err(|e| io_err(path, e))
}
