//! Monotone journal counters, surfaced through the metrics registry.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::recover::Recovered;

/// Monotone counters for one journal, shared by every thread appending
/// to it. Implements [`janus_obs::Snapshot`] (source `"wal"`), so serve
/// and bench runs surface `wal.appends`, `wal.fsync_batches`, … through
/// the same registry as every other subsystem.
#[derive(Debug, Default)]
pub struct WalStats {
    pub(crate) appends: AtomicU64,
    pub(crate) skips: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) fsync_batches: AtomicU64,
    pub(crate) snapshots: AtomicU64,
    pub(crate) crash_points: AtomicU64,
    pub(crate) io_errors: AtomicU64,
    pub(crate) torn_truncations: AtomicU64,
    pub(crate) recovery_replays: AtomicU64,
}

impl WalStats {
    /// Commit records drained into the journal buffer.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Tombstone (skip) records drained into the journal buffer.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }

    /// Framed bytes buffered (record frames, headers excluded).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Group-commit flushes: each is one `write` + one fsync covering
    /// every record buffered since the previous flush.
    pub fn fsync_batches(&self) -> u64 {
        self.fsync_batches.load(Ordering::Relaxed)
    }

    /// Store snapshots written (each truncates the segments below it).
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Injected crash points taken (the journal is dead afterwards).
    pub fn crash_points(&self) -> u64 {
        self.crash_points.load(Ordering::Relaxed)
    }

    /// I/O errors that killed the journal.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Torn tails truncated by recoveries noted on these stats.
    pub fn torn_truncations(&self) -> u64 {
        self.torn_truncations.load(Ordering::Relaxed)
    }

    /// Records replayed by recoveries noted on these stats.
    pub fn recovery_replays(&self) -> u64 {
        self.recovery_replays.load(Ordering::Relaxed)
    }

    /// Folds a recovery's outcome into the counters, so a service that
    /// recovered on boot reports the replay work alongside its live
    /// journal traffic.
    pub fn note_recovery(&self, recovered: &Recovered) {
        self.recovery_replays.fetch_add(
            recovered.commits_replayed + recovered.skips_replayed,
            Ordering::Relaxed,
        );
        self.torn_truncations
            .fetch_add(recovered.torn_tail_truncations, Ordering::Relaxed);
    }
}

impl janus_obs::Snapshot for WalStats {
    fn source(&self) -> &'static str {
        "wal"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("appends".to_string(), self.appends()),
            ("skips".to_string(), self.skips()),
            ("bytes".to_string(), self.bytes()),
            ("fsync_batches".to_string(), self.fsync_batches()),
            ("snapshots".to_string(), self.snapshots()),
            ("crash_points".to_string(), self.crash_points()),
            ("io_errors".to_string(), self.io_errors()),
            ("torn_tail_truncations".to_string(), self.torn_truncations()),
            ("recovery_replays".to_string(), self.recovery_replays()),
        ]
    }
}
