//! Durable commit journal for JANUS: a segmented, checksummed
//! write-ahead log over the commit-ordered effect stream.
//!
//! The runtime already produces the one artifact durability needs: a
//! totally-ordered committed schedule, ticketed by the session oracle.
//! This crate persists it. A [`Wal`] hangs off the runtime's
//! [`janus_core::CommitSink`] seam and appends one record per ticket —
//! the commit's mutating effects in `janus-log` wire encoding, or a
//! tombstone for a released ordered turn — framed as
//! `u32 len | payload | u64 fnv1a(payload)` in segment files. Records
//! buffer in userspace until the configured [`FsyncPolicy`] flushes and
//! fsyncs them in one batch: the group-commit window is exactly the
//! suffix a crash can lose.
//!
//! [`Wal::snapshot_and_truncate`] serializes the store and its commit
//! watermark at a quiescent point, then drops every segment below the
//! watermark; [`recover`] rebuilds a store from the newest snapshot
//! plus the journal tail, exactly once per ticket, truncating a torn
//! tail (unclean shutdowns only) and failing loudly — both hashes in
//! the error — on mid-log corruption. [`FaultKind::CrashPoint`] sites
//! from `janus-fault` kill the journal deterministically at the three
//! durability boundaries ([`janus_fault::CrashSite`]) so chaos tests
//! can recover from every one.
//!
//! [`FaultKind::CrashPoint`]: janus_fault::FaultKind::CrashPoint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod journal;
mod recover;
mod stats;

pub use journal::{
    segment_name, snapshot_name, FsyncPolicy, Wal, WalSink, CLEAN_MAGIC, CLEAN_MARKER,
    SEGMENT_MAGIC, SNAPSHOT_MAGIC,
};
pub use recover::{recover, Recovered, WalError};
pub use stats::WalStats;
