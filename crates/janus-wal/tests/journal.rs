//! Journal + recovery integration tests, on real files under
//! `CARGO_TARGET_TMPDIR`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use janus_core::{CommitSink as _, Janus, Store, Task, TxView};
use janus_detect::SequenceDetector;
use janus_fault::{CrashSite, FaultKind, FaultPlan, FaultSite};
use janus_log::{LocId, Op};
use janus_relational::Value;
use janus_wal::{recover, FsyncPolicy, Wal, WalError, CLEAN_MARKER};

/// A fresh scratch directory for one test, inside the cargo target tree
/// (the tests never write outside the repo checkout).
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Two int locations and the base store every "boot" reconstructs.
fn base_store() -> (Store, LocId, LocId) {
    let mut store = Store::new();
    let a = store.alloc("acct", Value::int(0));
    let b = store.alloc("acct", Value::int(100));
    (store, a, b)
}

/// Harvests a task body's op log against the store's current state.
fn ops_for(store: &Store, body: impl Fn(&mut TxView)) -> Vec<Op> {
    let mut tx = store.begin();
    body(&mut tx);
    tx.into_log()
}

#[test]
fn out_of_order_appends_recover_in_ticket_order() {
    let dir = scratch("ooo");
    let (store, a, b) = base_store();
    let ops1 = ops_for(&store, |tx| tx.add(a, 7));
    let ops2 = ops_for(&store, |tx| tx.add(b, -30));

    let wal = Wal::open(&dir, FsyncPolicy::Always, 0).expect("open");
    let sink = wal.sink();
    // Disjoint-shard committers may reach the sink out of ticket order;
    // the journal reorders on its pending map.
    sink.committed(2, 1 << b.shard(64), &ops2);
    assert_eq!(wal.buffered_seq(), 0, "ticket 2 parks until 1 arrives");
    sink.committed(1, 1 << a.shard(64), &ops1);
    sink.skipped(3);
    wal.flush().expect("flush");
    assert_eq!(wal.synced_seq(), 3);
    assert_eq!(wal.stats().appends(), 2);
    assert_eq!(wal.stats().skips(), 1);
    assert!(wal.stats().bytes() > 0);
    drop(wal);

    let rec = recover(&dir, base_store().0).expect("recover");
    assert_eq!(rec.commit_seq, 3);
    assert_eq!(rec.commits_replayed, 2);
    assert_eq!(rec.skips_replayed, 1);
    assert_eq!(rec.store.value(a), Some(&Value::int(7)));
    assert_eq!(rec.store.value(b), Some(&Value::int(70)));

    // Double recovery is idempotent.
    let again = recover(&dir, base_store().0).expect("recover twice");
    assert_eq!(again.commit_seq, 3);
    assert_eq!(again.store.value(a), Some(&Value::int(7)));
    assert_eq!(again.store.value(b), Some(&Value::int(70)));
}

#[test]
fn group_commit_buffers_until_the_batch_fills() {
    let dir = scratch("group");
    let (store, a, _b) = base_store();
    let wal = Wal::open(&dir, FsyncPolicy::EveryN(2), 0).expect("open");
    let sink = wal.sink();
    sink.committed(1, 1, &ops_for(&store, |tx| tx.add(a, 1)));
    assert_eq!(wal.buffered_seq(), 1);
    assert_eq!(wal.synced_seq(), 0, "one record sits in the batch window");
    sink.committed(2, 1, &ops_for(&store, |tx| tx.add(a, 2)));
    assert_eq!(wal.synced_seq(), 2, "the second record closes the batch");
    assert_eq!(wal.stats().fsync_batches(), 1);
    wal.mark_clean().expect("clean");
    drop(wal);

    let rec = recover(&dir, base_store().0).expect("recover");
    assert!(rec.clean, "the marker vouched for the tail");
    assert_eq!(rec.commit_seq, 2);
    assert_eq!(rec.store.value(a), Some(&Value::int(3)));
}

#[test]
fn interval_policy_flushes_from_the_background_thread() {
    let dir = scratch("interval");
    let (store, a, _b) = base_store();
    let wal = Wal::open(&dir, FsyncPolicy::IntervalMs(5), 0).expect("open");
    wal.sink()
        .committed(1, 1, &ops_for(&store, |tx| tx.add(a, 4)));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while wal.synced_seq() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "flusher thread never synced the record"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    drop(wal); // joins the flusher
    let rec = recover(&dir, base_store().0).expect("recover");
    assert_eq!(rec.store.value(a), Some(&Value::int(4)));
}

#[test]
fn crash_sites_lose_exactly_the_undurable_suffix() {
    // One crash point per durability boundary, always killing ticket 2
    // under `always` fsync: the recovered prefix is exactly what the
    // site semantics promise.
    for (site, expect_seq) in [
        (CrashSite::PreAppend, 1),          // record 2 never existed
        (CrashSite::PostAppendPreFsync, 1), // record 2 torn, truncated
        (CrashSite::PostFsync, 2),          // record 2 durable
    ] {
        let dir = scratch(&format!("crash-{}", site.label()));
        let (store, a, _b) = base_store();
        let plan = Arc::new(FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CrashPoint,
            subject: 2,
            attempt: site.attempt(),
        }]));
        let wal = Wal::open_with_faults(&dir, FsyncPolicy::Always, 0, Some(plan)).expect("open");
        let sink = wal.sink();
        sink.committed(1, 1, &ops_for(&store, |tx| tx.add(a, 1)));
        sink.committed(2, 1, &ops_for(&store, |tx| tx.add(a, 2)));
        assert!(wal.is_dead(), "site {} kills the journal", site.label());
        // Post-crash traffic must vanish, like writes of a dead process.
        sink.committed(3, 1, &ops_for(&store, |tx| tx.add(a, 4)));
        assert_eq!(wal.stats().crash_points(), 1);
        drop(wal);

        let rec = recover(&dir, base_store().0).expect("recover");
        assert_eq!(rec.commit_seq, expect_seq, "site {}", site.label());
        let want = (1..=expect_seq).map(|s| 1i64 << (s - 1)).sum::<i64>();
        assert_eq!(rec.store.value(a), Some(&Value::int(want)));
        assert_eq!(
            rec.torn_tail_truncations,
            u64::from(site == CrashSite::PostAppendPreFsync),
            "only the mid-write kill tears the tail"
        );
        assert!(!rec.clean, "a crashed journal never marks clean");

        // The torn tail, once truncated, stays recovered-identical.
        let again = recover(&dir, base_store().0).expect("recover twice");
        assert_eq!(again.commit_seq, expect_seq);
        assert_eq!(again.torn_tail_truncations, 0, "truncation is physical");
    }
}

#[test]
fn group_commit_crash_loses_the_whole_buffered_window() {
    // Under every-n:10 nothing is synced; a pre-append kill at ticket 3
    // loses the *userspace* buffer too — records 1 and 2 were never
    // written anywhere.
    let dir = scratch("crash-window");
    let (store, a, _b) = base_store();
    let plan = Arc::new(FaultPlan::from_sites(vec![FaultSite {
        kind: FaultKind::CrashPoint,
        subject: 3,
        attempt: CrashSite::PreAppend.attempt(),
    }]));
    let wal = Wal::open_with_faults(&dir, FsyncPolicy::EveryN(10), 0, Some(plan)).expect("open");
    let sink = wal.sink();
    for seq in 1..=3 {
        sink.committed(seq, 1, &ops_for(&store, |tx| tx.add(a, 1)));
    }
    drop(wal);
    let rec = recover(&dir, base_store().0).expect("recover");
    assert_eq!(rec.commit_seq, 0, "the unflushed window is gone");
    assert_eq!(rec.store.value(a), Some(&Value::int(0)));
}

#[test]
fn snapshot_truncates_segments_and_dedupes_replay() {
    let dir = scratch("snapshot");
    let (store, a, b) = base_store();
    let wal = Wal::open(&dir, FsyncPolicy::Always, 0).expect("open");
    let sink = wal.sink();
    let mut expected = store.clone();
    for seq in 1..=4 {
        let ops = ops_for(&expected, |tx| {
            tx.add(a, 10);
            tx.add(b, -10);
        });
        expected.apply_log(&ops);
        sink.committed(seq, 0b11, &ops);
    }
    let watermark = wal.snapshot_and_truncate(&expected).expect("snapshot");
    assert_eq!(watermark, 4);
    let names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("snap-")),
        "snapshot file exists: {names:?}"
    );
    assert!(
        !names.contains(&janus_wal::segment_name(1)),
        "the pre-snapshot segment is truncated away: {names:?}"
    );
    assert!(
        names.contains(&janus_wal::segment_name(5)),
        "a fresh segment starts above the watermark: {names:?}"
    );

    // One more commit past the snapshot, then recover.
    let ops = ops_for(&expected, |tx| tx.add(a, 1));
    expected.apply_log(&ops);
    sink.committed(5, 0b1, &ops);
    wal.flush().expect("flush");
    drop(wal);

    let rec = recover(&dir, base_store().0).expect("recover");
    assert_eq!(rec.snapshot_seq, Some(4));
    assert_eq!(rec.commit_seq, 5);
    assert_eq!(
        rec.commits_replayed, 1,
        "only the post-snapshot record replays"
    );
    assert_eq!(rec.store.value(a), Some(&Value::int(41)));
    assert_eq!(rec.store.value(b), Some(&Value::int(60)));
    assert_eq!(
        rec.store.alloc_count(),
        expected.alloc_count(),
        "the allocation counter survives the snapshot"
    );
}

#[test]
fn corrupt_mid_log_record_fails_loudly_with_both_hashes() {
    let dir = scratch("corrupt");
    let (store, a, _b) = base_store();
    let wal = Wal::open(&dir, FsyncPolicy::Always, 0).expect("open");
    let sink = wal.sink();
    for seq in 1..=3 {
        sink.committed(seq, 1, &ops_for(&store, |tx| tx.add(a, 1)));
    }
    drop(wal);

    // Flip one payload byte in the *first* record: damage ahead of the
    // tail is corruption, not a torn write, even without a clean marker.
    let seg = dir.join(janus_wal::segment_name(1));
    let mut bytes = fs::read(&seg).unwrap();
    bytes[16 + 4 + 2] ^= 0xff;
    fs::write(&seg, &bytes).unwrap();

    let err = recover(&dir, base_store().0).expect_err("corruption is fatal");
    match &err {
        WalError::Corrupt {
            stored, computed, ..
        } => {
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("{stored:016x}"))
                    && msg.contains(&format!("{computed:016x}")),
                "both hashes in the report: {msg}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn a_clean_marker_makes_tail_damage_fatal() {
    let dir = scratch("clean-tail");
    let (store, a, _b) = base_store();
    let wal = Wal::open(&dir, FsyncPolicy::Always, 0).expect("open");
    wal.sink()
        .committed(1, 1, &ops_for(&store, |tx| tx.add(a, 1)));
    wal.mark_clean().expect("clean");
    drop(wal);

    // Sanity: the marked journal recovers clean.
    let rec = recover(&dir, base_store().0).expect("recover");
    assert!(rec.clean);
    assert_eq!(rec.commit_seq, 1);

    // Garbage past the last record would be torn-tolerated on an
    // unclean boot; the marker promised a sound tail, so it is fatal.
    // (Recovery consumed nothing: re-mark by hand.)
    let seg = dir.join(janus_wal::segment_name(1));
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad]);
    fs::write(&seg, &bytes).unwrap();
    assert!(
        dir.join(CLEAN_MARKER).exists(),
        "recover() leaves the marker in place"
    );
    let err = recover(&dir, base_store().0).expect_err("marker makes damage fatal");
    assert!(matches!(err, WalError::Truncated { .. }), "got {err:?}");

    // Without the marker the same bytes are a torn tail: truncated.
    fs::remove_file(dir.join(CLEAN_MARKER)).unwrap();
    let rec = recover(&dir, base_store().0).expect("unclean boot tolerates the tail");
    assert_eq!(rec.torn_tail_truncations, 1);
    assert_eq!(rec.commit_seq, 1);
}

#[test]
fn missing_dir_is_a_fresh_start() {
    let dir = scratch("fresh");
    let (store, a, _b) = base_store();
    let rec = recover(&dir, store).expect("fresh");
    assert_eq!(rec.commit_seq, 0);
    assert_eq!(rec.snapshot_seq, None);
    assert_eq!(rec.store.value(a), Some(&Value::int(0)));
}

#[test]
fn reopen_continues_the_global_sequence() {
    // Boot 1 journals 1..=2; boot 2 opens at base 2 and journals 3; the
    // final recovery stitches both segments into one dense stream.
    let dir = scratch("reopen");
    let (store, a, _b) = base_store();
    {
        let wal = Wal::open(&dir, FsyncPolicy::Always, 0).expect("boot 1");
        let sink = wal.sink();
        sink.committed(1, 1, &ops_for(&store, |tx| tx.add(a, 1)));
        sink.committed(2, 1, &ops_for(&store, |tx| tx.add(a, 2)));
    }
    let rec = recover(&dir, base_store().0).expect("mid recover");
    assert_eq!(rec.commit_seq, 2);
    {
        let wal = Wal::open(&dir, FsyncPolicy::Always, rec.commit_seq).expect("boot 2");
        // Session-local ticket 1 lands at global 3.
        wal.sink()
            .committed(1, 1, &ops_for(&store, |tx| tx.add(a, 4)));
        assert_eq!(wal.synced_seq(), 3);
    }
    let rec = recover(&dir, base_store().0).expect("final recover");
    assert_eq!(rec.commit_seq, 3);
    assert_eq!(rec.store.value(a), Some(&Value::int(7)));
}

#[test]
fn runtime_seam_journals_a_real_session() {
    // End to end through the CommitSink seam: a parallel run's committed
    // effects, journaled live, recover to the runtime's own final store.
    let dir = scratch("seam");
    let mut store = Store::new();
    let locs: Vec<LocId> = (0..8)
        .map(|i| store.alloc(format!("acct{i}").as_str(), Value::int(0)))
        .collect();
    let base = store.clone();

    let tasks: Vec<Task> = (0..32)
        .map(|i: usize| {
            let from = locs[i % locs.len()];
            let to = locs[(i * 7 + 3) % locs.len()];
            Task::new(move |tx: &mut TxView| {
                tx.add(from, -5);
                tx.add(to, 5);
            })
        })
        .collect();

    let wal = Wal::open(&dir, FsyncPolicy::EveryN(4), 0).expect("open");
    let outcome = Janus::new(Arc::new(SequenceDetector::new()))
        .threads(4)
        .commit_sink(wal.sink())
        .run(store, tasks);
    assert_eq!(outcome.stats.commits, 32);
    wal.flush().expect("flush");
    assert_eq!(wal.synced_seq(), 32);
    drop(wal);

    let rec = recover(&dir, base).expect("recover");
    assert_eq!(rec.commit_seq, 32);
    assert_eq!(rec.commits_replayed, 32);
    let mut total = 0i64;
    for &loc in &locs {
        let got = rec.store.value(loc);
        assert_eq!(got, outcome.store.value(loc), "loc {loc} diverged");
        total += got.and_then(Value::as_int).unwrap();
    }
    assert_eq!(total, 0, "transfers conserve the balance through replay");
}
