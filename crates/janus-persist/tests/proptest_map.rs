//! Property tests: `PersistentMap` behaves exactly like `BTreeMap`, and
//! snapshots are immune to later mutation.

use std::collections::BTreeMap;

use janus_persist::PersistentMap;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, i32),
    Remove(u8),
    Get(u8),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
        any::<u8>().prop_map(MapOp::Get),
        Just(MapOp::Snapshot),
    ]
}

proptest! {
    /// `iter_from` agrees with the model's `range(lower..)`.
    #[test]
    fn iter_from_matches_btreemap_range(
        entries in proptest::collection::vec((any::<u8>(), any::<i32>()), 0..120),
        lower in any::<u8>(),
    ) {
        let subject: PersistentMap<u8, i32> = entries.iter().copied().collect();
        let model: BTreeMap<u8, i32> = entries.iter().copied().collect();
        let got: Vec<(u8, i32)> = subject.iter_from(&lower).map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u8, i32)> = model.range(lower..).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut subject: PersistentMap<u8, i32> = PersistentMap::new();
        let mut model: BTreeMap<u8, i32> = BTreeMap::new();
        let mut snapshots: Vec<(PersistentMap<u8, i32>, BTreeMap<u8, i32>)> = Vec::new();

        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(subject.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(subject.remove(&k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(subject.get(&k), model.get(&k));
                }
                MapOp::Snapshot => {
                    snapshots.push((subject.clone(), model.clone()));
                }
            }
            prop_assert_eq!(subject.len(), model.len());
        }

        // Iteration agrees entry-for-entry (sorted order).
        let got: Vec<(u8, i32)> = subject.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u8, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);

        // Every snapshot still matches the model state at snapshot time.
        for (snap, snap_model) in snapshots {
            let got: Vec<(u8, i32)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u8, i32)> = snap_model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want, "snapshot was disturbed by later mutation");
        }
    }
}
