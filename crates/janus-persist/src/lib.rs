//! A fully persistent ordered map for cheap state privatization.
//!
//! §4 of the JANUS paper ("Versioning") prescribes (fully) persistent data
//! structures in the sense of Driscoll et al. to reduce the cost of state
//! privatization: a persistent structure preserves the previous version of
//! itself when modified, so every transaction can snapshot the shared
//! state in O(1) and modify its private copy without copying the whole
//! store.
//!
//! [`PersistentMap`] is a path-copying AVL tree: `get` is O(log n),
//! `insert`/`remove` are O(log n) and allocate only the rewritten path
//! (sharing the rest with prior versions via [`std::sync::Arc`]), and
//! [`PersistentMap::clone`] — the snapshot operation — is O(1).
//!
//! # Example
//!
//! ```
//! use janus_persist::PersistentMap;
//!
//! let mut shared = PersistentMap::new();
//! shared.insert(1, "a");
//! let snapshot = shared.clone();      // O(1) privatization
//! shared.insert(1, "b");              // does not disturb the snapshot
//! assert_eq!(snapshot.get(&1), Some(&"a"));
//! assert_eq!(shared.get(&1), Some(&"b"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

fn height<K, V>(link: &Link<K, V>) -> u8 {
    link.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn mk<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    let height = 1 + height(&left).max(height(&right));
    let size = 1 + size(&left) + size(&right);
    Some(Arc::new(Node {
        key,
        value,
        height,
        size,
        left,
        right,
    }))
}

/// A fully persistent ordered map with O(1) snapshots (via `clone`) and
/// O(log n) path-copying updates.
pub struct PersistentMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PersistentMap<K, V> {
    /// O(1): shares the entire tree with the source version.
    fn clone(&self) -> Self {
        PersistentMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PersistentMap<K, V> {
    fn default() -> Self {
        PersistentMap::new()
    }
}

impl<K, V> PersistentMap<K, V> {
    /// The empty map.
    pub fn new() -> Self {
        PersistentMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }
}

impl<K: Ord + Clone, V: Clone> PersistentMap<K, V> {
    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = &self.root;
        while let Some(node) = cur {
            match key.cmp(node.key.borrow()) {
                std::cmp::Ordering::Less => cur = &node.left,
                std::cmp::Ordering::Greater => cur = &node.right,
                std::cmp::Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Whether the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if any.
    /// O(log n); only the path to the key is copied.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, old) = Self::insert_at(&self.root, key, value);
        self.root = root;
        old
    }

    fn insert_at(link: &Link<K, V>, key: K, value: V) -> (Link<K, V>, Option<V>) {
        match link {
            None => (mk(key, value, None, None), None),
            Some(node) => match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => (
                    mk(key, value, node.left.clone(), node.right.clone()),
                    Some(node.value.clone()),
                ),
                std::cmp::Ordering::Less => {
                    let (left, old) = Self::insert_at(&node.left, key, value);
                    (
                        Self::balance(
                            node.key.clone(),
                            node.value.clone(),
                            left,
                            node.right.clone(),
                        ),
                        old,
                    )
                }
                std::cmp::Ordering::Greater => {
                    let (right, old) = Self::insert_at(&node.right, key, value);
                    (
                        Self::balance(
                            node.key.clone(),
                            node.value.clone(),
                            node.left.clone(),
                            right,
                        ),
                        old,
                    )
                }
            },
        }
    }

    /// Removes a key, returning its value if present. O(log n).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (root, old) = Self::remove_at(&self.root, key);
        if old.is_some() {
            self.root = root;
        }
        old
    }

    fn remove_at<Q>(link: &Link<K, V>, key: &Q) -> (Link<K, V>, Option<V>)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match link {
            None => (None, None),
            Some(node) => match key.cmp(node.key.borrow()) {
                std::cmp::Ordering::Less => {
                    let (left, old) = Self::remove_at(&node.left, key);
                    if old.is_none() {
                        return (link.clone(), None);
                    }
                    (
                        Self::balance(
                            node.key.clone(),
                            node.value.clone(),
                            left,
                            node.right.clone(),
                        ),
                        old,
                    )
                }
                std::cmp::Ordering::Greater => {
                    let (right, old) = Self::remove_at(&node.right, key);
                    if old.is_none() {
                        return (link.clone(), None);
                    }
                    (
                        Self::balance(
                            node.key.clone(),
                            node.value.clone(),
                            node.left.clone(),
                            right,
                        ),
                        old,
                    )
                }
                std::cmp::Ordering::Equal => {
                    let old = Some(node.value.clone());
                    match (&node.left, &node.right) {
                        (None, r) => (r.clone(), old),
                        (l, None) => (l.clone(), old),
                        (l, Some(_)) => {
                            // Replace with the successor (min of right).
                            let (min_k, min_v) = Self::min_entry(&node.right);
                            let (right, _) = Self::remove_at(&node.right, min_k.borrow());
                            (Self::balance(min_k, min_v, l.clone(), right), old)
                        }
                    }
                }
            },
        }
    }

    fn min_entry(link: &Link<K, V>) -> (K, V) {
        let mut cur = link.as_ref().expect("min of non-empty subtree");
        while let Some(left) = &cur.left {
            cur = left;
        }
        (cur.key.clone(), cur.value.clone())
    }

    /// Rebuilds a node, restoring the AVL balance invariant.
    fn balance(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
        let hl = height(&left);
        let hr = height(&right);
        if hl > hr + 1 {
            // Left-heavy.
            let l = left.expect("left-heavy implies left child");
            if height(&l.left) >= height(&l.right) {
                // Single right rotation.
                let new_right = mk(key, value, l.right.clone(), right);
                mk(l.key.clone(), l.value.clone(), l.left.clone(), new_right)
            } else {
                // Left-right double rotation.
                let lr = l.right.as_ref().expect("LR rotation has pivot");
                let new_left = mk(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    lr.left.clone(),
                );
                let new_right = mk(key, value, lr.right.clone(), right);
                mk(lr.key.clone(), lr.value.clone(), new_left, new_right)
            }
        } else if hr > hl + 1 {
            // Right-heavy (mirror).
            let r = right.expect("right-heavy implies right child");
            if height(&r.right) >= height(&r.left) {
                let new_left = mk(key, value, left, r.left.clone());
                mk(r.key.clone(), r.value.clone(), new_left, r.right.clone())
            } else {
                let rl = r.left.as_ref().expect("RL rotation has pivot");
                let new_left = mk(key, value, left, rl.left.clone());
                let new_right = mk(
                    r.key.clone(),
                    r.value.clone(),
                    rl.right.clone(),
                    r.right.clone(),
                );
                mk(rl.key.clone(), rl.value.clone(), new_left, new_right)
            }
        } else {
            mk(key, value, left, right)
        }
    }

    /// Iterates over entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        push_left(&self.root, &mut stack);
        Iter { stack }
    }

    /// Iterates over entries with keys `>= lower`, in ascending order.
    /// O(log n) to position, then O(1) amortized per step.
    pub fn iter_from<Q>(&self, lower: &Q) -> Iter<'_, K, V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut stack = Vec::new();
        let mut link = &self.root;
        while let Some(node) = link {
            match lower.cmp(node.key.borrow()) {
                std::cmp::Ordering::Less => {
                    stack.push(node.as_ref());
                    link = &node.left;
                }
                std::cmp::Ordering::Equal => {
                    stack.push(node.as_ref());
                    break;
                }
                std::cmp::Ordering::Greater => link = &node.right,
            }
        }
        Iter { stack }
    }

    /// The keys, in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// The values, in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

fn push_left<'a, K, V>(mut link: &'a Link<K, V>, stack: &mut Vec<&'a Node<K, V>>) {
    while let Some(node) = link {
        stack.push(node);
        link = &node.left;
    }
}

/// In-order iterator over a [`PersistentMap`], created by
/// [`PersistentMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        push_left(&node.right, &mut self.stack);
        Some((&node.key, &node.value))
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PersistentMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PersistentMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Ord + Clone, V: Clone> Extend<(K, V)> for PersistentMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: Ord + Clone + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PersistentMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> PartialEq for PersistentMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K: Ord + Clone, V: Clone + Eq> Eq for PersistentMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_avl<K: Ord + Clone, V: Clone>(link: &Link<K, V>) -> u8 {
        match link {
            None => 0,
            Some(n) => {
                let hl = check_avl(&n.left);
                let hr = check_avl(&n.right);
                assert!(hl.abs_diff(hr) <= 1, "AVL invariant violated");
                assert_eq!(n.height, 1 + hl.max(hr), "height cache wrong");
                assert_eq!(
                    n.size,
                    1 + size(&n.left) + size(&n.right),
                    "size cache wrong"
                );
                n.height
            }
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut m = PersistentMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(2, "B"), Some("b"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&2), Some(&"B"));
        assert_eq!(m.remove(&2), Some("B"));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.len(), 2);
        check_avl(&m.root);
    }

    #[test]
    fn snapshot_isolation() {
        let mut m: PersistentMap<i32, i32> = (0..100).map(|i| (i, i)).collect();
        let snap = m.clone();
        for i in 0..100 {
            m.insert(i, i * 10);
        }
        m.remove(&50);
        for i in 0..100 {
            assert_eq!(snap.get(&i), Some(&i), "snapshot must be unchanged");
        }
        assert_eq!(m.get(&50), None);
        assert_eq!(m.get(&3), Some(&30));
    }

    #[test]
    fn balance_under_ascending_inserts() {
        let m: PersistentMap<i32, ()> = (0..1000).map(|i| (i, ())).collect();
        check_avl(&m.root);
        assert!(height(&m.root) <= 15, "AVL height must be logarithmic");
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn balance_under_descending_inserts_and_removes() {
        let mut m: PersistentMap<i32, ()> = (0..1000).rev().map(|i| (i, ())).collect();
        check_avl(&m.root);
        for i in (0..1000).step_by(2) {
            assert_eq!(m.remove(&i), Some(()));
        }
        check_avl(&m.root);
        assert_eq!(m.len(), 500);
        for i in 0..1000 {
            assert_eq!(m.contains_key(&i), i % 2 == 1);
        }
    }

    #[test]
    fn iteration_is_sorted() {
        let m: PersistentMap<i32, i32> = [(5, 50), (1, 10), (3, 30), (2, 20), (4, 40)]
            .into_iter()
            .collect();
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        let values: Vec<i32> = m.values().copied().collect();
        assert_eq!(values, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn borrowed_key_lookup() {
        let mut m = PersistentMap::new();
        m.insert(String::from("alpha"), 1);
        assert_eq!(m.get("alpha"), Some(&1));
        assert_eq!(m.remove("alpha"), Some(1));
    }

    #[test]
    fn equality_is_structural() {
        let a: PersistentMap<i32, i32> = [(1, 1), (2, 2)].into_iter().collect();
        let b: PersistentMap<i32, i32> = [(2, 2), (1, 1)].into_iter().collect();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.insert(3, 3);
        assert_ne!(a, c);
    }

    #[test]
    fn remove_from_empty() {
        let mut m: PersistentMap<i32, i32> = PersistentMap::new();
        assert_eq!(m.remove(&1), None);
    }

    #[test]
    fn many_versions_coexist() {
        let mut versions = Vec::new();
        let mut m = PersistentMap::new();
        for i in 0..50 {
            m.insert(i, i);
            versions.push(m.clone());
        }
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(v.len(), i + 1);
            assert_eq!(v.get(&(i as i32)), Some(&(i as i32)));
            assert_eq!(v.get(&(i as i32 + 1)), None);
        }
    }

    #[test]
    fn iter_from_starts_at_lower_bound() {
        let m: PersistentMap<i32, i32> = (0..100).step_by(2).map(|i| (i, i)).collect();
        // Exact hit.
        let keys: Vec<i32> = m.iter_from(&10).map(|(k, _)| *k).collect();
        assert_eq!(keys.first(), Some(&10));
        assert_eq!(keys.len(), 45);
        // Between keys.
        let keys: Vec<i32> = m.iter_from(&11).map(|(k, _)| *k).collect();
        assert_eq!(keys.first(), Some(&12));
        // Before everything / after everything.
        assert_eq!(m.iter_from(&-5).count(), 50);
        assert_eq!(m.iter_from(&99).count(), 0);
        // Order is preserved.
        let keys: Vec<i32> = m.iter_from(&40).map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn debug_format() {
        let m: PersistentMap<i32, i32> = [(1, 10)].into_iter().collect();
        assert_eq!(format!("{m:?}"), "{1: 10}");
    }
}
