//! Deterministic fault injection for the JANUS runtime.
//!
//! Robustness claims ("a panicking task cannot take the run down",
//! "retry budgets guarantee progress", "ordered successors never hang
//! behind a failed predecessor") are only trustworthy if the failure
//! paths can be exercised *deterministically*: the same fault plan must
//! inject the same faults at the same sites on every run, regardless of
//! thread interleaving. This crate provides that plan:
//!
//! * [`FaultPlan`] — either a *seeded* plan (`seed × rate`, every
//!   injection decision a pure function of `(seed, kind, subject,
//!   attempt)`) or an *explicit* plan (a finite site list, for
//!   regression tests that need one precise fault).
//! * [`FaultKind`] — the five injection points threaded through the
//!   runtime: task-body panics and forced validation conflicts and
//!   commit-stall delays (`janus-core`), forced commutativity-cache
//!   misses (`janus-detect`), and deterministic crash points in the
//!   durable commit journal (`janus-wal`), addressed per [`CrashSite`].
//! * [`FaultStats`] — monotone injection counters implementing
//!   [`janus_obs::Snapshot`], so chaos runs surface `faults_injected`
//!   through the same metrics registry as every other subsystem.
//!
//! The plan is consulted behind an `Option` exactly like the lifecycle
//! recorder: with no plan attached, every injection site is a single
//! branch on `None` — nothing is hashed, counted or allocated.
//!
//! Seeded plans bound injection by attempt ([`FaultPlan::max_attempt`]):
//! past the bound no site fires, so even a rate-1.0 plan cannot starve
//! a task forever — the "no configuration hangs" guarantee the chaos
//! suite asserts. Explicit site lists are exempt (each site names one
//! `(kind, subject, attempt)` and fires exactly there).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// The injection points the runtime threads a plan through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Panic inside the task body (exercises `PanicPolicy`). Subject:
    /// the 1-based task id.
    TaskPanic,
    /// Force the validation verdict to "conflict" even though the
    /// detector passed the attempt (exercises retry budgets and
    /// escalation). Subject: the 1-based task id.
    ForcedConflict,
    /// Delay the attempt just before it takes the commit write lock
    /// (exercises the commit-clock watchdog and ordered waiters).
    /// Subject: the 1-based task id.
    CommitStall,
    /// Force a commutativity-cache miss so the write-set fallback
    /// decides the verdict (exercises degraded detection). Subject:
    /// [`stable_key`] of the location class label.
    CacheMiss,
    /// Kill the process model at a durability boundary in the commit
    /// journal (exercises crash recovery). Subject: the commit ticket
    /// being journaled; attempt: the [`CrashSite`] being crossed.
    CrashPoint,
}

impl FaultKind {
    /// All kinds, in a stable order (the per-kind counter layout).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TaskPanic,
        FaultKind::ForcedConflict,
        FaultKind::CommitStall,
        FaultKind::CacheMiss,
        FaultKind::CrashPoint,
    ];

    /// A short lower-case label ("panic", "conflict", "stall",
    /// "cache-miss", "crash").
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "panic",
            FaultKind::ForcedConflict => "conflict",
            FaultKind::CommitStall => "stall",
            FaultKind::CacheMiss => "cache-miss",
            FaultKind::CrashPoint => "crash",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::TaskPanic => 0,
            FaultKind::ForcedConflict => 1,
            FaultKind::CommitStall => 2,
            FaultKind::CacheMiss => 3,
            FaultKind::CrashPoint => 4,
        }
    }
}

/// The durability boundaries a [`FaultKind::CrashPoint`] site can kill
/// at, encoded into the site's `attempt` coordinate ([`CrashSite::attempt`])
/// so explicit plans address one boundary of one commit precisely.
///
/// The three sites bracket the journal append: before the record exists
/// anywhere, after it is buffered but before it is forced to disk (the
/// group-commit window — a crash here models a torn tail), and after
/// the fsync returns (the record must survive recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashSite {
    /// Before the record is appended: the commit is lost entirely.
    PreAppend,
    /// After the append, before the fsync: the record may be torn or
    /// missing on recovery, but never half-applied.
    PostAppendPreFsync,
    /// After the fsync returned: recovery must replay the record.
    PostFsync,
}

impl CrashSite {
    /// All sites, in append order.
    pub const ALL: [CrashSite; 3] = [
        CrashSite::PreAppend,
        CrashSite::PostAppendPreFsync,
        CrashSite::PostFsync,
    ];

    /// The site's `attempt` coordinate in a [`FaultSite`] /
    /// [`FaultPlan::should_inject`] call.
    pub fn attempt(self) -> u32 {
        match self {
            CrashSite::PreAppend => 0,
            CrashSite::PostAppendPreFsync => 1,
            CrashSite::PostFsync => 2,
        }
    }

    /// A short label ("pre-append", "pre-fsync", "post-fsync").
    pub fn label(self) -> &'static str {
        match self {
            CrashSite::PreAppend => "pre-append",
            CrashSite::PostAppendPreFsync => "pre-fsync",
            CrashSite::PostFsync => "post-fsync",
        }
    }
}

/// One explicit injection site: `kind` fires for `subject` on exactly
/// attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultSite {
    /// Which injection point fires.
    pub kind: FaultKind,
    /// The site's subject (task id, or [`stable_key`] of a class label
    /// for [`FaultKind::CacheMiss`]).
    pub subject: u64,
    /// The 0-based attempt the site fires on.
    pub attempt: u32,
}

/// How a plan decides.
#[derive(Debug)]
enum Mode {
    /// Pseudo-random: fire iff `mix(seed, kind, subject, attempt)`
    /// lands below the rate threshold (53-bit fixed point).
    Seeded { seed: u64, threshold: u64 },
    /// Explicit: fire iff the site is listed (sorted for binary search).
    Sites(Vec<FaultSite>),
}

/// Monotone injection counters, shared by every thread consulting the
/// plan. Implements [`janus_obs::Snapshot`] (source `"fault"`).
#[derive(Debug, Default)]
pub struct FaultStats {
    by_kind: [AtomicU64; 5],
}

impl FaultStats {
    /// Total faults injected, across all kinds.
    pub fn injected(&self) -> u64 {
        self.by_kind.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Faults injected for one kind.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.by_kind[kind.index()].load(Ordering::Relaxed)
    }
}

impl janus_obs::Snapshot for FaultStats {
    fn source(&self) -> &'static str {
        "fault"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut out = vec![("faults_injected".to_string(), self.injected())];
        for kind in FaultKind::ALL {
            out.push((
                format!("injected_{}", kind.label().replace('-', "_")),
                self.injected_of(kind),
            ));
        }
        out
    }
}

/// A deterministic fault-injection plan.
///
/// Decisions are pure: [`FaultPlan::decide`] depends only on the plan's
/// configuration and the `(kind, subject, attempt)` triple, never on
/// time, thread identity or interleaving — so the *set* of injected
/// sites is identical across runs with the same plan, even though the
/// order the runtime visits them in may vary.
#[derive(Debug)]
pub struct FaultPlan {
    mode: Mode,
    max_attempt: u32,
    stats: FaultStats,
}

impl FaultPlan {
    /// The default injection bound for seeded plans: no site fires at
    /// attempt 3 or later, so retries always drain.
    pub const DEFAULT_MAX_ATTEMPT: u32 = 3;

    /// The default injection rate for chaos runs that pick a seed but
    /// no rate: one site in twenty fires.
    pub const DEFAULT_RATE: f64 = 0.05;

    /// A seeded plan: each `(kind, subject, attempt)` site fires
    /// independently with probability `rate` (clamped to `[0, 1]`),
    /// decided by a pure hash of the seed and the triple.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // 53-bit fixed point: compare the hash's top 53 bits against
        // rate * 2^53, so rate 1.0 fires always and 0.0 never.
        let threshold = (rate * (1u64 << 53) as f64) as u64;
        FaultPlan {
            mode: Mode::Seeded { seed, threshold },
            max_attempt: Self::DEFAULT_MAX_ATTEMPT,
            stats: FaultStats::default(),
        }
    }

    /// An explicit plan firing exactly at the listed sites (duplicates
    /// are collapsed). Sites are exempt from the attempt bound: each
    /// names its own attempt.
    pub fn from_sites(mut sites: Vec<FaultSite>) -> Self {
        sites.sort_unstable();
        sites.dedup();
        FaultPlan {
            mode: Mode::Sites(sites),
            max_attempt: Self::DEFAULT_MAX_ATTEMPT,
            stats: FaultStats::default(),
        }
    }

    /// Overrides the seeded-plan injection bound: no seeded site fires
    /// at `attempt >= bound`. `bound = 0` disables seeded injection
    /// entirely.
    pub fn max_attempt(mut self, bound: u32) -> Self {
        self.max_attempt = bound;
        self
    }

    /// The pure injection decision for one site. No side effects; the
    /// same plan configuration and triple always agree.
    pub fn decide(&self, kind: FaultKind, subject: u64, attempt: u32) -> bool {
        match &self.mode {
            Mode::Seeded { seed, threshold } => {
                attempt < self.max_attempt && site_hash(*seed, kind, subject, attempt) < *threshold
            }
            Mode::Sites(sites) => sites
                .binary_search(&FaultSite {
                    kind,
                    subject,
                    attempt,
                })
                .is_ok(),
        }
    }

    /// [`FaultPlan::decide`], counting the injection when it fires.
    /// This is what the runtime's injection sites call.
    pub fn should_inject(&self, kind: FaultKind, subject: u64, attempt: u32) -> bool {
        let fire = self.decide(kind, subject, attempt);
        if fire {
            self.stats.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// The stall length for a [`FaultKind::CommitStall`] site, in
    /// microseconds — deterministic in the site, bounded to `[50, 2000]`
    /// so stalls are observable (to the watchdog) but never hang-like.
    pub fn stall_micros(&self, subject: u64, attempt: u32) -> u64 {
        let seed = match &self.mode {
            Mode::Seeded { seed, .. } => *seed,
            Mode::Sites(_) => 0,
        };
        50 + site_hash(seed, FaultKind::CommitStall, subject, attempt) % 1951
    }

    /// The plan's injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

/// A pure mix of one injection site into a 53-bit value, compared
/// against the rate threshold. The splitmix64 finalizer over a
/// golden-ratio combination of the coordinates — the same recipe as
/// `janus_sched`'s deterministic backoff schedule.
fn site_hash(seed: u64, kind: FaultKind, subject: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ (kind.index() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)
        ^ subject.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ u64::from(attempt).wrapping_mul(0xd6e8_feb8_6659_fd93);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) >> 11
}

/// A stable 64-bit key for string subjects (FNV-1a), used to address
/// [`FaultKind::CacheMiss`] sites by location-class label.
pub fn stable_key(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_obs::Snapshot as _;

    /// Every injection decision a plan makes over a site matrix, in a
    /// canonical order — the "injected-fault site sequence" of the
    /// determinism guarantee.
    fn decision_sequence(plan: &FaultPlan) -> Vec<(FaultKind, u64, u32, bool)> {
        let mut out = Vec::new();
        for kind in FaultKind::ALL {
            for subject in 0..64 {
                for attempt in 0..8 {
                    out.push((kind, subject, attempt, plan.decide(kind, subject, attempt)));
                }
            }
        }
        out
    }

    #[test]
    fn same_seed_same_site_sequence() {
        let a = FaultPlan::seeded(42, 0.2);
        let b = FaultPlan::seeded(42, 0.2);
        assert_eq!(decision_sequence(&a), decision_sequence(&b));
        // And the sequence is non-trivial at this rate.
        assert!(decision_sequence(&a).iter().any(|&(_, _, _, f)| f));
        assert!(decision_sequence(&a).iter().any(|&(_, _, _, f)| !f));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::seeded(1, 0.2);
        let b = FaultPlan::seeded(2, 0.2);
        assert_ne!(decision_sequence(&a), decision_sequence(&b));
    }

    #[test]
    fn rate_extremes() {
        let never = FaultPlan::seeded(7, 0.0);
        let always = FaultPlan::seeded(7, 1.0);
        for kind in FaultKind::ALL {
            for subject in 0..32 {
                assert!(!never.decide(kind, subject, 0));
                assert!(always.decide(kind, subject, 0), "rate 1.0 always fires");
            }
        }
        // NaN and out-of-range rates are defused, not propagated.
        assert!(!FaultPlan::seeded(7, f64::NAN).decide(FaultKind::TaskPanic, 1, 0));
        assert!(FaultPlan::seeded(7, 9.0).decide(FaultKind::TaskPanic, 1, 0));
    }

    #[test]
    fn seeded_injection_respects_the_attempt_bound() {
        let plan = FaultPlan::seeded(3, 1.0).max_attempt(2);
        assert!(plan.decide(FaultKind::ForcedConflict, 5, 0));
        assert!(plan.decide(FaultKind::ForcedConflict, 5, 1));
        assert!(
            !plan.decide(FaultKind::ForcedConflict, 5, 2),
            "no seeded site fires at or past the bound — retries drain"
        );
        assert!(!FaultPlan::seeded(3, 1.0)
            .max_attempt(0)
            .decide(FaultKind::TaskPanic, 1, 0));
    }

    #[test]
    fn explicit_sites_fire_exactly_as_listed() {
        let plan = FaultPlan::from_sites(vec![
            FaultSite {
                kind: FaultKind::TaskPanic,
                subject: 3,
                attempt: 0,
            },
            FaultSite {
                kind: FaultKind::ForcedConflict,
                subject: 2,
                attempt: 5,
            },
        ]);
        assert!(plan.decide(FaultKind::TaskPanic, 3, 0));
        assert!(!plan.decide(FaultKind::TaskPanic, 3, 1));
        assert!(!plan.decide(FaultKind::TaskPanic, 2, 0));
        assert!(
            plan.decide(FaultKind::ForcedConflict, 2, 5),
            "explicit sites are exempt from the attempt bound"
        );
    }

    #[test]
    fn should_inject_counts_per_kind() {
        let plan = FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CommitStall,
            subject: 1,
            attempt: 0,
        }]);
        assert!(plan.should_inject(FaultKind::CommitStall, 1, 0));
        assert!(!plan.should_inject(FaultKind::CommitStall, 1, 1));
        assert_eq!(plan.stats().injected(), 1);
        assert_eq!(plan.stats().injected_of(FaultKind::CommitStall), 1);
        assert_eq!(plan.stats().injected_of(FaultKind::TaskPanic), 0);
        let counters = plan.stats().counters();
        assert_eq!(plan.stats().source(), "fault");
        assert!(counters.contains(&("faults_injected".to_string(), 1)));
        assert!(counters.contains(&("injected_stall".to_string(), 1)));
    }

    #[test]
    fn stall_lengths_are_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(11, 1.0);
        for attempt in 0..4 {
            let a = plan.stall_micros(9, attempt);
            assert_eq!(a, plan.stall_micros(9, attempt));
            assert!((50..=2000).contains(&a), "stall {a}µs within bounds");
        }
    }

    #[test]
    fn crash_sites_address_one_boundary_of_one_commit() {
        // Kill commit 7 exactly in the group-commit window.
        let plan = FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CrashPoint,
            subject: 7,
            attempt: CrashSite::PostAppendPreFsync.attempt(),
        }]);
        for site in CrashSite::ALL {
            for seq in [6, 7, 8] {
                let fires = plan.should_inject(FaultKind::CrashPoint, seq, site.attempt());
                assert_eq!(
                    fires,
                    seq == 7 && site == CrashSite::PostAppendPreFsync,
                    "seq={seq} site={}",
                    site.label()
                );
            }
        }
        assert_eq!(plan.stats().injected_of(FaultKind::CrashPoint), 1);
        assert!(plan
            .stats()
            .counters()
            .contains(&("injected_crash".to_string(), 1)));
        // The attempt coordinates are dense and ordered like the append.
        let attempts: Vec<u32> = CrashSite::ALL.iter().map(|s| s.attempt()).collect();
        assert_eq!(attempts, vec![0, 1, 2]);
    }

    #[test]
    fn stable_key_is_stable_and_discriminating() {
        assert_eq!(stable_key("acct"), stable_key("acct"));
        assert_ne!(stable_key("acct"), stable_key("queue"));
        assert_ne!(stable_key(""), stable_key("a"));
    }
}
