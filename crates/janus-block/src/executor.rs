//! The block executor: batches in, [`BlockOutcome`]s out, with up to
//! two batches in flight.
//!
//! Each submitted block runs as one `run_batch` on a shared
//! [`Session`], dispatched through the warm [`WorkerPool`] by one of
//! `depth` persistent *conductor* threads fed over a channel (no
//! per-block thread spawn; reuse shows up as `blocks_conducted /
//! conductors` in [`PoolStats`]). In [`PipelineMode::Pipelined`],
//! block N+1's
//! speculative execution overlaps block N's validation and commit; a
//! [`CommitGate`](janus_core::CommitGate) linking the two trackers
//! keeps the equivalent serial order at "all of N before any
//! conflicting part of N+1" (or exact submission order under
//! `Janus::ordered`). In [`PipelineMode::Barrier`] blocks run strictly
//! one at a time — the comparison baseline.
//!
//! Failure is block-scoped: a poison panic or watchdog fire inside a
//! block is caught at the conductor and surfaces as
//! [`BlockStatus::Failed`]; the session, the pool and every other
//! block stay live.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use janus_core::{BatchOutcome, CommitGate, Janus, Session, Store, Task};

use crate::batch::{BatchTracker, OrderedLink, PipelinedLink};
use crate::pool::{PoolStats, WorkerPool};
use crate::stats::BlockStats;

/// How block boundaries are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// A block starts only after its predecessor fully finished.
    Barrier,
    /// Up to two blocks in flight; commits are fenced by the
    /// footprint gate (or a full commit barrier under ordered runs).
    Pipelined,
}

impl PipelineMode {
    fn depth(self) -> usize {
        match self {
            PipelineMode::Barrier => 1,
            PipelineMode::Pipelined => 2,
        }
    }
}

/// Terminal state of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// The block drained: every transaction committed or was isolated.
    Committed,
    /// The block was lost to a poison panic or a watchdog fire.
    /// Transactions that had already committed keep their effects.
    Failed,
}

/// The result of one block.
#[derive(Debug)]
pub struct BlockOutcome {
    /// 1-based block sequence number, in submission order.
    pub seq: u64,
    /// Transactions the block was submitted with.
    pub tasks: usize,
    /// Whether the block drained or was lost.
    pub status: BlockStatus,
    /// The failure reason, for [`BlockStatus::Failed`].
    pub error: Option<String>,
    /// The underlying batch statistics. `None` only when the batch
    /// unwound before producing them (poison panic).
    pub batch: Option<BatchOutcome>,
    /// Wall time from dispatch to completion.
    pub latency: Duration,
}

impl BlockOutcome {
    /// Transactions this block committed (0 when unknown after a
    /// poison unwind).
    pub fn commits(&self) -> u64 {
        self.batch.as_ref().map_or(0, |b| b.stats.commits)
    }
}

/// Result of [`BlockExecutor::submit`]: the sequence number assigned to
/// the new block, plus any older block retired to make room.
#[derive(Debug)]
pub struct Submitted {
    /// Sequence number of the just-submitted block.
    pub seq: u64,
    /// Blocks that completed while making room (in submission order).
    pub retired: Vec<BlockOutcome>,
}

struct Inflight {
    /// Delivers the outcome once a conductor finishes the block.
    rx: mpsc::Receiver<BlockOutcome>,
}

/// A block's unit of conductor work: runs the batch, then delivers the
/// outcome on the block's private channel.
type ConductJob = Box<dyn FnOnce() + Send>;

/// The persistent conductor crew: `depth` long-lived threads pulling
/// [`ConductJob`]s off one shared channel. Replaces the per-block
/// `janus-block-{seq}` spawn — a streamed service conducts thousands of
/// blocks on the same `depth` threads, and the reuse is visible as
/// `blocks_conducted / conductors`.
struct Conductors {
    /// `None` only during [`Drop`], which closes the channel to let the
    /// threads drain and exit.
    tx: Option<mpsc::Sender<ConductJob>>,
    threads: Vec<JoinHandle<()>>,
    conducted: Arc<AtomicU64>,
}

impl Conductors {
    fn new(depth: usize) -> Self {
        let (tx, rx) = mpsc::channel::<ConductJob>();
        let rx = Arc::new(Mutex::new(rx));
        let conducted = Arc::new(AtomicU64::new(0));
        let threads = (0..depth)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let conducted = Arc::clone(&conducted);
                std::thread::Builder::new()
                    .name(format!("janus-conductor-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while waiting for
                        // the next job, never while conducting it, so
                        // sibling conductors stay schedulable.
                        let job = {
                            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        match job {
                            Ok(job) => {
                                conducted.fetch_add(1, Ordering::Relaxed);
                                job();
                            }
                            // Channel closed: the executor dropped us.
                            Err(_) => return,
                        }
                    })
                    .expect("spawn block conductor")
            })
            .collect();
        Conductors {
            tx: Some(tx),
            threads,
            conducted,
        }
    }

    fn submit(&self, job: ConductJob) {
        self.tx
            .as_ref()
            .expect("conductors live until drop")
            .send(job)
            .expect("a conductor is always listening");
    }

    fn count(&self) -> u64 {
        self.threads.len() as u64
    }

    fn conducted(&self) -> u64 {
        self.conducted.load(Ordering::Relaxed)
    }
}

impl Drop for Conductors {
    fn drop(&mut self) {
        drop(self.tx.take());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A long-lived executor: one [`Session`], one warm [`WorkerPool`],
/// blocks streamed through [`BlockExecutor::submit`] /
/// [`BlockExecutor::execute_blocks`].
pub struct BlockExecutor {
    janus: Janus,
    session: Arc<Session>,
    pool: Arc<WorkerPool>,
    mode: PipelineMode,
    stats: Arc<BlockStats>,
    seq: u64,
    /// Commit-clock offset for recovered services: the session counts
    /// from 1, [`BlockExecutor::commit_seq`] reports the global
    /// sequence `base + session`.
    seq_base: u64,
    prev: Option<Arc<BatchTracker>>,
    /// Every tracker ever linked, for overlap accounting.
    trackers: Vec<Arc<BatchTracker>>,
    conductors: Conductors,
    inflight: VecDeque<Inflight>,
    /// First submit, for the stream-wall half of the overlap ratio.
    first_submit: Option<Instant>,
    /// Stream wall accumulated up to the last drain.
    wall: Duration,
}

impl BlockExecutor {
    /// An executor over `store`, with a pool sized for the runtime's
    /// thread count at the mode's pipeline depth.
    pub fn new(janus: Janus, store: Store, mode: PipelineMode) -> Self {
        let lanes = mode.depth() * (janus.thread_count() + 1);
        let session = Arc::new(janus.open_session(store));
        BlockExecutor {
            session,
            pool: Arc::new(WorkerPool::new(lanes)),
            mode,
            stats: Arc::new(BlockStats::default()),
            seq: 0,
            seq_base: 0,
            prev: None,
            trackers: Vec::new(),
            conductors: Conductors::new(mode.depth()),
            inflight: VecDeque::new(),
            first_submit: None,
            wall: Duration::ZERO,
            janus,
        }
    }

    /// Offsets the reported commit clock by a recovered base: a service
    /// that replayed `base` journaled tickets on boot reports
    /// continuations as `base + 1, base + 2, …`, keeping one dense
    /// global sequence across restarts.
    pub fn with_seq_base(mut self, base: u64) -> Self {
        self.seq_base = base;
        self
    }

    /// The pipeline mode in use.
    pub fn mode(&self) -> PipelineMode {
        self.mode
    }

    /// The shared pipeline statistics.
    pub fn stats(&self) -> &Arc<BlockStats> {
        &self.stats
    }

    /// The warm pool (for its thread-reuse counters).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Pool counters with the executor's conductor-reuse figures filled
    /// in: `blocks_conducted / conductors` is how many blocks each
    /// persistent conductor thread has driven.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            conductors: self.conductors.count(),
            blocks_conducted: self.conductors.conducted(),
            ..self.pool.stats()
        }
    }

    /// A read snapshot of the session's current store. Taken without
    /// quiescing in-flight blocks: each shard is cut at a consistent
    /// committed prefix.
    pub fn store_snapshot(&self) -> Store {
        self.session.store()
    }

    /// Committed transactions so far, per the session's commit clock —
    /// global (offset by any recovered base, see
    /// [`BlockExecutor::with_seq_base`]).
    pub fn commit_seq(&self) -> u64 {
        self.seq_base + self.session.commit_seq()
    }

    /// Blocks currently executing.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Total commits the gate released while a predecessor still ran.
    pub fn overlapped_commits(&self) -> u64 {
        self.trackers.iter().map(|t| t.overlapped_commits()).sum()
    }

    /// Submits one block. Blocks (joining the oldest in-flight batch)
    /// when the pipeline is at depth — that join is the executor's
    /// intrinsic backpressure.
    pub fn submit(&mut self, tasks: Vec<Task>) -> Submitted {
        self.first_submit.get_or_insert_with(Instant::now);
        self.seq += 1;
        let seq = self.seq;
        let mut retired = Vec::new();
        while self.inflight.len() >= self.mode.depth() {
            retired.push(self.retire_oldest());
        }

        let tracker = BatchTracker::new(tasks.len());
        let gate: Option<Arc<dyn CommitGate>> = match (self.mode, self.prev.take()) {
            (PipelineMode::Pipelined, Some(prev)) if !prev.is_done() => {
                Some(if self.janus.is_ordered() {
                    Arc::new(OrderedLink::new(prev, Arc::clone(&tracker)))
                } else {
                    Arc::new(PipelinedLink::new(prev, Arc::clone(&tracker)))
                })
            }
            // Barrier mode, first block, or a predecessor that already
            // finished: nothing to fence against.
            _ => None,
        };
        self.prev = Some(Arc::clone(&tracker));
        self.trackers.push(Arc::clone(&tracker));

        self.stats.blocks_submitted.fetch_add(1, Ordering::Relaxed);
        self.stats.block_size.lock().observe(tasks.len() as u64);

        let janus = self.janus.clone();
        let session = Arc::clone(&self.session);
        let pool = Arc::clone(&self.pool);
        let stats = Arc::clone(&self.stats);
        let (otx, orx) = mpsc::channel();
        // `conduct` takes the session/pool handles by value and drops
        // them before returning, so by the time the outcome is sent —
        // and thus by the time `finish` can observe the drained
        // pipeline — the conductor holds no session reference and
        // `Arc::try_unwrap` there stays sound.
        self.conductors.submit(Box::new(move || {
            let outcome = conduct(seq, janus, session, pool, tasks, gate, tracker, stats);
            let _ = otx.send(outcome);
        }));
        self.inflight.push_back(Inflight { rx: orx });
        Submitted { seq, retired }
    }

    /// Joins every in-flight block, returning their outcomes in
    /// submission order.
    pub fn drain(&mut self) -> Vec<BlockOutcome> {
        let mut out = Vec::with_capacity(self.inflight.len());
        while !self.inflight.is_empty() {
            out.push(self.retire_oldest());
        }
        if let Some(t0) = self.first_submit.take() {
            self.wall += t0.elapsed();
        }
        out
    }

    /// Runs one block to completion.
    pub fn execute_block(&mut self, tasks: Vec<Task>) -> BlockOutcome {
        let submitted = self.submit(tasks);
        let seq = submitted.seq;
        let mut all = submitted.retired;
        all.extend(self.drain());
        // `drain` retires in submission order; ours is the newest.
        let outcome = all.pop().expect("submitted block must retire");
        debug_assert_eq!(outcome.seq, seq);
        outcome
    }

    /// Runs a stream of blocks through the pipeline and returns every
    /// outcome in submission order.
    pub fn execute_blocks(&mut self, blocks: Vec<Vec<Task>>) -> Vec<BlockOutcome> {
        let mut out = Vec::with_capacity(blocks.len());
        for tasks in blocks {
            out.extend(self.submit(tasks).retired);
        }
        out.extend(self.drain());
        out
    }

    /// Stream wall time accumulated so far (first submit to last
    /// drain), in microseconds — the denominator of the overlap ratio.
    pub fn stream_wall_micros(&self) -> u64 {
        let live = self.first_submit.map_or(Duration::ZERO, |t0| t0.elapsed());
        (self.wall + live).as_micros() as u64
    }

    /// Drains the pipeline and closes the session, returning the final
    /// store and the per-shard commit-path report. Any outcomes still
    /// in flight are returned too.
    pub fn finish(mut self) -> (Store, janus_core::ShardReport, Vec<BlockOutcome>) {
        let tail = self.drain();
        self.stats
            .overlapped_commits
            .store(self.overlapped_commits(), Ordering::Relaxed);
        let session = Arc::try_unwrap(self.session)
            .unwrap_or_else(|_| unreachable!("drained pipeline holds the only session handle"));
        let (store, report) = session.finish();
        (store, report, tail)
    }

    fn retire_oldest(&mut self) -> BlockOutcome {
        let block = self.inflight.pop_front().expect("non-empty pipeline");
        // Conductors catch batch unwinds themselves; a recv error would
        // mean the conductor harness itself panicked.
        let outcome = block.rx.recv().expect("conductor delivers an outcome");
        self.stats
            .overlapped_commits
            .store(self.overlapped_commits(), Ordering::Relaxed);
        outcome
    }
}

/// One conductor run: drive a batch through the pool, complete the
/// tracker unconditionally, fold the result into the shared stats.
#[allow(clippy::too_many_arguments)]
fn conduct(
    seq: u64,
    janus: Janus,
    session: Arc<Session>,
    pool: Arc<WorkerPool>,
    tasks: Vec<Task>,
    gate: Option<Arc<dyn CommitGate>>,
    tracker: Arc<BatchTracker>,
    stats: Arc<BlockStats>,
) -> BlockOutcome {
    let n = tasks.len();
    let started = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        janus.run_batch(&session, tasks, &*pool, gate)
    }));
    // Complete before anything else: a successor block may be parked on
    // this tracker, and it must never wait on a failed predecessor.
    tracker.complete();
    let latency = started.elapsed();
    stats
        .busy_micros
        .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    stats.latency_us.lock().observe(latency.as_micros() as u64);

    let (status, error, batch) = match result {
        Ok(batch) if !batch.poisoned => (BlockStatus::Committed, None, Some(batch)),
        Ok(batch) => {
            let why = batch
                .watchdog_dumps
                .first()
                .map_or("batch poisoned", |_| "watchdog declared the batch hung");
            (BlockStatus::Failed, Some(why.to_string()), Some(batch))
        }
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            (BlockStatus::Failed, Some(msg), None)
        }
    };
    match status {
        BlockStatus::Committed => {
            stats.blocks_committed.fetch_add(1, Ordering::Relaxed);
        }
        BlockStatus::Failed => {
            stats.blocks_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(b) = &batch {
        stats
            .txns_committed
            .fetch_add(b.stats.commits, Ordering::Relaxed);
        stats
            .txns_retried
            .fetch_add(b.stats.retries, Ordering::Relaxed);
        stats
            .txns_failed
            .fetch_add(b.failed.len() as u64, Ordering::Relaxed);
        stats
            .gate_waits
            .fetch_add(b.stats.commit_gate_waits, Ordering::Relaxed);
    }
    BlockOutcome {
        seq,
        tasks: n,
        status,
        error,
        batch,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::PanicPolicy;
    use janus_detect::SequenceDetector;
    use janus_relational::Value;

    fn janus(threads: usize) -> Janus {
        Janus::new(Arc::new(SequenceDetector::new())).threads(threads)
    }

    fn counter_tasks(loc: janus_log::LocId, n: usize, delta: i64) -> Vec<Task> {
        (0..n)
            .map(|_| Task::new(move |tx| tx.add(loc, delta)))
            .collect()
    }

    #[test]
    fn blocks_accumulate_on_one_session() {
        let mut store = Store::new();
        let acct = store.alloc("acct", Value::int(0));
        let mut exec = BlockExecutor::new(janus(2), store, PipelineMode::Pipelined);
        let outcomes = exec.execute_blocks(vec![
            counter_tasks(acct, 4, 1),
            counter_tasks(acct, 4, 1),
            counter_tasks(acct, 4, 1),
        ]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(
            outcomes.iter().map(|o| o.seq).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert!(outcomes.iter().all(|o| o.status == BlockStatus::Committed));
        assert_eq!(outcomes.iter().map(BlockOutcome::commits).sum::<u64>(), 12);
        let (store, report, tail) = exec.finish();
        assert!(tail.is_empty());
        assert_eq!(store.value(acct), Some(&Value::int(12)));
        // One-location tasks touch exactly one shard per commit.
        assert_eq!(report.0.iter().map(|s| s.commits).sum::<u64>(), 12);
    }

    #[test]
    fn barrier_mode_runs_blocks_strictly_in_turn() {
        let mut store = Store::new();
        let acct = store.alloc("acct", Value::int(0));
        let mut exec = BlockExecutor::new(janus(2), store, PipelineMode::Barrier);
        for _ in 0..3 {
            let o = exec.execute_block(counter_tasks(acct, 3, 1));
            assert_eq!(o.status, BlockStatus::Committed);
            assert!(exec.inflight() == 0);
        }
        assert_eq!(exec.overlapped_commits(), 0, "no gate, no overlap");
        let (store, _, _) = exec.finish();
        assert_eq!(store.value(acct), Some(&Value::int(9)));
    }

    #[test]
    fn disjoint_blocks_overlap_under_pipelining() {
        // Two blocks over disjoint accounts: the second's commits can
        // all pass the gate while the first still runs.
        let mut store = Store::new();
        let a = store.alloc("a", Value::int(0));
        let b = store.alloc("b", Value::int(0));
        let mut exec = BlockExecutor::new(janus(2), store, PipelineMode::Pipelined);
        let outcomes = exec.execute_blocks(vec![counter_tasks(a, 6, 1), counter_tasks(b, 6, 1)]);
        assert!(outcomes.iter().all(|o| o.status == BlockStatus::Committed));
        let (store, _, _) = exec.finish();
        assert_eq!(store.value(a), Some(&Value::int(6)));
        assert_eq!(store.value(b), Some(&Value::int(6)));
    }

    #[test]
    fn poisoned_block_fails_alone_and_the_pipeline_survives() {
        // Satellite #1 regression: a Poison-policy panic inside block 2
        // must surface as BlockStatus::Failed for that block only; the
        // session, pool and subsequent blocks stay live.
        let mut store = Store::new();
        let acct = store.alloc("acct", Value::int(0));
        let mut exec = BlockExecutor::new(
            janus(2).panic_policy(PanicPolicy::Poison),
            store,
            PipelineMode::Pipelined,
        );
        let good_before = exec.execute_block(counter_tasks(acct, 3, 1));
        assert_eq!(good_before.status, BlockStatus::Committed);

        let bad: Vec<Task> = (0..3)
            .map(|i| {
                Task::new(move |tx| {
                    if i == 1 {
                        panic!("mid-batch failure");
                    }
                    tx.add(acct, 1);
                })
            })
            .collect();
        let failed = exec.execute_block(bad);
        assert_eq!(failed.status, BlockStatus::Failed);
        assert_eq!(failed.error.as_deref(), Some("mid-batch failure"));

        let good_after = exec.execute_block(counter_tasks(acct, 3, 1));
        assert_eq!(good_after.status, BlockStatus::Committed);
        assert_eq!(good_after.commits(), 3);

        let report = exec.stats().report(exec.stream_wall_micros());
        assert_eq!(report.blocks_committed, 2);
        assert_eq!(report.blocks_failed, 1);
        let (store, _, _) = exec.finish();
        // 3 before, 3 after, plus whatever the poisoned block committed
        // before dying (0..=2 of its tasks).
        let v = match store.value(acct) {
            Some(v) => v.as_int().expect("int"),
            None => panic!("acct present"),
        };
        assert!((6..=8).contains(&v), "got {v}");
    }

    #[test]
    fn pipelined_stream_reuses_pool_threads() {
        let mut store = Store::new();
        let acct = store.alloc("acct", Value::int(0));
        let mut exec = BlockExecutor::new(janus(2), store, PipelineMode::Pipelined);
        let blocks: Vec<Vec<Task>> = (0..6).map(|_| counter_tasks(acct, 4, 1)).collect();
        let outcomes = exec.execute_blocks(blocks);
        assert_eq!(outcomes.len(), 6);
        let pool = exec.pool_stats();
        assert_eq!(pool.dispatches, 6, "one pool dispatch per block");
        assert_eq!(pool.lanes, 6, "2 * (threads + 1) warm lanes");
        assert_eq!(pool.jobs_run, 12, "worker jobs only; no watchdog armed");
        assert_eq!(pool.conductors, 2, "pipeline depth, not one per block");
        assert_eq!(
            pool.blocks_conducted, 6,
            "every block on a reused conductor"
        );
    }

    #[test]
    fn barrier_mode_keeps_a_single_persistent_conductor() {
        let mut store = Store::new();
        let acct = store.alloc("acct", Value::int(0));
        let mut exec = BlockExecutor::new(janus(2), store, PipelineMode::Barrier);
        for _ in 0..4 {
            let o = exec.execute_block(counter_tasks(acct, 2, 1));
            assert_eq!(o.status, BlockStatus::Committed);
        }
        let pool = exec.pool_stats();
        assert_eq!(pool.conductors, 1);
        assert_eq!(pool.blocks_conducted, 4, "4x reuse of the one conductor");
        let (store, _, _) = exec.finish();
        assert_eq!(store.value(acct), Some(&Value::int(8)));
    }
}
