//! Block execution as a service: a pipelined block executor over a
//! long-lived JANUS [`Session`](janus_core::Session).
//!
//! The paper runs one task list to completion (`DOPARALLEL`). This
//! crate runs an unbounded *stream* of blocks — batches of transactions
//! arriving over time — against one persistent store:
//!
//! * a warm [`WorkerPool`] keeps worker threads alive across blocks and
//!   dispatches each `run_batch` through per-lane injection slots;
//! * [`BlockExecutor`] keeps up to two blocks in flight: block N+1
//!   executes speculatively while block N validates and commits, with
//!   a footprint-fingerprint [commit gate](crate::PipelinedLink)
//!   making the block boundary a commit barrier *only for conflicting
//!   footprints* (ordered runs degrade to a strict cross-block
//!   barrier, preserving exact submission order);
//! * [`AdmissionQueue`] bounds the number of queued blocks and sheds
//!   load explicitly instead of queueing without limit;
//! * failure is block-scoped: a poison panic or watchdog fire fails
//!   only its block ([`BlockStatus::Failed`]); the session, the pool
//!   and every other block keep running.
//!
//! The `janus-serve` binary wires these into a line-protocol service;
//! `bench_serve` measures sustained throughput pipelined vs. barrier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod batch;
mod executor;
mod pool;
mod stats;

pub use admission::{Admission, AdmissionQueue};
pub use batch::{BatchTracker, OrderedLink, PipelinedLink};
pub use executor::{BlockExecutor, BlockOutcome, BlockStatus, PipelineMode, Submitted};
pub use pool::{PoolStats, WorkerPool};
pub use stats::{BatchReport, BlockStats, ServeReport, ServeStats};
