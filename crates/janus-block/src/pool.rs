//! The persistent worker pool: warm threads reused across batches.
//!
//! One pool thread per *lane*. A batch reserves one lane per worker job
//! (all-or-nothing, so two pipelined batches can never deadlock on a
//! half-reservation), each lane runs exactly one job to completion
//! through its own injection slot, then returns itself to the free
//! list. The lane's thread never exits between batches — the
//! thread-reuse half of the ROADMAP's work-stealing refactor — and the
//! free list is a LIFO stack, so a steady barrier-mode caller gets the
//! same (cache-warm) lanes back batch after batch, while a pipelined
//! caller alternates between two lane sets.
//!
//! Uses `std::sync` primitives throughout: the pool needs a `Condvar`,
//! which the in-repo `parking_lot` shim does not provide.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use janus_core::{Job, JobExecutor};

/// Shared pool state: one injection slot per lane plus the free-lane
/// stack.
struct PoolShared {
    lanes: Vec<Lane>,
    /// Indices of lanes with no job in flight. LIFO: the most recently
    /// freed (warmest) lanes are handed out first.
    free: Mutex<Vec<usize>>,
    free_cv: Condvar,
    shutdown: AtomicBool,
    jobs_run: AtomicU64,
    dispatches: AtomicU64,
}

/// One lane's injection slot: the single job the lane's thread should
/// run next.
struct Lane {
    inbox: Mutex<Option<Job>>,
    cv: Condvar,
}

/// A persistent pool of worker threads implementing
/// [`JobExecutor`], so [`Janus::run_batch`](janus_core::Janus::run_batch)
/// dispatches onto warm threads instead of spawning fresh ones.
///
/// Dropping the pool shuts the threads down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `lanes` persistent threads. A pipelined block
    /// executor over `t`-thread batches needs `2 * (t + 1)` lanes (two
    /// batches in flight, one watchdog lane each); [`WorkerPool::for_pipeline`]
    /// computes that.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a pool needs at least one lane");
        let shared = Arc::new(PoolShared {
            lanes: (0..lanes)
                .map(|_| Lane {
                    inbox: Mutex::new(None),
                    cv: Condvar::new(),
                })
                .collect(),
            free: Mutex::new((0..lanes).rev().collect()),
            free_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
        });
        let threads = (0..lanes)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("janus-lane-{i}"))
                    .spawn(move || lane_loop(i, &shared))
                    .expect("spawn pool lane")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// A pool sized for a two-deep pipeline of `threads`-worker batches:
    /// `2 * (threads + 1)` lanes (each in-flight batch takes one lane
    /// per worker plus one for an armed watchdog).
    pub fn for_pipeline(threads: usize) -> Self {
        WorkerPool::new(2 * (threads + 1))
    }

    /// Number of lanes (persistent threads).
    pub fn lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Jobs completed and `run_jobs` calls served so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lanes: self.shared.lanes.len() as u64,
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            dispatches: self.shared.dispatches.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent threads in the pool.
    pub lanes: u64,
    /// Jobs completed across the pool's lifetime.
    pub jobs_run: u64,
    /// `run_jobs` calls (batch dispatches) served.
    pub dispatches: u64,
}

fn lane_loop(idx: usize, shared: &PoolShared) {
    loop {
        let job = {
            let lane = &shared.lanes[idx];
            let mut inbox = lane.inbox.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = inbox.take() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inbox = lane.cv.wait(inbox).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Jobs handed to the pool are pre-wrapped by `run_jobs`: they
        // catch their own unwinds, so a panicking batch job can never
        // kill a pool thread.
        job();
        // The lane frees itself only after its job completed, so a
        // reservation always gets idle threads.
        let mut free = shared.free.lock().unwrap_or_else(|e| e.into_inner());
        free.push(idx);
        drop(free);
        shared.free_cv.notify_all();
    }
}

impl JobExecutor for WorkerPool {
    fn run_jobs(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let n = jobs.len();
        assert!(
            n <= self.shared.lanes.len(),
            "batch needs {n} lanes but the pool has {}",
            self.shared.lanes.len()
        );
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        // All-or-nothing reservation: take every lane this batch needs
        // in one critical section, or wait. Partial reservations could
        // deadlock two concurrent batches against each other.
        let reserved: Vec<usize> = {
            let mut free = self.shared.free.lock().unwrap_or_else(|e| e.into_inner());
            while free.len() < n {
                free = self
                    .shared
                    .free_cv
                    .wait(free)
                    .unwrap_or_else(|e| e.into_inner());
            }
            let cut = free.len() - n;
            free.split_off(cut)
        };
        // Completion latch: remaining jobs + the first panic payload.
        type Latch = (
            Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
            Condvar,
        );
        let latch: Arc<Latch> = Arc::new((Mutex::new((n, None)), Condvar::new()));
        for (&lane_idx, job) in reserved.iter().zip(jobs) {
            let latch = Arc::clone(&latch);
            let shared = Arc::clone(&self.shared);
            let wrapped: Job = Box::new(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                // Count before releasing the latch so `stats()` read
                // after `run_jobs` returns is never stale.
                shared.jobs_run.fetch_add(1, Ordering::Relaxed);
                let (lock, cv) = &*latch;
                let mut state = lock.lock().unwrap_or_else(|e| e.into_inner());
                state.0 -= 1;
                if let Err(payload) = result {
                    state.1.get_or_insert(payload);
                }
                drop(state);
                cv.notify_all();
            });
            let lane = &self.shared.lanes[lane_idx];
            *lane.inbox.lock().unwrap_or_else(|e| e.into_inner()) = Some(wrapped);
            lane.cv.notify_one();
        }
        let (lock, cv) = &*latch;
        let mut state = lock.lock().unwrap_or_else(|e| e.into_inner());
        while state.0 > 0 {
            state = cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = state.1.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for lane in &self.shared.lanes {
            // Take the inbox lock so no lane misses the flag between
            // its check and its wait.
            let _g = lane.inbox.lock().unwrap_or_else(|e| e.into_inner());
            lane.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.shared.lanes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    fn thread_ids(pool: &WorkerPool, jobs: usize) -> HashSet<ThreadId> {
        let ids = Arc::new(Mutex::new(HashSet::new()));
        let batch: Vec<Job> = (0..jobs)
            .map(|_| {
                let ids = Arc::clone(&ids);
                Box::new(move || {
                    ids.lock().unwrap().insert(std::thread::current().id());
                }) as Job
            })
            .collect();
        pool.run_jobs(batch);
        let set = ids.lock().unwrap().clone();
        set
    }

    #[test]
    fn pool_reuses_the_same_threads_across_batches() {
        let pool = WorkerPool::new(4);
        let first = thread_ids(&pool, 4);
        let second = thread_ids(&pool, 4);
        assert_eq!(first.len(), 4, "each job on its own lane");
        assert_eq!(first, second, "warm lanes are reused, not respawned");
        assert_eq!(pool.stats().jobs_run, 8);
        assert_eq!(pool.stats().dispatches, 2);
    }

    #[test]
    fn concurrent_dispatches_share_the_pool_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(4));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (pool, counter) = (Arc::clone(&pool), Arc::clone(&counter));
                scope.spawn(move || {
                    for _ in 0..8 {
                        let jobs: Vec<Job> = (0..2)
                            .map(|_| {
                                let counter = Arc::clone(&counter);
                                Box::new(move || {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }) as Job
                            })
                            .collect();
                        pool.run_jobs(jobs);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 8 * 2);
    }

    #[test]
    fn panicking_job_reraises_without_killing_the_lane() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_jobs(vec![Box::new(|| panic!("pool job boom")) as Job]);
        }))
        .expect_err("payload re-raised");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"pool job boom"));
        // The lane survived and serves the next batch.
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        pool.run_jobs(vec![Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().jobs_run, 2);
    }
}
