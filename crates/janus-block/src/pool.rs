//! The persistent worker pool: warm threads reused across batches.
//!
//! One pool thread per *lane*. A batch reserves one lane per worker
//! job, each lane runs exactly one job to completion through its own
//! injection slot, then returns itself to the free list. The lane's
//! thread never exits between batches — the thread-reuse half of the
//! ROADMAP's work-stealing refactor — and the free list is a LIFO
//! stack, so a steady barrier-mode caller gets the same (cache-warm)
//! lanes back batch after batch, while a pipelined caller alternates
//! between two lane sets.
//!
//! When a dispatch wants more lanes than are free, the excess jobs land
//! in a shared *overflow* queue instead of blocking the caller: a lane
//! that completes its job steals queued work from the overflow (FIFO,
//! so earlier batches drain first) before idling. Reservation never
//! holds-and-waits, so concurrent dispatches cannot deadlock on partial
//! reservations, and oversubscribed dispatches degrade to bounded
//! parallelism instead of panicking.
//!
//! Uses `std::sync` primitives throughout: the pool needs a `Condvar`,
//! which the in-repo `parking_lot` shim does not provide.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use janus_core::{Job, JobExecutor};

/// The free-lane stack and the overflow queue, guarded together: a lane
/// decides "steal overflow work or go idle" in one critical section, so
/// a job can never be queued while a lane slips onto the free list.
struct FreeState {
    /// Indices of lanes with no job in flight. LIFO: the most recently
    /// freed (warmest) lanes are handed out first.
    lanes: Vec<usize>,
    /// Jobs dispatched while no lane was free, drained FIFO by lanes
    /// as they complete their slot jobs.
    overflow: VecDeque<Job>,
}

/// Shared pool state: one injection slot per lane plus the free-lane
/// stack and overflow queue.
struct PoolShared {
    lanes: Vec<Lane>,
    free: Mutex<FreeState>,
    free_cv: Condvar,
    shutdown: AtomicBool,
    jobs_run: AtomicU64,
    dispatches: AtomicU64,
    overflow_queued: AtomicU64,
    overflow_stolen: AtomicU64,
}

/// One lane's injection slot: the single job the lane's thread should
/// run next.
struct Lane {
    inbox: Mutex<Option<Job>>,
    cv: Condvar,
}

/// A persistent pool of worker threads implementing
/// [`JobExecutor`], so [`Janus::run_batch`](janus_core::Janus::run_batch)
/// dispatches onto warm threads instead of spawning fresh ones.
///
/// Dropping the pool shuts the threads down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `lanes` persistent threads. A pipelined block
    /// executor over `t`-thread batches needs `2 * (t + 1)` lanes (two
    /// batches in flight, one watchdog lane each); [`WorkerPool::for_pipeline`]
    /// computes that.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a pool needs at least one lane");
        let shared = Arc::new(PoolShared {
            lanes: (0..lanes)
                .map(|_| Lane {
                    inbox: Mutex::new(None),
                    cv: Condvar::new(),
                })
                .collect(),
            free: Mutex::new(FreeState {
                lanes: (0..lanes).rev().collect(),
                overflow: VecDeque::new(),
            }),
            free_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            overflow_queued: AtomicU64::new(0),
            overflow_stolen: AtomicU64::new(0),
        });
        let threads = (0..lanes)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("janus-lane-{i}"))
                    .spawn(move || lane_loop(i, &shared))
                    .expect("spawn pool lane")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// A pool sized for a two-deep pipeline of `threads`-worker batches:
    /// `2 * (threads + 1)` lanes (each in-flight batch takes one lane
    /// per worker plus one for an armed watchdog).
    pub fn for_pipeline(threads: usize) -> Self {
        WorkerPool::new(2 * (threads + 1))
    }

    /// Number of lanes (persistent threads).
    pub fn lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Jobs completed and `run_jobs` calls served so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lanes: self.shared.lanes.len() as u64,
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            dispatches: self.shared.dispatches.load(Ordering::Relaxed),
            overflow_queued: self.shared.overflow_queued.load(Ordering::Relaxed),
            overflow_stolen: self.shared.overflow_stolen.load(Ordering::Relaxed),
            conductors: 0,
            blocks_conducted: 0,
        }
    }
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent threads in the pool.
    pub lanes: u64,
    /// Jobs completed across the pool's lifetime.
    pub jobs_run: u64,
    /// `run_jobs` calls (batch dispatches) served.
    pub dispatches: u64,
    /// Jobs that found no free lane and were queued on the overflow.
    pub overflow_queued: u64,
    /// Overflow jobs a freed lane stole instead of idling.
    pub overflow_stolen: u64,
    /// Persistent conductor threads (filled by the block executor; a
    /// bare pool reports 0).
    pub conductors: u64,
    /// Blocks conducted by those persistent threads — `blocks_conducted
    /// / conductors` is the reuse factor the per-block-spawn scheme
    /// never got above 1.
    pub blocks_conducted: u64,
}

fn lane_loop(idx: usize, shared: &PoolShared) {
    loop {
        let job = {
            let lane = &shared.lanes[idx];
            let mut inbox = lane.inbox.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = inbox.take() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inbox = lane.cv.wait(inbox).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Jobs handed to the pool are pre-wrapped by `run_jobs`: they
        // catch their own unwinds, so a panicking batch job can never
        // kill a pool thread.
        job();
        // Before idling, steal queued overflow work: a free lane whose
        // injection slot is empty serves waiting jobs instead of
        // parking while dispatched batches run undermanned.
        loop {
            let mut free = shared.free.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(job) = free.overflow.pop_front() {
                drop(free);
                shared.overflow_stolen.fetch_add(1, Ordering::Relaxed);
                job();
                continue;
            }
            // The lane frees itself only after its job completed (and
            // the overflow is empty), so a reservation always gets
            // idle threads.
            free.lanes.push(idx);
            drop(free);
            shared.free_cv.notify_all();
            break;
        }
    }
}

impl JobExecutor for WorkerPool {
    fn run_jobs(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let n = jobs.len();
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        // Completion latch: remaining jobs + the first panic payload.
        type Latch = (
            Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
            Condvar,
        );
        let latch: Arc<Latch> = Arc::new((Mutex::new((n, None)), Condvar::new()));
        let mut wrapped: Vec<Job> = jobs
            .into_iter()
            .map(|job| {
                let latch = Arc::clone(&latch);
                let shared = Arc::clone(&self.shared);
                Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    // Count before releasing the latch so `stats()` read
                    // after `run_jobs` returns is never stale.
                    shared.jobs_run.fetch_add(1, Ordering::Relaxed);
                    let (lock, cv) = &*latch;
                    let mut state = lock.lock().unwrap_or_else(|e| e.into_inner());
                    state.0 -= 1;
                    if let Err(payload) = result {
                        state.1.get_or_insert(payload);
                    }
                    drop(state);
                    cv.notify_all();
                }) as Job
            })
            .collect();
        // Take whatever lanes are free and queue the rest on the
        // overflow, all in one critical section: reservation never
        // holds-and-waits (so concurrent dispatches cannot deadlock),
        // and no lane can go idle between the split and the queueing.
        // The leading jobs get the lanes — `run_batch` submits its
        // watchdog job last, so worker jobs start first when lanes are
        // scarce.
        let reserved: Vec<usize> = {
            let mut free = self.shared.free.lock().unwrap_or_else(|e| e.into_inner());
            let take = free.lanes.len().min(n);
            let cut = free.lanes.len() - take;
            let reserved = free.lanes.split_off(cut);
            for job in wrapped.split_off(take) {
                self.shared.overflow_queued.fetch_add(1, Ordering::Relaxed);
                free.overflow.push_back(job);
            }
            reserved
        };
        for (&lane_idx, job) in reserved.iter().zip(wrapped) {
            let lane = &self.shared.lanes[lane_idx];
            *lane.inbox.lock().unwrap_or_else(|e| e.into_inner()) = Some(job);
            lane.cv.notify_one();
        }
        let (lock, cv) = &*latch;
        let mut state = lock.lock().unwrap_or_else(|e| e.into_inner());
        while state.0 > 0 {
            state = cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = state.1.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for lane in &self.shared.lanes {
            // Take the inbox lock so no lane misses the flag between
            // its check and its wait.
            let _g = lane.inbox.lock().unwrap_or_else(|e| e.into_inner());
            lane.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.shared.lanes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    fn thread_ids(pool: &WorkerPool, jobs: usize) -> HashSet<ThreadId> {
        let ids = Arc::new(Mutex::new(HashSet::new()));
        let batch: Vec<Job> = (0..jobs)
            .map(|_| {
                let ids = Arc::clone(&ids);
                Box::new(move || {
                    ids.lock().unwrap().insert(std::thread::current().id());
                }) as Job
            })
            .collect();
        pool.run_jobs(batch);
        let set = ids.lock().unwrap().clone();
        set
    }

    #[test]
    fn pool_reuses_the_same_threads_across_batches() {
        let pool = WorkerPool::new(4);
        let first = thread_ids(&pool, 4);
        let second = thread_ids(&pool, 4);
        assert_eq!(first.len(), 4, "each job on its own lane");
        assert_eq!(first, second, "warm lanes are reused, not respawned");
        assert_eq!(pool.stats().jobs_run, 8);
        assert_eq!(pool.stats().dispatches, 2);
    }

    #[test]
    fn concurrent_dispatches_share_the_pool_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(4));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (pool, counter) = (Arc::clone(&pool), Arc::clone(&counter));
                scope.spawn(move || {
                    for _ in 0..8 {
                        let jobs: Vec<Job> = (0..2)
                            .map(|_| {
                                let counter = Arc::clone(&counter);
                                Box::new(move || {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }) as Job
                            })
                            .collect();
                        pool.run_jobs(jobs);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 8 * 2);
    }

    #[test]
    fn oversubscribed_dispatch_overflows_instead_of_panicking() {
        // 6 jobs on 2 lanes: 2 dispatch directly, 4 ride the overflow
        // queue and are stolen by lanes as they free up.
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..6)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run_jobs(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 6, "every job ran");
        let stats = pool.stats();
        assert_eq!(stats.jobs_run, 6);
        assert_eq!(stats.overflow_queued, 4, "4 jobs found no free lane");
        assert_eq!(stats.overflow_stolen, 4, "free lanes stole all of them");
        // A worker-sized batch afterwards needs no overflow.
        let jobs: Vec<Job> = (0..2).map(|_| Box::new(|| {}) as Job).collect();
        pool.run_jobs(jobs);
        assert_eq!(pool.stats().overflow_queued, 4);
    }

    #[test]
    fn overflow_drains_fifo_across_concurrent_dispatches() {
        let pool = Arc::new(WorkerPool::new(1));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (pool, counter) = (Arc::clone(&pool), Arc::clone(&counter));
                scope.spawn(move || {
                    let jobs: Vec<Job> = (0..4)
                        .map(|_| {
                            let counter = Arc::clone(&counter);
                            Box::new(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }) as Job
                        })
                        .collect();
                    pool.run_jobs(jobs);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 12);
        assert_eq!(pool.stats().jobs_run, 12);
    }

    #[test]
    fn panicking_job_reraises_without_killing_the_lane() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_jobs(vec![Box::new(|| panic!("pool job boom")) as Job]);
        }))
        .expect_err("payload re-raised");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"pool job boom"));
        // The lane survived and serves the next batch.
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        pool.run_jobs(vec![Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().jobs_run, 2);
    }
}
