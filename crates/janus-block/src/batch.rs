//! Cross-batch ordering: trackers and the commit gate linking a batch
//! to its predecessor.
//!
//! Batch boundaries are *not* global barriers. A transaction in batch
//! N+1 may commit while batch N is still running, provided its
//! footprint is disjoint (by [`Fingerprint`] prefilter) from everything
//! batch N has executed so far **and** batch N has no unexecuted
//! transactions left that could still touch anything. Conservative on
//! both sides: a Bloom false positive or a not-yet-executed predecessor
//! only delays a commit, never admits a conflicting one.
//! Serializability itself never rests on the gate — the hindsight
//! validator checks every commit against the shared store history
//! regardless — the gate only pins the *equivalent serial order* to
//! "all of batch N before any conflicting part of batch N+1".
//!
//! In [ordered mode](OrderedLink) the gate degenerates to a full commit
//! barrier (predecessor fully done), which preserves exact cross-batch
//! submission order; execution still overlaps.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use janus_core::CommitGate;
use janus_log::Fingerprint;
use parking_lot::Mutex;

/// Shared record of one batch's progress, owned by the block executor
/// and observed (through a gate) by the *next* batch.
pub struct BatchTracker {
    /// How many transactions this batch was dispatched with.
    expected: usize,
    /// Union of the footprints of every attempt executed so far. Only
    /// grows, so a disjointness verdict taken against it can go stale
    /// in the conservative direction only if re-checked; a single
    /// check is valid only together with `all_executed` (nothing new
    /// can appear) — the gate enforces that pairing.
    executed_union: Mutex<Fingerprint>,
    /// Distinct transaction ids that have executed (or terminally
    /// failed) at least once. Re-executions after an abort re-insert
    /// the same id, keeping the count exact.
    executed_tids: Mutex<BTreeSet<u64>>,
    /// Set once the batch's `run_batch` has fully returned (commits
    /// durable, workers parked) — including the poisoned/failed case,
    /// so a failed predecessor can never wedge its successor.
    done: AtomicBool,
    /// Commits the successor let through early (before `done`).
    overlapped_commits: AtomicU64,
}

impl BatchTracker {
    /// A tracker for a batch of `expected` transactions.
    pub fn new(expected: usize) -> Arc<Self> {
        Arc::new(BatchTracker {
            expected,
            executed_union: Mutex::new(Fingerprint::empty()),
            executed_tids: Mutex::new(BTreeSet::new()),
            done: AtomicBool::new(false),
            overlapped_commits: AtomicU64::new(0),
        })
    }

    fn note(&self, tid: u64, fingerprint: &Fingerprint) {
        // Union first, then the tid: a successor that observes the id
        // as executed must also observe (at least) that footprint.
        self.executed_union.lock().union(fingerprint);
        self.executed_tids.lock().insert(tid);
    }

    fn all_executed(&self) -> bool {
        self.executed_tids.lock().len() >= self.expected
    }

    /// Mark the batch finished. Called by the block executor after
    /// `run_batch` returns or unwinds — unconditionally, so successors
    /// never wait on a corpse.
    pub fn complete(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether the batch has fully finished (committed or failed).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Successor commits that overlapped this batch's execution.
    pub fn overlapped_commits(&self) -> u64 {
        self.overlapped_commits.load(Ordering::Relaxed)
    }
}

/// The [`CommitGate`] a pipelined batch runs under: linked to its
/// predecessor's tracker, feeding its own.
///
/// `may_commit` opens for a transaction when the predecessor batch is
/// done, or when every predecessor transaction has executed at least
/// once and the committer's footprint is disjoint (by fingerprint)
/// from the union of everything the predecessor executed. The second
/// arm is what buys pipeline overlap: read-disjoint batches commit
/// concurrently while the predecessor is still validating.
pub struct PipelinedLink {
    prev: Arc<BatchTracker>,
    own: Arc<BatchTracker>,
}

impl PipelinedLink {
    /// Links a batch (`own`) to its predecessor's tracker.
    pub fn new(prev: Arc<BatchTracker>, own: Arc<BatchTracker>) -> Self {
        PipelinedLink { prev, own }
    }
}

impl CommitGate for PipelinedLink {
    fn note_executed(&self, tid: u64, fingerprint: &Fingerprint) {
        self.own.note(tid, fingerprint);
    }

    fn note_failed(&self, tid: u64) {
        // A terminally failed transaction writes nothing, so only the
        // tid matters: successors must not wait for it to "execute".
        self.own.note(tid, &Fingerprint::empty());
    }

    fn may_commit(&self, _tid: u64, fingerprint: &Fingerprint) -> bool {
        if self.prev.is_done() {
            return true;
        }
        // All predecessor transactions have produced a footprint, and
        // ours overlaps none of them: committing now is equivalent to
        // committing after the predecessor, so let it through.
        let open = self.prev.all_executed()
            && !fingerprint.may_intersect(&self.prev.executed_union.lock());
        if open {
            self.prev.overlapped_commits.fetch_add(1, Ordering::Relaxed);
        }
        open
    }
}

/// The ordered-mode gate: a full commit barrier on the predecessor.
/// Execution of the successor still overlaps; only its commits wait,
/// which preserves exact cross-batch submission order (batch N's turn
/// sequence completes before batch N+1's begins).
pub struct OrderedLink {
    prev: Arc<BatchTracker>,
    own: Arc<BatchTracker>,
}

impl OrderedLink {
    /// Links a batch (`own`) to its predecessor's tracker.
    pub fn new(prev: Arc<BatchTracker>, own: Arc<BatchTracker>) -> Self {
        OrderedLink { prev, own }
    }
}

impl CommitGate for OrderedLink {
    fn note_executed(&self, tid: u64, fingerprint: &Fingerprint) {
        self.own.note(tid, fingerprint);
    }

    fn note_failed(&self, tid: u64) {
        self.own.note(tid, &Fingerprint::empty());
    }

    fn may_commit(&self, _tid: u64, _fingerprint: &Fingerprint) -> bool {
        self.prev.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{ClassId, LocId};

    fn fp(loc: u64) -> Fingerprint {
        let mut f = Fingerprint::empty();
        f.insert(LocId(loc), &ClassId::new("acct"));
        f
    }

    #[test]
    fn pipelined_gate_opens_for_disjoint_footprints_once_prev_executed() {
        let prev = BatchTracker::new(2);
        let own = BatchTracker::new(1);
        let gate = PipelinedLink::new(Arc::clone(&prev), Arc::clone(&own));

        let mine = fp(77);
        // Predecessor not fully executed: closed even when disjoint.
        prev.note(1, &fp(1));
        assert!(!gate.may_commit(10, &mine));
        // Second predecessor transaction executes with a disjoint
        // footprint: gate opens without waiting for prev to commit.
        prev.note(2, &fp(2));
        assert!(gate.may_commit(10, &mine));
        assert_eq!(prev.overlapped_commits(), 1);
        // An overlapping footprint stays gated until prev is done.
        assert!(!gate.may_commit(11, &fp(1)));
        prev.complete();
        assert!(gate.may_commit(11, &fp(1)));
    }

    #[test]
    fn reexecuted_tids_do_not_double_count() {
        let prev = BatchTracker::new(2);
        let own = BatchTracker::new(1);
        let gate = PipelinedLink::new(Arc::clone(&prev), own);
        prev.note(1, &fp(1));
        prev.note(1, &fp(3)); // re-execution after an abort: same tid
        assert!(
            !gate.may_commit(10, &fp(77)),
            "one distinct tid of two expected must keep the gate shut"
        );
    }

    #[test]
    fn ordered_gate_is_a_full_barrier() {
        let prev = BatchTracker::new(1);
        let own = BatchTracker::new(1);
        let gate = OrderedLink::new(Arc::clone(&prev), own);
        prev.note(1, &fp(1));
        assert!(
            !gate.may_commit(10, &fp(77)),
            "ordered mode ignores disjointness"
        );
        prev.complete();
        assert!(gate.may_commit(10, &fp(77)));
    }

    #[test]
    fn failed_predecessor_transactions_unblock_disjoint_successors() {
        let prev = BatchTracker::new(2);
        let own = BatchTracker::new(1);
        let gate = PipelinedLink::new(Arc::clone(&prev), own);
        prev.note(1, &fp(1));
        // Transaction 2 failed terminally (isolated): it contributes no
        // footprint but counts as executed.
        gate_note_failed_on(&prev, 2);
        assert!(gate.may_commit(10, &fp(77)));
    }

    fn gate_note_failed_on(tracker: &BatchTracker, tid: u64) {
        tracker.note(tid, &Fingerprint::empty());
    }
}
