//! Admission control for the serve loop: a bounded inflight queue with
//! explicit load shedding.
//!
//! The producer (protocol reader) calls [`AdmissionQueue::offer`],
//! which either admits the batch or returns [`Admission::Shed`] when
//! the queue is at capacity — the client gets a distinct `shed`
//! response instead of unbounded queueing. The consumer (the pipeline
//! loop) pops batches with [`AdmissionQueue::take`], blocking until
//! one arrives or the queue is closed. Backpressure is the pipeline's
//! own depth bound: the consumer takes a new batch only when the
//! executor has room, so the queue depth — sampled into
//! `serve.inflight_depth` on every offer — is the service's lag
//! signal.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use crate::stats::ServeStats;

/// Why an offer was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The batch was queued.
    Admitted,
    /// The queue was full; the batch was dropped (load shedding).
    Shed,
    /// The queue was closed; no further batches are accepted.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue with shed-on-full
/// semantics, instrumented into [`ServeStats`].
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
    stats: Arc<ServeStats>,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` batches at a time.
    pub fn new(capacity: usize, stats: Arc<ServeStats>) -> Self {
        assert!(capacity >= 1, "admission capacity must be at least 1");
        AdmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
            stats,
        }
    }

    /// The shared serve statistics.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Offers a batch: admitted if there is room, shed otherwise.
    /// Never blocks the producer.
    pub fn offer(&self, item: T) -> Admission {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.stats.depth.lock().observe(st.items.len() as u64);
        if st.closed {
            return Admission::Closed;
        }
        if st.items.len() >= self.capacity {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed;
        }
        st.items.push_back(item);
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.ready.notify_one();
        Admission::Admitted
    }

    /// Enqueues unconditionally, bypassing the capacity bound and the
    /// admission counters. For control-plane items (drain markers,
    /// shutdown) that must never be shed; data batches go through
    /// [`AdmissionQueue::offer`].
    pub fn push(&self, item: T) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
    }

    /// Takes the oldest admitted batch, blocking until one arrives.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn take(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Closes the queue: pending batches remain takeable, new offers
    /// return [`Admission::Closed`], and blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(cap: usize) -> AdmissionQueue<u32> {
        AdmissionQueue::new(cap, Arc::new(ServeStats::default()))
    }

    #[test]
    fn sheds_when_full_and_admits_after_a_take() {
        let q = queue(2);
        assert_eq!(q.offer(1), Admission::Admitted);
        assert_eq!(q.offer(2), Admission::Admitted);
        assert_eq!(q.offer(3), Admission::Shed);
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.offer(4), Admission::Admitted);
        let r = q.stats().report();
        assert_eq!((r.admitted, r.shed), (3, 1));
        // Depth was sampled at every offer, including the shed one.
        assert_eq!(q.stats().depth.lock().count(), 4);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = queue(4);
        assert_eq!(q.offer(7), Admission::Admitted);
        q.close();
        assert_eq!(q.offer(8), Admission::Closed);
        assert_eq!(q.take(), Some(7));
        assert_eq!(q.take(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_offer_and_on_close() {
        let q = Arc::new(queue(4));
        let taker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.take(), q.take()))
        };
        q.offer(5);
        q.close();
        let (a, b) = taker.join().unwrap();
        assert_eq!((a, b), (Some(5), None));
    }
}
