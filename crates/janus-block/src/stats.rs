//! Block- and service-level statistics: `batch.*` and `serve.*`
//! counters plus the latency/depth histograms, exportable into a
//! [`MetricsRegistry`].

use std::sync::atomic::{AtomicU64, Ordering};

use janus_obs::{Histogram, MetricsRegistry, Snapshot};
use parking_lot::Mutex;

/// Concurrent block-pipeline counters, shared between the
/// [`BlockExecutor`](crate::BlockExecutor) and its conductor threads.
#[derive(Default)]
pub struct BlockStats {
    pub(crate) blocks_submitted: AtomicU64,
    pub(crate) blocks_committed: AtomicU64,
    pub(crate) blocks_failed: AtomicU64,
    pub(crate) txns_committed: AtomicU64,
    pub(crate) txns_retried: AtomicU64,
    pub(crate) txns_failed: AtomicU64,
    /// Committers that parked at least once on the cross-batch gate.
    pub(crate) gate_waits: AtomicU64,
    /// Successor commits the gate let through while the predecessor
    /// batch was still running — the pipeline's overlap dividend.
    pub(crate) overlapped_commits: AtomicU64,
    /// Sum of per-block wall times, in microseconds. Compared against
    /// the stream's wall clock this yields the overlap ratio: depth-2
    /// pipelining can push busy/wall up to 2.0.
    pub(crate) busy_micros: AtomicU64,
    /// Per-block latency, in microseconds.
    pub(crate) latency_us: Mutex<Histogram>,
    /// Transactions per block.
    pub(crate) block_size: Mutex<Histogram>,
}

impl BlockStats {
    /// A point-in-time snapshot of the counters.
    pub fn report(&self, stream_wall_micros: u64) -> BatchReport {
        let busy = self.busy_micros.load(Ordering::Relaxed);
        BatchReport {
            blocks_submitted: self.blocks_submitted.load(Ordering::Relaxed),
            blocks_committed: self.blocks_committed.load(Ordering::Relaxed),
            blocks_failed: self.blocks_failed.load(Ordering::Relaxed),
            txns_committed: self.txns_committed.load(Ordering::Relaxed),
            txns_retried: self.txns_retried.load(Ordering::Relaxed),
            txns_failed: self.txns_failed.load(Ordering::Relaxed),
            gate_waits: self.gate_waits.load(Ordering::Relaxed),
            overlapped_commits: self.overlapped_commits.load(Ordering::Relaxed),
            busy_micros: busy,
            overlap_permille: overlap_permille(busy, stream_wall_micros),
        }
    }

    /// Exports counters (under `batch.*`) and histograms
    /// (`batch.latency_us`, `batch.size`) into a registry.
    pub fn export(&self, stream_wall_micros: u64, registry: &mut MetricsRegistry) {
        registry.absorb(&self.report(stream_wall_micros));
        registry.merge_histogram("batch.latency_us", &self.latency_us.lock());
        registry.merge_histogram("batch.size", &self.block_size.lock());
    }

    /// The per-block latency histogram (microseconds), cloned.
    pub fn latency_histogram(&self) -> Histogram {
        self.latency_us.lock().clone()
    }
}

/// `busy/wall` expressed as overlap: 0 when the stream ran serially
/// (busy <= wall), up to 1000 when two blocks were always in flight.
fn overlap_permille(busy_micros: u64, wall_micros: u64) -> u64 {
    if wall_micros == 0 || busy_micros <= wall_micros {
        return 0;
    }
    ((busy_micros - wall_micros) * 1000) / wall_micros
}

/// The `batch.*` snapshot: one value per pipeline counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Blocks handed to the executor.
    pub blocks_submitted: u64,
    /// Blocks that drained normally.
    pub blocks_committed: u64,
    /// Blocks lost to a poison panic or watchdog fire.
    pub blocks_failed: u64,
    /// Transactions committed across all blocks.
    pub txns_committed: u64,
    /// Aborted transaction attempts across all blocks.
    pub txns_retried: u64,
    /// Transactions isolated after a body panic.
    pub txns_failed: u64,
    /// Committers that parked on the cross-batch gate.
    pub gate_waits: u64,
    /// Commits the gate released while the predecessor still ran.
    pub overlapped_commits: u64,
    /// Sum of per-block wall times (microseconds).
    pub busy_micros: u64,
    /// Pipeline overlap, in permille of the stream wall clock
    /// (0 = serial, 1000 = two blocks always in flight).
    pub overlap_permille: u64,
}

impl Snapshot for BatchReport {
    fn source(&self) -> &'static str {
        "batch"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("blocks_submitted".into(), self.blocks_submitted),
            ("blocks_committed".into(), self.blocks_committed),
            ("blocks_failed".into(), self.blocks_failed),
            ("txns_committed".into(), self.txns_committed),
            ("txns_retried".into(), self.txns_retried),
            ("txns_failed".into(), self.txns_failed),
            ("gate_waits".into(), self.gate_waits),
            ("overlapped_commits".into(), self.overlapped_commits),
            ("busy_micros".into(), self.busy_micros),
            ("overlap_permille".into(), self.overlap_permille),
        ]
    }
}

/// Concurrent admission-control counters for the serve loop.
#[derive(Default)]
pub struct ServeStats {
    pub(crate) admitted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) txns_in: AtomicU64,
    /// Inflight-queue depth sampled at each admission attempt.
    pub(crate) depth: Mutex<Histogram>,
}

impl ServeStats {
    /// Records `blocks` batches as fully processed (committed or
    /// failed). Called by the serve loop as blocks retire.
    pub fn note_completed(&self, blocks: u64) {
        self.completed.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Records `txns` transactions accepted into an admitted batch.
    pub fn note_txns_in(&self, txns: u64) {
        self.txns_in.fetch_add(txns, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the counters.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            txns_in: self.txns_in.load(Ordering::Relaxed),
        }
    }

    /// Exports counters (under `serve.*`) and the `serve.inflight_depth`
    /// histogram into a registry.
    pub fn export(&self, registry: &mut MetricsRegistry) {
        registry.absorb(&self.report());
        registry.merge_histogram("serve.inflight_depth", &self.depth.lock());
    }
}

/// The `serve.*` snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Batches admitted into the inflight queue.
    pub admitted: u64,
    /// Batches refused because the queue was full.
    pub shed: u64,
    /// Batches fully processed (committed or failed).
    pub completed: u64,
    /// Transactions accepted across all admitted batches.
    pub txns_in: u64,
}

impl Snapshot for ServeReport {
    fn source(&self) -> &'static str {
        "serve"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("batches_admitted".into(), self.admitted),
            ("batches_shed".into(), self.shed),
            ("batches_completed".into(), self.completed),
            ("txns_in".into(), self.txns_in),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_permille_is_zero_for_serial_and_positive_for_overlap() {
        assert_eq!(overlap_permille(100, 100), 0);
        assert_eq!(overlap_permille(50, 100), 0);
        assert_eq!(overlap_permille(200, 100), 1000);
        assert_eq!(overlap_permille(150, 100), 500);
        assert_eq!(overlap_permille(0, 0), 0);
    }

    #[test]
    fn reports_land_under_their_prefixes() {
        let block = BlockStats::default();
        block.blocks_submitted.store(3, Ordering::Relaxed);
        block.txns_committed.store(30, Ordering::Relaxed);
        block.latency_us.lock().observe(500);
        let serve = ServeStats::default();
        serve.admitted.store(3, Ordering::Relaxed);
        serve.shed.store(1, Ordering::Relaxed);
        serve.depth.lock().observe(2);

        let mut m = MetricsRegistry::new();
        block.export(1_000, &mut m);
        serve.export(&mut m);
        assert_eq!(m.counter("batch.blocks_submitted"), 3);
        assert_eq!(m.counter("batch.txns_committed"), 30);
        assert_eq!(m.counter("serve.batches_admitted"), 3);
        assert_eq!(m.counter("serve.batches_shed"), 1);
        assert_eq!(m.histogram("batch.latency_us").unwrap().count(), 1);
        assert_eq!(m.histogram("serve.inflight_depth").unwrap().count(), 1);
    }
}
