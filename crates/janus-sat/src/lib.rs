//! A small, complete SAT solver used by JANUS for relational equivalence
//! queries (§6.2 of the paper).
//!
//! The paper discharges equivalence between two symbolic descriptions of a
//! relation's content by "asking the SAT solver for a satisfying
//! assignment for `¬(f ↔ g)`" — using Sat4j. This crate is a from-scratch
//! substitute: a conflict-driven DPLL solver with two-watched-literal
//! propagation, first-UIP clause learning, activity-based branching and
//! Luby restarts, plus a Tseitin transformation from arbitrary
//! propositional formulas to CNF.
//!
//! # Example
//!
//! ```
//! use janus_sat::{PropFormula as P, is_equivalent};
//!
//! // x ∧ y  ≡  ¬(¬x ∨ ¬y)      (De Morgan)
//! let f = P::var(0).and(P::var(1));
//! let g = P::var(0).not().or(P::var(1).not()).not();
//! assert!(is_equivalent(&f, &g, &[]));
//!
//! // x ∨ y  ≢  x ∧ y
//! let f = P::var(0).or(P::var(1));
//! let g = P::var(0).and(P::var(1));
//! assert!(!is_equivalent(&f, &g, &[]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod dimacs;
mod prop;
mod solver;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use prop::{is_equivalent, is_satisfiable, tseitin, PropFormula};
pub use solver::{global_solver_stats, reset_global_solver_stats, Solution, Solver, SolverStats};
