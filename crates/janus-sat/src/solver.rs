//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Standard architecture: two-watched-literal unit propagation, first-UIP
//! conflict analysis with clause learning, exponential-decay variable
//! activities (VSIDS-style branching) and Luby-sequence restarts. Complete
//! for any CNF; no preprocessing.

use crate::{Clause, Cnf, Lit, Var};

/// The outcome of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// Satisfiable, with a witnessing total assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl Solution {
    /// Whether the instance was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Solution::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            Solution::Sat(m) => Some(m),
            Solution::Unsat => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

impl Assign {
    fn of(b: bool) -> Assign {
        if b {
            Assign::True
        } else {
            Assign::False
        }
    }
}

/// A CDCL SAT solver over a fixed clause database.
///
/// # Example
///
/// ```
/// use janus_sat::{Cnf, Solver, Var};
///
/// let mut cnf = Cnf::new();
/// let (a, b) = (cnf.fresh_var(), cnf.fresh_var());
/// cnf.add_clause(vec![a.pos(), b.pos()]);
/// cnf.add_clause(vec![a.neg()]);
/// let solution = Solver::new(&cnf).solve();
/// let model = solution.model().expect("satisfiable");
/// assert!(!model[a.index()] && model[b.index()]);
/// ```
#[derive(Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clause indices watching `lit`.
    watches: Vec<Vec<usize>>,
    assign: Vec<Assign>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Index into `clauses` of the clause that implied each variable
    /// (`usize::MAX` for decisions).
    reason: Vec<usize>,
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lims: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Last polarity each variable was assigned (phase saving): the
    /// solver re-tries a variable's previous polarity first, which keeps
    /// it exploring near a partial solution across restarts.
    saved_phase: Vec<bool>,
    /// Conflicts seen since the last restart.
    conflicts_since_restart: u64,
    restarts: u32,
    empty_clause: bool,
    stats: SolverStats,
}

/// Search statistics, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed (= clauses learnt).
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl SolverStats {
    /// Adds another solver's counters into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
    }
}

/// Process-wide solver-activity totals. Solvers are created deep inside
/// the symbolic verifier (one per equivalence query) and dropped
/// immediately, so per-instance stats are unreachable from the CLI; each
/// solver folds its counters in here when it drops.
#[derive(Debug, Default)]
struct GlobalSolverStats {
    decisions: std::sync::atomic::AtomicU64,
    conflicts: std::sync::atomic::AtomicU64,
    propagations: std::sync::atomic::AtomicU64,
    restarts: std::sync::atomic::AtomicU64,
}

static GLOBAL_STATS: GlobalSolverStats = GlobalSolverStats {
    decisions: std::sync::atomic::AtomicU64::new(0),
    conflicts: std::sync::atomic::AtomicU64::new(0),
    propagations: std::sync::atomic::AtomicU64::new(0),
    restarts: std::sync::atomic::AtomicU64::new(0),
};

/// The totals accumulated by every [`Solver`] dropped so far in this
/// process.
pub fn global_solver_stats() -> SolverStats {
    use std::sync::atomic::Ordering::Relaxed;
    SolverStats {
        decisions: GLOBAL_STATS.decisions.load(Relaxed),
        conflicts: GLOBAL_STATS.conflicts.load(Relaxed),
        propagations: GLOBAL_STATS.propagations.load(Relaxed),
        restarts: GLOBAL_STATS.restarts.load(Relaxed),
    }
}

/// Zeroes the process-wide solver totals (between experiment phases).
pub fn reset_global_solver_stats() {
    use std::sync::atomic::Ordering::Relaxed;
    GLOBAL_STATS.decisions.store(0, Relaxed);
    GLOBAL_STATS.conflicts.store(0, Relaxed);
    GLOBAL_STATS.propagations.store(0, Relaxed);
    GLOBAL_STATS.restarts.store(0, Relaxed);
}

impl Drop for Solver {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering::Relaxed;
        GLOBAL_STATS
            .decisions
            .fetch_add(self.stats.decisions, Relaxed);
        GLOBAL_STATS
            .conflicts
            .fetch_add(self.stats.conflicts, Relaxed);
        GLOBAL_STATS
            .propagations
            .fetch_add(self.stats.propagations, Relaxed);
        GLOBAL_STATS
            .restarts
            .fetch_add(self.stats.restarts, Relaxed);
    }
}

const NO_REASON: usize = usize::MAX;

impl Solver {
    /// Builds a solver over the given CNF.
    pub fn new(cnf: &Cnf) -> Self {
        let n = cnf.num_vars as usize;
        let mut s = Solver {
            num_vars: n,
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![Assign::Unassigned; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::new(),
            trail_lims: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            saved_phase: vec![false; n],
            conflicts_since_restart: 0,
            restarts: 0,
            empty_clause: false,
            stats: SolverStats::default(),
        };
        for clause in &cnf.clauses {
            s.add_clause(clause.clone());
        }
        s
    }

    fn add_clause(&mut self, mut clause: Clause) {
        clause.sort();
        clause.dedup();
        // A clause containing both polarities of a variable is a tautology.
        if clause
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
        {
            return;
        }
        match clause.len() {
            0 => self.empty_clause = true,
            1 => {
                // Enqueue at level 0; conflicting units surface during solve.
                let l = clause[0];
                match self.value(l) {
                    Assign::False => self.empty_clause = true,
                    Assign::True => {}
                    Assign::Unassigned => self.enqueue(l, NO_REASON),
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[clause[0].code()].push(idx);
                self.watches[clause[1].code()].push(idx);
                self.clauses.push(clause);
            }
        }
    }

    fn value(&self, l: Lit) -> Assign {
        match self.assign[l.var().index()] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => Assign::of(l.is_positive()),
            Assign::False => Assign::of(!l.is_positive()),
        }
    }

    fn enqueue(&mut self, l: Lit, reason: usize) {
        let v = l.var().index();
        self.assign[v] = Assign::of(l.is_positive());
        self.level[v] = self.trail_lims.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = l.is_positive();
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            // Clauses watching ¬p must find a new watch or be unit/conflicting.
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Normalize: watched literals are positions 0 and 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value(first) == Assign::True {
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut found = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != Assign::False {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.code()].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == Assign::False {
                    // Conflict: restore remaining watchers.
                    // Entries already swap_removed were re-watched
                    // elsewhere; everything still in `watchers` keeps
                    // watching ¬p.
                    self.watches[false_lit.code()].append(&mut watchers);
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[false_lit.code()] = watchers;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: usize) -> (Clause, u32) {
        let current_level = self.trail_lims.len() as u32;
        let mut learnt: Clause = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize; // literals of current level still to resolve
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        let mut clause_idx = confl;

        loop {
            // Resolve on the literals of the reason clause.
            let start = usize::from(p.is_some()); // skip asserting lit of reason
            let lits: Vec<Lit> = self.clauses[clause_idx][start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            clause_idx = self.reason[lit.var().index()];
            debug_assert_ne!(clause_idx, NO_REASON);
            // Normalize reason clause so its asserting literal is first.
            if self.clauses[clause_idx][0] != lit {
                let pos = self.clauses[clause_idx]
                    .iter()
                    .position(|&l| l == lit)
                    .expect("asserting literal in reason clause");
                self.clauses[clause_idx].swap(0, pos);
            }
            p = Some(lit);
        }

        let uip = !p.expect("first UIP exists");
        // Backjump level: highest level among the other learnt literals.
        let bt = learnt
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        let mut clause = vec![uip];
        clause.extend(learnt);
        (clause, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lims.len() as u32 > level {
            let lim = self.trail_lims.pop().expect("non-empty trail limits");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty trail");
                self.assign[l.var().index()] = Assign::Unassigned;
                self.reason[l.var().index()] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars {
            if self.assign[v] == Assign::Unassigned {
                let a = self.activity[v];
                if best.is_none_or(|(ba, _)| a > ba) {
                    best = Some((a, v));
                }
            }
        }
        best.map(|(_, v)| {
            self.stats.decisions += 1;
            // Phase saving: re-try the variable's previous polarity.
            Lit::new(Var(v as u32), self.saved_phase[v])
        })
    }

    fn luby(x: u32) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        let mut x = x as u64;
        let (mut size, mut seq) = (1u64, 0u32);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> Solution {
        if self.empty_clause {
            return Solution::Unsat;
        }
        // Propagate level-0 units first.
        if self.propagate().is_some() {
            return Solution::Unsat;
        }
        let mut restart_limit = 64 * Self::luby(self.restarts);
        loop {
            if let Some(confl) = self.propagate() {
                if self.trail_lims.is_empty() {
                    return Solution::Unsat;
                }
                self.conflicts_since_restart += 1;
                self.stats.conflicts += 1;
                self.var_inc /= 0.95;
                let (learnt, bt_level) = self.analyze(confl);
                self.backtrack(bt_level);
                if learnt.len() == 1 {
                    // Asserting unit at level 0 — backtrack fully first.
                    self.backtrack(0);
                    if self.value(learnt[0]) == Assign::False {
                        return Solution::Unsat;
                    }
                    if self.value(learnt[0]) == Assign::Unassigned {
                        self.enqueue(learnt[0], NO_REASON);
                    }
                } else {
                    let mut learnt = learnt;
                    // Watch invariant: position 1 must hold the
                    // highest-level (last-to-unassign) remaining literal,
                    // otherwise backtracking can strand a false watch and
                    // miss propagations.
                    let hi = (1..learnt.len())
                        .max_by_key(|&k| self.level[learnt[k].var().index()])
                        .expect("learnt clause has a second literal");
                    learnt.swap(1, hi);
                    let idx = self.clauses.len();
                    self.watches[learnt[0].code()].push(idx);
                    self.watches[learnt[1].code()].push(idx);
                    let assert_lit = learnt[0];
                    self.clauses.push(learnt);
                    self.enqueue(assert_lit, idx);
                }
                if self.conflicts_since_restart >= restart_limit {
                    self.conflicts_since_restart = 0;
                    self.restarts += 1;
                    self.stats.restarts += 1;
                    restart_limit = 64 * Self::luby(self.restarts);
                    self.backtrack(0);
                }
            } else {
                match self.decide() {
                    None => {
                        let model = self.assign.iter().map(|&a| a == Assign::True).collect();
                        return Solution::Sat(model);
                    }
                    Some(l) => {
                        self.trail_lims.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    /// Number of restarts performed so far (diagnostic).
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cnf;

    fn solve(cnf: &Cnf) -> Solution {
        Solver::new(cnf).solve()
    }

    #[test]
    fn empty_cnf_is_sat() {
        assert!(solve(&Cnf::new()).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause(vec![]);
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_clause(vec![a.pos()]);
        cnf.add_clause(vec![a.neg()]);
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // a, a→b, b→c  ⊢ c
        let mut cnf = Cnf::new();
        let (a, b, c) = (cnf.fresh_var(), cnf.fresh_var(), cnf.fresh_var());
        cnf.add_clause(vec![a.pos()]);
        cnf.add_clause(vec![a.neg(), b.pos()]);
        cnf.add_clause(vec![b.neg(), c.pos()]);
        let sol = solve(&cnf);
        let m = sol.model().expect("sat");
        assert!(m[a.index()] && m[b.index()] && m[c.index()]);
    }

    #[test]
    fn model_satisfies_cnf() {
        let mut cnf = Cnf::new();
        let vars: Vec<_> = (0..6).map(|_| cnf.fresh_var()).collect();
        cnf.add_clause(vec![vars[0].pos(), vars[1].neg(), vars[2].pos()]);
        cnf.add_clause(vec![vars[1].pos(), vars[3].neg()]);
        cnf.add_clause(vec![vars[2].neg(), vars[4].pos(), vars[5].pos()]);
        cnf.add_clause(vec![vars[0].neg(), vars[5].neg()]);
        cnf.add_clause(vec![vars[3].pos(), vars[4].neg()]);
        if let Solution::Sat(m) = solve(&cnf) {
            assert!(cnf.eval(&m));
        } else {
            panic!("expected sat");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index form mirrors the encoding
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.fresh_var()).collect())
            .collect();
        for i in 0..3 {
            cnf.add_clause(vec![p[i][0].pos(), p[i][1].pos()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_clause(vec![p[i1][j].neg(), p[i2][j].neg()]);
                }
            }
        }
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index form mirrors the encoding
    fn pigeonhole_4_into_3_is_unsat() {
        let (np, nh) = (4, 3);
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| v.pos()).collect());
        }
        for j in 0..nh {
            for i1 in 0..np {
                for i2 in (i1 + 1)..np {
                    cnf.add_clause(vec![p[i1][j].neg(), p[i2][j].neg()]);
                }
            }
        }
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn tautological_clauses_ignored() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_clause(vec![a.pos(), a.neg()]);
        assert!(solve(&cnf).is_sat());
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_clause(vec![a.pos(), a.pos()]);
        let sol = solve(&cnf);
        assert!(sol.model().expect("sat")[a.index()]);
    }

    #[test]
    fn stats_are_populated() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..8).map(|_| cnf.fresh_var()).collect();
        for w in vars.windows(2) {
            cnf.add_clause(vec![w[0].neg(), w[1].pos()]);
        }
        cnf.add_clause(vec![vars[0].pos()]);
        let mut solver = Solver::new(&cnf);
        assert!(solver.solve().is_sat());
        let stats = solver.stats();
        assert!(stats.propagations >= 8, "chain must propagate");
    }

    #[test]
    fn phase_saving_still_finds_models() {
        // Random-ish instance solved twice: determinism and correctness
        // with phase saving in play.
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..10).map(|_| cnf.fresh_var()).collect();
        for i in 0..9 {
            cnf.add_clause(vec![vars[i].pos(), vars[i + 1].neg()]);
            cnf.add_clause(vec![vars[i].neg(), vars[(i + 3) % 10].pos()]);
        }
        let a = Solver::new(&cnf).solve();
        let b = Solver::new(&cnf).solve();
        assert_eq!(a, b, "solving is deterministic");
        assert!(a.is_sat());
        assert!(cnf.eval(a.model().expect("sat")));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u32), e, "luby({i})");
        }
    }

    /// Brute-force cross-check on small random 3-CNF instances.
    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = 3 + (next() % 6) as u32; // 3..8 vars
            let m = 2 + (next() % 20) as usize; // 2..21 clauses
            let mut cnf = Cnf::new();
            for _ in 0..n {
                cnf.fresh_var();
            }
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let clause: Clause = (0..len)
                    .map(|_| {
                        let v = Var((next() % n as u64) as u32);
                        if next() % 2 == 0 {
                            v.pos()
                        } else {
                            v.neg()
                        }
                    })
                    .collect();
                cnf.add_clause(clause);
            }
            let brute_sat = (0..(1u32 << n)).any(|bits| {
                let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            let sol = solve(&cnf);
            assert_eq!(sol.is_sat(), brute_sat, "cnf: {cnf}");
            if let Some(m) = sol.model() {
                assert!(cnf.eval(m), "model must satisfy: {cnf}");
            }
        }
    }
}
