//! DIMACS CNF import/export.
//!
//! The solver doubles as a small standalone SAT library; DIMACS support
//! makes it testable against standard instances and lets the symbolic
//! queries JANUS discharges be dumped for offline inspection.

use std::fmt::Write as _;

use crate::{Cnf, Lit, Var};

/// An error while parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Serializes a CNF in DIMACS format (`p cnf <vars> <clauses>` header,
/// 1-based signed literals, `0`-terminated clauses).
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for lit in clause {
            let v = lit.var().0 as i64 + 1;
            let _ = write!(out, "{} ", if lit.is_positive() { v } else { -v });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF input. Comment lines (`c ...`) and `%`/empty lines
/// are skipped; clauses may span lines.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] on a missing/malformed header, a
/// malformed literal, a variable out of the declared range, or an
/// unterminated final clause.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let err = |line: usize, message: String| ParseDimacsError { line, message };
    let mut declared_vars: Option<u32> = None;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            if declared_vars.is_some() {
                return Err(err(lineno, "duplicate header".to_string()));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 || fields[1] != "cnf" {
                return Err(err(lineno, format!("bad header {line:?}")));
            }
            let nv: u32 = fields[2]
                .parse()
                .map_err(|_| err(lineno, format!("bad var count {:?}", fields[2])))?;
            declared_vars = Some(nv);
            cnf.num_vars = nv;
            continue;
        }
        let nv = declared_vars.ok_or_else(|| err(lineno, "clause before header".to_string()))?;
        for tok in line.split_whitespace() {
            let lit: i64 = tok
                .parse()
                .map_err(|_| err(lineno, format!("bad literal {tok:?}")))?;
            if lit == 0 {
                cnf.add_clause(std::mem::take(&mut current));
                continue;
            }
            let var = lit.unsigned_abs() as u32 - 1;
            if var >= nv {
                return Err(err(lineno, format!("variable {} out of range", lit.abs())));
            }
            current.push(if lit > 0 {
                Var(var).pos()
            } else {
                Var(var).neg()
            });
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause (missing 0)".to_string(),
        });
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solution, Solver};

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        let (a, b, c) = (cnf.fresh_var(), cnf.fresh_var(), cnf.fresh_var());
        cnf.add_clause(vec![a.pos(), b.neg()]);
        cnf.add_clause(vec![b.pos(), c.pos()]);
        cnf.add_clause(vec![c.neg()]);
        let text = to_dimacs(&cnf);
        let parsed = from_dimacs(&text).expect("parse");
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn parses_standard_layout() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = from_dimacs(text).expect("parse");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert!(Solver::new(&cnf).solve().is_sat());
    }

    #[test]
    fn clauses_may_span_lines() {
        let text = "p cnf 2 1\n1\n-2\n0\n";
        let cnf = from_dimacs(text).expect("parse");
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_dimacs("1 2 0\n").is_err(), "clause before header");
        assert!(from_dimacs("p cnf x 1\n1 0\n").is_err(), "bad var count");
        assert!(from_dimacs("p cnf 1 1\n2 0\n").is_err(), "var out of range");
        assert!(from_dimacs("p cnf 1 1\n1\n").is_err(), "unterminated");
        assert!(from_dimacs("p cnf 1 1\np cnf 1 1\n").is_err(), "dup header");
        assert!(from_dimacs("p cnf 1 1\nq 0\n").is_err(), "bad literal");
    }

    #[test]
    fn solves_a_dimacs_unsat_instance() {
        // (x) ∧ (¬x)
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = from_dimacs(text).expect("parse");
        assert_eq!(Solver::new(&cnf).solve(), Solution::Unsat);
    }
}
