//! Propositional formulas and the Tseitin CNF transformation.

use std::fmt;

use crate::{Cnf, Lit, Solver, Var};

/// An arbitrary propositional formula over numbered variables.
///
/// This is the interface through which JANUS poses equivalence queries:
/// relational content formulas (Table 4) are translated to `PropFormula`s
/// over tuple-membership atoms, and `f ≡ g` is decided by checking
/// `¬(f ↔ g)` for unsatisfiability (§6.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A propositional variable.
    Var(u32),
    /// Negation.
    Not(Box<PropFormula>),
    /// Conjunction.
    And(Box<PropFormula>, Box<PropFormula>),
    /// Disjunction.
    Or(Box<PropFormula>, Box<PropFormula>),
    /// Biconditional.
    Iff(Box<PropFormula>, Box<PropFormula>),
}

impl PropFormula {
    /// The variable `x_i`.
    pub fn var(i: u32) -> Self {
        PropFormula::Var(i)
    }

    /// Negation with constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            PropFormula::True => PropFormula::False,
            PropFormula::False => PropFormula::True,
            PropFormula::Not(f) => *f,
            f => PropFormula::Not(Box::new(f)),
        }
    }

    /// Conjunction with constant folding.
    pub fn and(self, other: PropFormula) -> Self {
        match (self, other) {
            (PropFormula::False, _) | (_, PropFormula::False) => PropFormula::False,
            (PropFormula::True, g) => g,
            (f, PropFormula::True) => f,
            (f, g) => PropFormula::And(Box::new(f), Box::new(g)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(self, other: PropFormula) -> Self {
        match (self, other) {
            (PropFormula::True, _) | (_, PropFormula::True) => PropFormula::True,
            (PropFormula::False, g) => g,
            (f, PropFormula::False) => f,
            (f, g) => PropFormula::Or(Box::new(f), Box::new(g)),
        }
    }

    /// Biconditional `self ↔ other`.
    pub fn iff(self, other: PropFormula) -> Self {
        match (self, other) {
            (PropFormula::True, g) => g,
            (f, PropFormula::True) => f,
            (PropFormula::False, g) => g.not(),
            (f, PropFormula::False) => f.not(),
            (f, g) => PropFormula::Iff(Box::new(f), Box::new(g)),
        }
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            PropFormula::True | PropFormula::False => None,
            PropFormula::Var(i) => Some(*i),
            PropFormula::Not(f) => f.max_var(),
            PropFormula::And(f, g) | PropFormula::Or(f, g) | PropFormula::Iff(f, g) => {
                match (f.max_var(), g.max_var()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// Evaluates the formula under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            PropFormula::True => true,
            PropFormula::False => false,
            PropFormula::Var(i) => assignment[*i as usize],
            PropFormula::Not(f) => !f.eval(assignment),
            PropFormula::And(f, g) => f.eval(assignment) && g.eval(assignment),
            PropFormula::Or(f, g) => f.eval(assignment) || g.eval(assignment),
            PropFormula::Iff(f, g) => f.eval(assignment) == g.eval(assignment),
        }
    }
}

impl fmt::Display for PropFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropFormula::True => write!(f, "⊤"),
            PropFormula::False => write!(f, "⊥"),
            PropFormula::Var(i) => write!(f, "x{i}"),
            PropFormula::Not(g) => write!(f, "¬{g}"),
            PropFormula::And(g, h) => write!(f, "({g} ∧ {h})"),
            PropFormula::Or(g, h) => write!(f, "({g} ∨ {h})"),
            PropFormula::Iff(g, h) => write!(f, "({g} ↔ {h})"),
        }
    }
}

/// Tseitin-transforms `f` into an equisatisfiable CNF.
///
/// Input variables `0..=max_var` keep their indices; auxiliary definition
/// variables are allocated above them. The returned CNF asserts the
/// root definition literal, so it is satisfiable iff `f` is.
pub fn tseitin(f: &PropFormula) -> Cnf {
    let mut cnf = Cnf::new();
    let input_vars = f.max_var().map_or(0, |m| m + 1);
    cnf.num_vars = input_vars;
    let root = encode(f, &mut cnf);
    cnf.add_clause(vec![root]);
    cnf
}

/// Returns a literal equivalent to `f` under the definitions added to
/// `cnf`.
fn encode(f: &PropFormula, cnf: &mut Cnf) -> Lit {
    match f {
        PropFormula::True => {
            let v = cnf.fresh_var();
            cnf.add_clause(vec![v.pos()]);
            v.pos()
        }
        PropFormula::False => {
            let v = cnf.fresh_var();
            cnf.add_clause(vec![v.pos()]);
            v.neg()
        }
        PropFormula::Var(i) => {
            let v = Var(*i);
            cnf.ensure_var(v);
            v.pos()
        }
        PropFormula::Not(g) => !encode(g, cnf),
        PropFormula::And(g, h) => {
            let a = encode(g, cnf);
            let b = encode(h, cnf);
            let d = cnf.fresh_var().pos();
            // d ↔ a ∧ b
            cnf.add_clause(vec![!d, a]);
            cnf.add_clause(vec![!d, b]);
            cnf.add_clause(vec![d, !a, !b]);
            d
        }
        PropFormula::Or(g, h) => {
            let a = encode(g, cnf);
            let b = encode(h, cnf);
            let d = cnf.fresh_var().pos();
            // d ↔ a ∨ b
            cnf.add_clause(vec![!d, a, b]);
            cnf.add_clause(vec![d, !a]);
            cnf.add_clause(vec![d, !b]);
            d
        }
        PropFormula::Iff(g, h) => {
            let a = encode(g, cnf);
            let b = encode(h, cnf);
            let d = cnf.fresh_var().pos();
            // d ↔ (a ↔ b)
            cnf.add_clause(vec![!d, !a, b]);
            cnf.add_clause(vec![!d, a, !b]);
            cnf.add_clause(vec![d, a, b]);
            cnf.add_clause(vec![d, !a, !b]);
            d
        }
    }
}

/// Whether `f` is satisfiable, assuming every clause in `axioms`
/// (additional CNF clauses over the same variables, e.g. column
/// exclusivity constraints) holds.
pub fn is_satisfiable(f: &PropFormula, axioms: &[Vec<Lit>]) -> bool {
    let mut cnf = tseitin(f);
    for clause in axioms {
        cnf.add_clause(clause.clone());
    }
    Solver::new(&cnf).solve().is_sat()
}

/// Whether `f ≡ g` under the given axioms: checks `¬(f ↔ g) ∧ axioms`
/// for unsatisfiability, exactly as §6.2 prescribes.
pub fn is_equivalent(f: &PropFormula, g: &PropFormula, axioms: &[Vec<Lit>]) -> bool {
    let query = f.clone().iff(g.clone()).not();
    match query {
        PropFormula::True => false,
        PropFormula::False => true,
        q => !is_satisfiable(&q, axioms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = PropFormula;

    #[test]
    fn tseitin_preserves_satisfiability() {
        // (x0 ∨ x1) ∧ ¬x0 is satisfiable (x1 = true).
        let f = P::var(0).or(P::var(1)).and(P::var(0).not());
        let cnf = tseitin(&f);
        let sol = Solver::new(&cnf).solve();
        let m = sol.model().expect("sat");
        assert!(!m[0] && m[1]);
    }

    #[test]
    fn tseitin_unsat() {
        let f = P::And(Box::new(P::var(0)), Box::new(P::Not(Box::new(P::var(0)))));
        assert!(!is_satisfiable(&f, &[]));
    }

    #[test]
    fn constants() {
        assert!(is_satisfiable(&P::True, &[]));
        assert!(!is_satisfiable(&P::False, &[]));
        assert!(is_equivalent(&P::True, &P::True, &[]));
        assert!(!is_equivalent(&P::True, &P::False, &[]));
    }

    #[test]
    fn de_morgan() {
        let lhs = P::var(0).and(P::var(1)).not();
        let rhs = P::var(0).not().or(P::var(1).not());
        assert!(is_equivalent(&lhs, &rhs, &[]));
    }

    #[test]
    fn distribution() {
        // x0 ∧ (x1 ∨ x2) ≡ (x0 ∧ x1) ∨ (x0 ∧ x2)
        let lhs = P::var(0).and(P::var(1).or(P::var(2)));
        let rhs = P::var(0).and(P::var(1)).or(P::var(0).and(P::var(2)));
        assert!(is_equivalent(&lhs, &rhs, &[]));
        // but not ≡ x0 ∨ (x1 ∧ x2)
        let other = P::var(0).or(P::var(1).and(P::var(2)));
        assert!(!is_equivalent(&lhs, &other, &[]));
    }

    #[test]
    fn equivalence_modulo_axioms() {
        // With the axiom ¬x0 ∨ ¬x1 (x0 and x1 mutually exclusive),
        // x0 ∧ x1 ≡ false.
        let f = P::var(0).and(P::var(1));
        let axioms = vec![vec![Var(0).neg(), Var(1).neg()]];
        assert!(is_equivalent(&f, &P::False, &axioms));
        assert!(!is_equivalent(&f, &P::False, &[]));
    }

    #[test]
    fn iff_connective() {
        let f = P::var(0).iff(P::var(1));
        // Satisfiable both ways.
        assert!(is_satisfiable(&f, &[]));
        assert!(is_satisfiable(&f.clone().not(), &[]));
        // (x0 ↔ x1) ≡ (x0∧x1) ∨ (¬x0∧¬x1)
        let expanded = P::var(0)
            .and(P::var(1))
            .or(P::var(0).not().and(P::var(1).not()));
        assert!(is_equivalent(&f, &expanded, &[]));
    }

    #[test]
    fn eval_matches_semantics() {
        let f = P::var(0).or(P::var(1)).and(P::var(2).not());
        assert!(f.eval(&[true, false, false]));
        assert!(!f.eval(&[true, false, true]));
        assert!(!f.eval(&[false, false, false]));
    }

    #[test]
    fn tseitin_equisatisfiable_exhaustive() {
        // Enumerate a family of small formulas and cross-check tseitin
        // satisfiability against brute-force evaluation.
        let formulas = vec![
            P::var(0),
            P::var(0).not(),
            P::var(0).and(P::var(1)),
            P::var(0)
                .or(P::var(1))
                .and(P::var(0).not().or(P::var(1).not())),
            P::var(0).iff(P::var(1)).iff(P::var(2)),
            P::var(0)
                .and(P::var(1).or(P::var(2)))
                .and(P::var(0).not().or(P::var(2).not()))
                .and(P::var(1).not()),
        ];
        for f in formulas {
            let n = f.max_var().map_or(0, |m| m + 1);
            let brute = (0..1u32 << n).any(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                f.eval(&a)
            });
            assert_eq!(is_satisfiable(&f, &[]), brute, "formula {f}");
        }
    }

    #[test]
    fn max_var_is_computed() {
        assert_eq!(P::True.max_var(), None);
        assert_eq!(P::var(3).max_var(), Some(3));
        assert_eq!(P::var(3).and(P::var(7)).max_var(), Some(7));
    }
}
