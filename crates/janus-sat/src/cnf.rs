//! CNF representation: variables, literals and clauses.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`, positive iff `positive`.
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code suitable for indexing watch lists (`2*var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        self.negated()
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// The clauses.
    pub clauses: Vec<Clause>,
    /// Number of variables (all clause literals range over `0..num_vars`).
    pub num_vars: u32,
}

impl Cnf {
    /// An empty (trivially satisfiable) CNF.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures `num_vars` covers variable `v`.
    pub fn ensure_var(&mut self, v: Var) {
        if v.0 >= self.num_vars {
            self.num_vars = v.0 + 1;
        }
    }

    /// Adds a clause, growing the variable count as needed.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            self.ensure_var(lit.var());
        }
        self.clauses.push(clause);
    }

    /// Evaluates the CNF under a total assignment (indexed by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(v.pos().negated(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(v.pos().code(), 14);
        assert_eq!(v.neg().code(), 15);
    }

    #[test]
    fn cnf_var_accounting() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        assert_eq!((a, b), (Var(0), Var(1)));
        cnf.add_clause(vec![Var(5).pos()]);
        assert_eq!(cnf.num_vars, 6);
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        cnf.add_clause(vec![Var(0).pos(), Var(1).neg()]);
        cnf.add_clause(vec![Var(1).pos()]);
        assert!(cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false])); // second clause falsified
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new();
        assert!(cnf.eval(&[]));
        assert_eq!(format!("{cnf}"), "⊤");
    }
}
