//! Property tests: the CDCL solver and the Tseitin transformation agree
//! with brute-force evaluation on random formulas and CNFs.

use janus_sat::{is_equivalent, is_satisfiable, tseitin, Cnf, PropFormula, Solver, Var};
use proptest::prelude::*;

const MAX_VARS: u32 = 6;

fn formula_strategy() -> impl Strategy<Value = PropFormula> {
    let leaf = prop_oneof![
        (0..MAX_VARS).prop_map(PropFormula::var),
        Just(PropFormula::True),
        Just(PropFormula::False),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner).prop_map(|(f, g)| f.iff(g)),
        ]
    })
}

fn brute_sat(f: &PropFormula) -> bool {
    let n = f.max_var().map_or(0, |m| m + 1);
    (0..1u32 << n).any(|bits| {
        let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        f.eval(&a)
    })
}

proptest! {
    #[test]
    fn tseitin_satisfiability_matches_brute_force(f in formula_strategy()) {
        prop_assert_eq!(is_satisfiable(&f, &[]), brute_sat(&f));
    }

    #[test]
    fn equivalence_matches_brute_force(f in formula_strategy(), g in formula_strategy()) {
        let n = f.max_var().max(g.max_var()).map_or(0, |m| m + 1);
        let brute_equiv = (0..1u32 << n).all(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            f.eval(&a) == g.eval(&a)
        });
        prop_assert_eq!(is_equivalent(&f, &g, &[]), brute_equiv);
    }

    #[test]
    fn solver_models_satisfy_random_cnfs(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0..MAX_VARS, any::<bool>()), 1..4),
            1..24
        )
    ) {
        let mut cnf = Cnf::new();
        for clause in &clauses {
            cnf.add_clause(
                clause
                    .iter()
                    .map(|&(v, pos)| if pos { Var(v).pos() } else { Var(v).neg() })
                    .collect(),
            );
        }
        let n = cnf.num_vars;
        let brute = (0..1u32 << n).any(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&a)
        });
        let solution = Solver::new(&cnf).solve();
        prop_assert_eq!(solution.is_sat(), brute);
        if let Some(model) = solution.model() {
            prop_assert!(cnf.eval(model), "reported model must satisfy the CNF");
        }
    }

    #[test]
    fn tseitin_preserves_input_variable_semantics(f in formula_strategy()) {
        // Any model of the Tseitin CNF, restricted to the input
        // variables, satisfies the original formula.
        let cnf = tseitin(&f);
        if let Some(model) = Solver::new(&cnf).solve().model() {
            let n = f.max_var().map_or(0, |m| m + 1) as usize;
            let inputs: Vec<bool> = model.iter().copied().take(n.max(1)).collect();
            if n > 0 {
                prop_assert!(f.eval(&inputs));
            }
        }
    }
}
