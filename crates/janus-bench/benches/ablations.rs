//! Ablation benchmarks for the design decisions called out in DESIGN.md.
//!
//! * **D3 — cached vs online sequence checks**: end-to-end simulated runs
//!   under the online detector vs the trained cache. The online mode
//!   re-evaluates `SAMEREAD`/`COMMUTE` per query (quadratic in sequence
//!   length); the cache answers in one summary fold.
//! * **D4 — persistent vs eager privatization**: transaction begin with
//!   the O(1) persistent snapshot vs a deep copy of the whole store, on a
//!   store with a large relational object.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_adt::MapAdt;
use janus_bench::experiments::{grid_input, trained_cache};
use janus_bench::sim::simulate;
use janus_core::{Janus, Store, Task};
use janus_detect::{CachedSequenceDetector, ConflictDetector, SequenceDetector, WriteSetDetector};
use janus_relational::Scalar;
use janus_workloads::workload_by_name;

/// D3: online vs cached sequence detection on the identity-heavy
/// JFileSync workload.
fn bench_online_vs_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_d3_online_vs_cached");
    let workload = workload_by_name("jfilesync").expect("workload exists");
    let w = workload.as_ref();
    let input = grid_input(w, true);

    let online: Arc<dyn ConflictDetector> =
        Arc::new(SequenceDetector::with_relaxations(w.relaxations()));
    group.bench_with_input(
        BenchmarkId::new("online", input.scale),
        &input,
        |b, input| {
            b.iter(|| {
                let scenario = w.build(input);
                simulate(scenario.store, &scenario.tasks, &online, 8, false)
            })
        },
    );

    let cached: Arc<dyn ConflictDetector> = Arc::new(CachedSequenceDetector::with_relaxations(
        trained_cache(w, true),
        w.relaxations(),
    ));
    group.bench_with_input(
        BenchmarkId::new("cached", input.scale),
        &input,
        |b, input| {
            b.iter(|| {
                let scenario = w.build(input);
                simulate(scenario.store, &scenario.tasks, &cached, 8, false)
            })
        },
    );
    group.finish();
}

/// D4: persistent O(1) snapshots vs eager deep-copy privatization.
fn bench_privatization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_d4_privatization");
    for map_size in [100i64, 1_000, 10_000] {
        let mut store = Store::new();
        let map = MapAdt::alloc_with(
            &mut store,
            "big",
            (0..map_size).map(|i| (Scalar::Int(i), Scalar::Int(i))),
        );
        let tasks: Vec<Task> = (0..16)
            .map(|i| {
                let map = map.clone();
                Task::new(move |tx| {
                    map.put(tx, 1_000_000 + i as i64, 1i64);
                })
            })
            .collect();
        for eager in [false, true] {
            let label = if eager { "eager-copy" } else { "persistent" };
            group.bench_with_input(BenchmarkId::new(label, map_size), &map_size, |b, _| {
                b.iter(|| {
                    let janus = Janus::new(Arc::new(WriteSetDetector::new()))
                        .threads(1)
                        .eager_privatization(eager);
                    janus.run(store.clone(), tasks.clone())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_online_vs_cached, bench_privatization
}
criterion_main!(benches);
