//! Microbenchmark: per-query conflict-detection cost.
//!
//! Validates the paper's central performance claim (§3): sequence-based
//! detection through the trained cache costs about the same per conflict
//! query as the write-set check, while the *online* sequence check is
//! markedly more expensive (which is why it is not the production mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_detect::{
    CachedSequenceDetector, ConflictDetector, MapState, SequenceDetector, WriteSetDetector,
};
use janus_log::{ClassId, LocId, Op, OpKind, ScalarOp};
use janus_relational::Value;
use janus_train::{train, TrainConfig, TrainingRun};

/// Builds a balanced add/sub log of the given length over one location.
fn identity_log(len: usize) -> Vec<Op> {
    let mut v = Value::int(0);
    let mut out = Vec::with_capacity(len);
    for i in 0..(len / 2) {
        let d = i as i64 + 1;
        for delta in [d, -d] {
            out.push(
                Op::execute(
                    LocId(0),
                    ClassId::new("work"),
                    OpKind::Scalar(ScalarOp::Add(delta)),
                    &mut v,
                )
                .0,
            );
        }
    }
    out
}

fn trained_cache() -> janus_train::CommutativityCache {
    let mut initial = MapState::default();
    initial.0.insert(LocId(0), Value::int(0));
    let run = TrainingRun {
        initial,
        task_logs: vec![identity_log(4), identity_log(8)],
    };
    train(&[run], TrainConfig::default()).0
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_query");
    let mut entry = MapState::default();
    entry.0.insert(LocId(0), Value::int(0));

    for len in [2usize, 8, 32, 128] {
        let txn = identity_log(len);
        let committed = identity_log(len);

        let ws = WriteSetDetector::new();
        group.bench_with_input(BenchmarkId::new("write-set", len), &len, |b, _| {
            b.iter(|| ws.detect_ops(&entry, &txn, &committed))
        });

        let online = SequenceDetector::new();
        group.bench_with_input(BenchmarkId::new("sequence-online", len), &len, |b, _| {
            b.iter(|| online.detect_ops(&entry, &txn, &committed))
        });

        let cached = CachedSequenceDetector::new(trained_cache());
        group.bench_with_input(BenchmarkId::new("sequence-cached", len), &len, |b, _| {
            b.iter(|| cached.detect_ops(&entry, &txn, &committed))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_detectors
}
criterion_main!(benches);
