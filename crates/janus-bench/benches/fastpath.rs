//! Microbenchmark: the footprint-fingerprint validation fast path.
//!
//! Measures one incremental validation pass (`begin_validation` +
//! `extend` over a multi-segment [`HistoryWindow`]) with the fingerprint
//! prefilter on versus off, across two workload poles:
//!
//! * **disjoint** — the history segments touch locations the transaction
//!   never does, so the prefilter dismisses every segment in O(1) and the
//!   win grows linearly with history length;
//! * **overlap** — every segment touches the transaction's footprint, so
//!   the prefilter can skip nothing and its cost must stay in the noise.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_detect::{ConflictDetector, MapState, SequenceDetector, WriteSetDetector};
use janus_log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus_relational::Value;

/// A balanced add/subtract log over `locs`, one op pair per location.
fn footprint_log(locs: impl Iterator<Item = u64>, class_stride: u64) -> Vec<Op> {
    let mut out = Vec::new();
    for loc in locs {
        let mut v = Value::int(0);
        for delta in [1i64, -1] {
            out.push(
                Op::execute(
                    LocId(loc),
                    ClassId::new(format!("c{}", loc / class_stride)),
                    OpKind::Scalar(ScalarOp::Add(delta)),
                    &mut v,
                )
                .0,
            );
        }
    }
    out
}

/// `overlap == false`: each segment gets four fresh locations far from
/// the transaction footprint. `overlap == true`: every segment touches
/// locations 0..4, inside the transaction footprint, so no segment can
/// be skipped (balanced adds commute, so the sequence detector still
/// scans the whole window instead of short-circuiting on a conflict).
fn history(n_segments: usize, overlap: bool) -> Vec<Arc<CommittedLog>> {
    (0..n_segments as u64)
        .map(|i| {
            let locs = if overlap {
                0..4u64
            } else {
                1_000 + i * 4..1_000 + i * 4 + 4
            };
            Arc::new(CommittedLog::new(footprint_log(locs, 4)))
        })
        .collect()
}

fn bench_fastpath(c: &mut Criterion) {
    let entry = MapState::default();
    let txn = CommittedLog::new(footprint_log(0..8, 4));

    for (workload, overlap) in [("disjoint", false), ("overlap", true)] {
        let mut group = c.benchmark_group(format!("fastpath_{workload}"));
        for n_segments in [16usize, 64, 256] {
            let segments = history(n_segments, overlap);
            let window = HistoryWindow::new(&segments);

            for (mode, prefilter) in [("prefilter-on", true), ("prefilter-off", false)] {
                let ws = WriteSetDetector::new().prefilter(prefilter);
                group.bench_with_input(
                    BenchmarkId::new(format!("write-set/{mode}"), n_segments),
                    &n_segments,
                    |b, _| {
                        b.iter(|| ws.begin_validation(&entry, &txn).extend(&window));
                    },
                );

                let seq = SequenceDetector::new().prefilter(prefilter);
                group.bench_with_input(
                    BenchmarkId::new(format!("sequence/{mode}"), n_segments),
                    &n_segments,
                    |b, _| {
                        b.iter(|| seq.begin_validation(&entry, &txn).extend(&window));
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fastpath
}
criterion_main!(benches);
