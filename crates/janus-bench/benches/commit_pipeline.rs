//! Macrobenchmark: validation cost under mid-validation clock advances.
//!
//! Models the hot path of `RUNTASK`: a transaction validates against the
//! committed window `[begin, now)`, but the clock keeps advancing while
//! it validates, so the window must be re-checked several times before
//! the commit lock is won. Two strategies are compared across window
//! sizes:
//!
//! * **flat-reclone** — the pre-pipeline behaviour: every clock advance
//!   flattens the whole window into a fresh `Vec<Op>` and re-runs
//!   detection from scratch (cost grows with `advances × window`);
//! * **zero-copy-incremental** — one validation session over shared
//!   pre-decomposed segments, extended with only the delta `[validated,
//!   now)` at each advance (cost grows with the window once, plus the
//!   deltas).
//!
//! Most committed segments touch locations foreign to the transaction,
//! so the per-location index lets the incremental path skip them without
//! visiting a single operation — validation cost becomes sublinear in
//! the window, which is the pipeline's acceptance criterion.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_detect::{ConflictDetector, MapState, SequenceDetector, WriteSetDetector};
use janus_log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus_relational::Value;

/// Clock advances observed during one validation.
const ADVANCES: usize = 4;
/// Operations per committed segment.
const SEG_OPS: usize = 8;

fn add(loc: u64, delta: i64, v: &mut Value) -> Op {
    Op::execute(
        LocId(loc),
        ClassId::new("work"),
        OpKind::Scalar(ScalarOp::Add(delta)),
        v,
    )
    .0
}

/// Balanced add/sub log on one location (commutes with itself).
fn balanced_log(loc: u64, len: usize) -> Vec<Op> {
    let mut v = Value::int(0);
    (0..len / 2)
        .flat_map(|i| [i as i64 + 1, -(i as i64 + 1)])
        .map(|d| add(loc, d, &mut v))
        .collect()
}

/// `n` committed segments: every fourth touches the transaction's
/// location (with commuting adds), the rest touch foreign locations.
fn committed_segments(n: usize) -> Vec<Arc<CommittedLog>> {
    (0..n)
        .map(|i| {
            let loc = if i % 4 == 0 { 0 } else { 1 + (i % 8) as u64 };
            Arc::new(CommittedLog::new(balanced_log(loc, SEG_OPS)))
        })
        .collect()
}

fn entry_state() -> MapState {
    let mut s = MapState::default();
    for loc in 0..9 {
        s.0.insert(LocId(loc), Value::int(0));
    }
    s
}

/// The window boundary after advance `j` of `ADVANCES` over `n` segments.
fn cut(n: usize, j: usize) -> usize {
    n * j / ADVANCES
}

/// Pre-pipeline validation: each clock advance re-flattens `[begin, now)`
/// and re-detects from scratch.
fn flat_reclone(
    det: &dyn ConflictDetector,
    entry: &MapState,
    txn: &[Op],
    segs: &[Arc<CommittedLog>],
) -> bool {
    let mut conflict = false;
    for j in 1..=ADVANCES {
        let window: Vec<Op> = segs[..cut(segs.len(), j)]
            .iter()
            .flat_map(|s| s.ops().iter().cloned())
            .collect();
        conflict = det.detect_ops(entry, txn, &window);
    }
    conflict
}

/// Pipelined validation: one session, extended with each delta.
fn zero_copy_incremental(
    det: &dyn ConflictDetector,
    entry: &MapState,
    txn: &CommittedLog,
    segs: &[Arc<CommittedLog>],
) -> bool {
    let mut session = det.begin_validation(entry, txn);
    let mut conflict = false;
    for j in 1..=ADVANCES {
        let delta = &segs[cut(segs.len(), j - 1)..cut(segs.len(), j)];
        conflict = session.extend(&HistoryWindow::new(delta));
    }
    conflict
}

fn bench_pipeline(c: &mut Criterion) {
    let entry = entry_state();
    let txn_ops = balanced_log(0, SEG_OPS);
    let txn = CommittedLog::new(txn_ops.clone());

    for (det_name, det) in [
        (
            "sequence",
            &SequenceDetector::new() as &dyn ConflictDetector,
        ),
        ("write-set", &WriteSetDetector::new()),
    ] {
        let mut group = c.benchmark_group(format!("commit_pipeline/{det_name}"));
        for n_segments in [8usize, 32, 128, 512] {
            let segs = committed_segments(n_segments);

            group.bench_with_input(
                BenchmarkId::new("flat-reclone", n_segments),
                &n_segments,
                |b, _| b.iter(|| black_box(flat_reclone(det, &entry, &txn_ops, &segs))),
            );
            group.bench_with_input(
                BenchmarkId::new("zero-copy-incremental", n_segments),
                &n_segments,
                |b, _| b.iter(|| black_box(zero_copy_incremental(det, &entry, &txn, &segs))),
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pipeline
}
criterion_main!(benches);
