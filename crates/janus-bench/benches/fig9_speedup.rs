//! Figure 9: end-to-end parallel-region time per workload and detector
//! (virtual 8-thread simulation over quick production inputs).
//!
//! The `figures --fig9` binary prints the full speedup grid; this bench
//! tracks the same runs as regression-sensitive time series.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_bench::experiments::{grid_input, trained_cache};
use janus_bench::sim::simulate;
use janus_detect::{CachedSequenceDetector, ConflictDetector, WriteSetDetector};
use janus_workloads::all_workloads;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_parallel_region");
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, true);
        let cache = Arc::new(trained_cache(w, true));

        let ws: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
        group.bench_with_input(
            BenchmarkId::new(w.name(), "write-set"),
            &input,
            |b, input| {
                b.iter(|| {
                    let scenario = w.build(input);
                    simulate(scenario.store, &scenario.tasks, &ws, 8, w.ordered())
                })
            },
        );

        let seq: Arc<dyn ConflictDetector> = Arc::new(CachedSequenceDetector::with_relaxations(
            Arc::clone(&cache),
            w.relaxations(),
        ));
        group.bench_with_input(
            BenchmarkId::new(w.name(), "sequence"),
            &input,
            |b, input| {
                b.iter(|| {
                    let scenario = w.build(input);
                    simulate(scenario.store, &scenario.tasks, &seq, 8, w.ordered())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fig9
}
criterion_main!(benches);
