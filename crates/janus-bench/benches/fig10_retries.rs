//! Figure 10: retry behavior per workload and detector.
//!
//! Retry counts are not a duration, so each configuration's
//! retries-per-transaction ratio is printed once before benchmarking the
//! corresponding parallel region (whose time is dominated by exactly the
//! wasted re-executions Figure 10 counts).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_bench::experiments::{grid_input, trained_cache};
use janus_bench::sim::simulate;
use janus_detect::{CachedSequenceDetector, ConflictDetector, WriteSetDetector};
use janus_workloads::all_workloads;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_retries");
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, true);
        let cache = Arc::new(trained_cache(w, true));
        let detectors: Vec<(&str, Arc<dyn ConflictDetector>)> = vec![
            ("write-set", Arc::new(WriteSetDetector::new())),
            (
                "sequence",
                Arc::new(CachedSequenceDetector::with_relaxations(
                    Arc::clone(&cache),
                    w.relaxations(),
                )),
            ),
        ];
        for (label, detector) in detectors {
            // Report the ratio once, out of band.
            let scenario = w.build(&input);
            let (_, metrics) = simulate(scenario.store, &scenario.tasks, &detector, 8, w.ordered());
            eprintln!(
                "fig10 {} {}: {} retries / {} txns = {:.3}",
                w.name(),
                label,
                metrics.retries,
                metrics.commits,
                metrics.retry_ratio()
            );
            group.bench_with_input(BenchmarkId::new(w.name(), label), &input, |b, input| {
                b.iter(|| {
                    let scenario = w.build(input);
                    simulate(scenario.store, &scenario.tasks, &detector, 8, w.ordered())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fig10
}
criterion_main!(benches);
