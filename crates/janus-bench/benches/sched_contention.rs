//! Scheduling policies under the hotspot contention workload.
//!
//! Retry ratios are reported once out of band (they are counts, not
//! durations); the benchmark then times the parallel region under each
//! policy — whose wall clock is dominated by exactly the wasted
//! re-executions the retry counts measure.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_bench::contention::contention_sweep;
use janus_core::{Janus, Store, Task, TxView};
use janus_detect::WriteSetDetector;
use janus_sched::{Affinity, Backoff, ExactFootprints, Fifo, SchedulePolicy};

/// A fully-hot scenario: every task read-modify-writes one counter.
fn hot_scenario(n: usize) -> (Store, Vec<Task>, Vec<Vec<u64>>) {
    let mut store = Store::new();
    let hot = store.alloc("hot", janus_relational::Value::int(0));
    let tasks: Vec<Task> = (1..=n as i64)
        .map(|d| {
            Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(hot);
                tx.write(hot, v + d);
            })
        })
        .collect();
    let footprints = vec![vec![hot.0]; n];
    (store, tasks, footprints)
}

fn bench_sched(c: &mut Criterion) {
    // Report the full sweep's retry picture once, out of band.
    for p in contention_sweep(true) {
        eprintln!(
            "contention {}% {} (degrade {}): {} retries / {} txns = {:.3}, wall/seq {:.2}",
            p.hot_pct,
            p.policy,
            if p.degrade { "on" } else { "off" },
            p.retries,
            p.commits,
            p.retry_ratio(),
            p.wall_vs_sequential(),
        );
    }

    let n = 48;
    let (_, _, footprints) = hot_scenario(n);
    let policies: Vec<(&str, Arc<dyn SchedulePolicy>)> = vec![
        ("fifo", Arc::new(Fifo)),
        ("backoff", Arc::new(Backoff::default())),
        (
            "affinity",
            Arc::new(Affinity::new(Arc::new(ExactFootprints(footprints)))),
        ),
    ];
    let mut group = c.benchmark_group("sched_contention");
    for (label, policy) in policies {
        group.bench_with_input(BenchmarkId::new("hot100", label), &policy, |b, policy| {
            b.iter(|| {
                let (store, tasks, _) = hot_scenario(n);
                Janus::new(Arc::new(WriteSetDetector::new()))
                    .threads(4)
                    .schedule(Arc::clone(policy))
                    .run(store, tasks)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sched
}
criterion_main!(benches);
