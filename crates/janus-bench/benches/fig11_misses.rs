//! Figure 11: cache generalization — unique-query miss rates with and
//! without sequence abstraction, plus the time cost of the cache path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_bench::experiments::{grid_input, trained_cache};
use janus_bench::sim::simulate;
use janus_detect::{CachedSequenceDetector, ConflictDetector};
use janus_workloads::all_workloads;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_misses");
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, true);
        for use_abstraction in [true, false] {
            let label = if use_abstraction { "abs" } else { "noabs" };
            let detector = Arc::new(CachedSequenceDetector::with_relaxations(
                trained_cache(w, use_abstraction),
                w.relaxations(),
            ));
            let dyn_det: Arc<dyn ConflictDetector> = detector.clone();
            // One reporting run for the miss rate.
            let scenario = w.build(&input);
            let _ = simulate(scenario.store, &scenario.tasks, &dyn_det, 8, w.ordered());
            let (hits, misses) = detector.oracle().stats().unique_counts();
            let rate = if hits + misses > 0 {
                100.0 * misses as f64 / (hits + misses) as f64
            } else {
                0.0
            };
            eprintln!(
                "fig11 {} {label}: {misses} unique misses / {} unique queries = {rate:.1}%",
                w.name(),
                hits + misses
            );
            group.bench_with_input(BenchmarkId::new(w.name(), label), &input, |b, input| {
                b.iter(|| {
                    let scenario = w.build(input);
                    simulate(scenario.store, &scenario.tasks, &dyn_det, 8, w.ordered())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .plotting_backend(criterion::PlottingBackend::None)
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fig11
}
criterion_main!(benches);
