//! The contention sweep: scheduling policies under a hotspot workload.
//!
//! A synthetic workload dials contention directly: `hot_pct` percent of
//! the tasks read-modify-write one shared hot counter (a non-commuting
//! access pattern under write-set detection, so every overlapping pair
//! aborts), while the rest increment private locations. The sweep runs
//! every scheduling policy (`fifo`, `backoff`, `affinity`, `steal`), with and
//! without serial-fallback degradation, against a sequential baseline —
//! measuring how much of the seed scheduler's hot-restart retry storm
//! each policy removes, and what the degraded worst case costs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use janus_core::{Janus, Store, Task, TxView};
use janus_detect::WriteSetDetector;
use janus_sched::{
    Affinity, Backoff, DegradeConfig, ExactFootprints, Fifo, SchedulePolicy, WorkSteal,
};

/// One measured point of the contention sweep.
#[derive(Debug, Clone)]
pub struct ContentionPoint {
    /// Percentage of tasks hitting the shared hot counter.
    pub hot_pct: u32,
    /// Scheduling policy label ("fifo", "backoff", "affinity", "steal").
    pub policy: &'static str,
    /// Whether serial-fallback degradation was enabled.
    pub degrade: bool,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub retries: u64,
    /// Parallel wall-clock time.
    pub wall: Duration,
    /// Sequential baseline wall-clock time for the same task list.
    pub seq_wall: Duration,
    /// Windows in which the feedback loop degraded.
    pub degrade_windows: u64,
    /// Backoff waits performed.
    pub backoff_waits: u64,
    /// Serialized (token-holding) retries.
    pub serial_retries: u64,
    /// Whether the final state matched the expected sums.
    pub check_ok: bool,
}

impl ContentionPoint {
    /// Retries per transaction.
    pub fn retry_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.retries as f64 / self.commits as f64
        }
    }

    /// Parallel wall over sequential wall (< 1 is a speedup).
    pub fn wall_vs_sequential(&self) -> f64 {
        self.wall.as_secs_f64() / self.seq_wall.as_secs_f64().max(1e-12)
    }
}

/// The hotspot scenario: a store, its task list, per-task footprints for
/// affinity routing, and the expected final value of the hot counter.
struct Hotspot {
    store: Store,
    tasks: Vec<Task>,
    footprints: Vec<Vec<u64>>,
    hot: janus_log::LocId,
    expected_hot: i64,
}

/// Builds `n` tasks of which `hot_pct`% read-modify-write one shared
/// counter; the remainder increment private locations. Each hot task
/// also burns a little deterministic compute so attempts genuinely
/// overlap in time.
fn hotspot(n: usize, hot_pct: u32) -> Hotspot {
    let mut store = Store::new();
    let hot = store.alloc("hot", janus_relational::Value::int(0));
    let hot_count = n * hot_pct as usize / 100;
    let mut tasks = Vec::with_capacity(n);
    let mut footprints = Vec::with_capacity(n);
    let mut expected_hot = 0i64;
    for i in 0..n {
        if i < hot_count {
            let delta = (i + 1) as i64;
            expected_hot += delta;
            tasks.push(Task::new(move |tx: &mut TxView| {
                let v = tx.read_int(hot);
                // A deterministic spin between the read and the write
                // widens the conflict window so attempts genuinely
                // overlap in time (dispatch overhead alone would
                // otherwise serialize these sub-microsecond bodies).
                let mut acc = v;
                for k in 0..20_000i64 {
                    acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(k));
                }
                std::hint::black_box(acc);
                tx.write(hot, v + delta);
            }));
            footprints.push(vec![hot.0]);
        } else {
            let loc = store.alloc(
                format!("cold-{i}").as_str(),
                janus_relational::Value::int(0),
            );
            tasks.push(Task::new(move |tx: &mut TxView| tx.add(loc, 1)));
            footprints.push(vec![loc.0]);
        }
    }
    Hotspot {
        store,
        tasks,
        footprints,
        hot,
        expected_hot,
    }
}

/// The hot-percentage axis of the sweep.
pub const HOT_PCT_GRID: [u32; 4] = [25, 50, 75, 100];

/// Runs the contention sweep: every policy × degradation setting across
/// [`HOT_PCT_GRID`], against a per-configuration sequential baseline.
pub fn contention_sweep(quick: bool) -> Vec<ContentionPoint> {
    let n = if quick { 64 } else { 160 };
    let threads = if quick { 4 } else { 8 };
    let mut out = Vec::new();
    for hot_pct in HOT_PCT_GRID {
        let scenario = hotspot(n, hot_pct);
        let seq_started = Instant::now();
        let (seq_store, _) = Janus::run_sequential(scenario.store.clone(), &scenario.tasks);
        let seq_wall = seq_started.elapsed();
        assert_eq!(
            seq_store.value(scenario.hot),
            Some(&janus_relational::Value::int(scenario.expected_hot)),
            "sequential baseline must produce the expected sum"
        );
        let policies: Vec<(&'static str, Arc<dyn SchedulePolicy>)> = vec![
            ("fifo", Arc::new(Fifo)),
            ("backoff", Arc::new(Backoff::default())),
            (
                "affinity",
                Arc::new(Affinity::new(Arc::new(ExactFootprints(
                    scenario.footprints.clone(),
                )))),
            ),
            ("steal", Arc::new(WorkSteal::new(7))),
        ];
        for (label, policy) in policies {
            for degrade in [false, true] {
                let scenario = hotspot(n, hot_pct);
                let mut janus = Janus::new(Arc::new(WriteSetDetector::new()))
                    .threads(threads)
                    .schedule(Arc::clone(&policy));
                if degrade {
                    janus = janus.degrade(DegradeConfig {
                        window: 16,
                        threshold: 0.5,
                    });
                }
                let outcome = janus.run(scenario.store, scenario.tasks);
                let check_ok = outcome.store.value(scenario.hot)
                    == Some(&janus_relational::Value::int(scenario.expected_hot));
                out.push(ContentionPoint {
                    hot_pct,
                    policy: label,
                    degrade,
                    commits: outcome.stats.commits,
                    retries: outcome.stats.retries,
                    wall: outcome.stats.wall,
                    seq_wall,
                    degrade_windows: outcome.sched.degrade_windows,
                    backoff_waits: outcome.sched.backoff_waits,
                    serial_retries: outcome.sched.serial_retries,
                    check_ok,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_commits_everything_and_checks_out() {
        let points = contention_sweep(true);
        // 4 hot percentages × 3 policies × 2 degradation settings.
        assert_eq!(points.len(), 24);
        for p in &points {
            assert_eq!(
                p.commits, 64,
                "{}/{}: all tasks commit",
                p.policy, p.hot_pct
            );
            assert!(
                p.check_ok,
                "{}/{}: final state correct",
                p.policy, p.hot_pct
            );
            // How many conflicts materialize depends on the host's core
            // count and preemption, so assert accounting invariants
            // rather than a contention floor: fifo never backs off, and
            // the adaptive policies back off exactly once per conflict.
            if p.policy == "fifo" {
                assert_eq!(p.backoff_waits, 0, "fifo issues no backoff hints");
            } else {
                assert_eq!(
                    p.backoff_waits, p.retries,
                    "{}/{}: one backoff wait per conflict abort",
                    p.policy, p.hot_pct
                );
            }
        }
    }

    #[test]
    fn hotspot_builder_partitions_tasks() {
        let h = hotspot(40, 25);
        assert_eq!(h.tasks.len(), 40);
        assert_eq!(h.footprints.len(), 40);
        assert_eq!(h.expected_hot, (1..=10).sum::<i64>());
        let hot_fp = vec![h.hot.0];
        assert_eq!(h.footprints.iter().filter(|fp| **fp == hot_fp).count(), 10);
    }
}
