//! A virtual-time multicore simulator for the Figure 7 protocol.
//!
//! The paper's speedup experiment (Figure 9) needs a multicore machine;
//! this reproduction may run in a single-core container, where real
//! threads cannot overlap. Per the substitution policy in DESIGN.md, the
//! simulator keeps everything *semantically* real — every task body,
//! conflict check and commit replay executes against the real store with
//! the real detector, and their costs are measured with a monotonic
//! clock — while the parallel timeline is simulated: `T` virtual threads
//! pick tasks, snapshot the store at their virtual begin time, and commit
//! through a serialized virtual lock, exactly as `RUNTASK`/`COMMIT`
//! prescribe.
//!
//! What the simulator preserves (because it is computed, not modelled):
//! which transactions conflict, how often they retry, how much work is
//! re-executed, and how much commit serialization the detector forces.
//! What it idealizes: cache interference and memory bandwidth between
//! cores (absent), and scheduler noise (absent).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use janus_core::{SnapshotState, Store, Task};
use janus_detect::ConflictDetector;
use janus_log::{CommittedLog, HistoryWindow};

/// Results of one simulated run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Virtual wall-clock time of the parallel region, in seconds.
    pub virtual_wall: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub retries: u64,
    /// Total CPU time spent executing task bodies (including retried
    /// executions), in seconds.
    pub exec_time: f64,
    /// Total CPU time spent in conflict detection, in seconds.
    pub detect_time: f64,
}

impl SimMetrics {
    /// Retries per committed transaction.
    pub fn retry_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.retries as f64 / self.commits as f64
        }
    }
}

/// An in-flight transaction awaiting its (virtual) completion.
struct Pending {
    finish: f64,
    thread: usize,
    task_idx: usize,
    /// Clock value at snapshot time: commits numbered below it are in the
    /// snapshot, commits at or above it form the conflict history.
    begin_clock: u64,
    snapshot: SnapshotState,
    /// The transaction's log, decomposed once when the body finished.
    log: CommittedLog,
}

/// Orders pendings by completion time (earliest first via `Reverse`).
struct ByFinish(Pending);

impl PartialEq for ByFinish {
    fn eq(&self, other: &Self) -> bool {
        self.0.finish == other.0.finish && self.0.thread == other.0.thread
    }
}
impl Eq for ByFinish {}
impl PartialOrd for ByFinish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByFinish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .finish
            .total_cmp(&other.0.finish)
            .then(self.0.thread.cmp(&other.0.thread))
    }
}

/// Measures the sequential (single-pass, no protocol) execution time of
/// the tasks — the Figure 9 baseline.
pub fn sequential_baseline(store: Store, tasks: &[Task]) -> (Store, f64) {
    let started = Instant::now();
    let mut current = store;
    for task in tasks {
        let mut tx = current.begin();
        task.run(&mut tx);
        let log = tx.into_log();
        current.apply_log(&log);
    }
    (current, started.elapsed().as_secs_f64())
}

/// Simulates a parallel run of `tasks` over `store` on `threads` virtual
/// threads under `detector`, with in-order commits if `ordered`.
///
/// Returns the final store (which equals a real parallel run's — the
/// protocol semantics are identical) and the timing metrics.
pub fn simulate(
    store: Store,
    tasks: &[Task],
    detector: &Arc<dyn ConflictDetector>,
    threads: usize,
    ordered: bool,
) -> (Store, SimMetrics) {
    let mut store = store;
    let mut heap: BinaryHeap<Reverse<ByFinish>> = BinaryHeap::new();
    let mut waiting: Vec<Pending> = Vec::new();
    // Commit logs in commit order: `committed[v - 1]` is the log of the
    // transaction that moved the clock from `v` to `v + 1`, each
    // pre-decomposed once at (virtual) commit time. Windows are
    // clock-based, as in the real protocol — virtual timestamps only
    // shape the timeline.
    let mut committed: Vec<Arc<CommittedLog>> = Vec::new();
    let mut clock: u64 = 1;
    let mut lock_free_at = 0.0f64;
    let mut next_task = 0usize;
    let mut metrics = SimMetrics {
        virtual_wall: 0.0,
        commits: 0,
        retries: 0,
        exec_time: 0.0,
        detect_time: 0.0,
    };

    let start_task = |store: &Store,
                      task_idx: usize,
                      thread: usize,
                      at: f64,
                      begin_clock: u64,
                      metrics: &mut SimMetrics| {
        let snapshot = store.snapshot_state();
        let mut tx = store.begin();
        let t0 = Instant::now();
        tasks[task_idx].run(&mut tx);
        let d = t0.elapsed().as_secs_f64();
        metrics.exec_time += d;
        Pending {
            finish: at + d,
            thread,
            task_idx,
            begin_clock,
            snapshot,
            log: CommittedLog::new(tx.into_log()),
        }
    };

    let initial = threads.min(tasks.len());
    for thread in 0..initial {
        let p = start_task(&store, next_task, thread, 0.0, clock, &mut metrics);
        next_task += 1;
        heap.push(Reverse(ByFinish(p)));
    }

    while let Some(Reverse(ByFinish(p))) = heap.pop() {
        let now = p.finish;
        // In-order execution: wait until all preceding transactions have
        // committed (woken on the next commit).
        if ordered && p.task_idx as u64 + 1 != clock {
            waiting.push(p);
            continue;
        }
        // GETCOMMITTEDHISTORY(t.Begin, now), clock-indexed — a zero-copy
        // window over the shared pre-decomposed segments.
        let window = HistoryWindow::new(&committed[(p.begin_clock - 1) as usize..]);
        let t0 = Instant::now();
        let conflict = detector.detect(&p.snapshot, &p.log, window);
        let det = t0.elapsed().as_secs_f64();
        metrics.detect_time += det;
        let now = now + det;

        if conflict {
            metrics.retries += 1;
            let thread = p.thread;
            let task_idx = p.task_idx;
            let p = start_task(&store, task_idx, thread, now, clock, &mut metrics);
            heap.push(Reverse(ByFinish(p)));
            continue;
        }

        // COMMIT through the serialized virtual write lock.
        let commit_start = now.max(lock_free_at);
        let t0 = Instant::now();
        store.apply_log(p.log.ops());
        let replay = t0.elapsed().as_secs_f64();
        let commit_time = commit_start + replay;
        committed.push(Arc::new(p.log));
        lock_free_at = commit_time;
        clock += 1;
        metrics.commits += 1;
        metrics.virtual_wall = metrics.virtual_wall.max(commit_time);

        // Wake the next ordered waiter, if it is now eligible.
        if ordered {
            if let Some(pos) = waiting.iter().position(|w| w.task_idx as u64 + 1 == clock) {
                let mut w = waiting.remove(pos);
                w.finish = w.finish.max(commit_time);
                heap.push(Reverse(ByFinish(w)));
            }
        }

        // The freed thread picks the next task.
        if next_task < tasks.len() {
            let p = start_task(
                &store,
                next_task,
                p.thread,
                commit_time,
                clock,
                &mut metrics,
            );
            next_task += 1;
            heap.push(Reverse(ByFinish(p)));
        }
    }

    debug_assert!(waiting.is_empty(), "ordered waiters must all be woken");
    (store, metrics)
}

/// Simulates an unordered parallel run committing through the *sharded*
/// store's per-shard locks instead of one global virtual lock.
///
/// The timeline discipline matches [`simulate`] — every body, conflict
/// check and replay runs for real and is timed — but the commit
/// serialization point is per shard: a committing transaction waits for
/// `lock_free_at[s]` of exactly the shards its log touches (the ascending
/// multi-lock of the real commit path collapses to a `max` in virtual
/// time), so disjoint-shard commits overlap instead of queueing. This is
/// the scaling experiment's substitute for a real multicore: with one
/// global lock, 16 threads on disjoint footprints still commit one at a
/// time; with per-shard locks they commit `shards`-wide.
pub fn simulate_sharded(
    store: Store,
    tasks: &[Task],
    detector: &Arc<dyn ConflictDetector>,
    threads: usize,
    shards: usize,
) -> (Store, SimMetrics) {
    assert!(shards >= 1, "at least one shard");
    let mut store = store;
    let mut heap: BinaryHeap<Reverse<ByFinish>> = BinaryHeap::new();
    let mut committed: Vec<Arc<CommittedLog>> = Vec::new();
    let mut clock: u64 = 1;
    // Per-shard commit-lock release times; a commit waits only for the
    // shards it touches.
    let mut lock_free_at = vec![0.0f64; shards];
    let mut next_task = 0usize;
    let mut metrics = SimMetrics {
        virtual_wall: 0.0,
        commits: 0,
        retries: 0,
        exec_time: 0.0,
        detect_time: 0.0,
    };

    let start_task = |store: &Store,
                      task_idx: usize,
                      thread: usize,
                      at: f64,
                      begin_clock: u64,
                      metrics: &mut SimMetrics| {
        let snapshot = store.snapshot_state();
        let mut tx = store.begin();
        let t0 = Instant::now();
        tasks[task_idx].run(&mut tx);
        let d = t0.elapsed().as_secs_f64();
        metrics.exec_time += d;
        Pending {
            finish: at + d,
            thread,
            task_idx,
            begin_clock,
            snapshot,
            log: CommittedLog::new(tx.into_log()),
        }
    };

    let initial = threads.min(tasks.len());
    for thread in 0..initial {
        let p = start_task(&store, next_task, thread, 0.0, clock, &mut metrics);
        next_task += 1;
        heap.push(Reverse(ByFinish(p)));
    }

    while let Some(Reverse(ByFinish(p))) = heap.pop() {
        let now = p.finish;
        let window = HistoryWindow::new(&committed[(p.begin_clock - 1) as usize..]);
        let t0 = Instant::now();
        let conflict = detector.detect(&p.snapshot, &p.log, window);
        let det = t0.elapsed().as_secs_f64();
        metrics.detect_time += det;
        let now = now + det;

        if conflict {
            metrics.retries += 1;
            let thread = p.thread;
            let task_idx = p.task_idx;
            let p = start_task(&store, task_idx, thread, now, clock, &mut metrics);
            heap.push(Reverse(ByFinish(p)));
            continue;
        }

        // COMMIT through the touched shards' virtual write locks only.
        let mut touched: Vec<usize> = p.log.ops().iter().map(|op| op.loc.shard(shards)).collect();
        touched.sort_unstable();
        touched.dedup();
        let locks_free = touched
            .iter()
            .map(|&s| lock_free_at[s])
            .fold(0.0f64, f64::max);
        let commit_start = now.max(locks_free);
        let t0 = Instant::now();
        store.apply_log(p.log.ops());
        let replay = t0.elapsed().as_secs_f64();
        let commit_time = commit_start + replay;
        committed.push(Arc::new(p.log));
        for &s in &touched {
            lock_free_at[s] = commit_time;
        }
        clock += 1;
        metrics.commits += 1;
        metrics.virtual_wall = metrics.virtual_wall.max(commit_time);

        if next_task < tasks.len() {
            let p = start_task(
                &store,
                next_task,
                p.thread,
                commit_time,
                clock,
                &mut metrics,
            );
            next_task += 1;
            heap.push(Reverse(ByFinish(p)));
        }
    }

    (store, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;
    use janus_detect::{SequenceDetector, WriteSetDetector};
    use janus_relational::Value;

    fn identity_setup(n: i64) -> (Store, Vec<Task>, janus_log::LocId) {
        let mut store = Store::new();
        let work = store.alloc("work", Value::int(0));
        let tasks: Vec<Task> = (1..=n)
            .map(|w| {
                Task::new(move |tx: &mut janus_core::TxView| {
                    tx.add(work, w);
                    janus_workloads::local_work(20_000);
                    tx.add(work, -w);
                })
            })
            .collect();
        (store, tasks, work)
    }

    #[test]
    fn simulated_final_state_matches_sequential() {
        let (store, tasks, work) = identity_setup(12);
        let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());
        let (final_store, metrics) = simulate(store, &tasks, &det, 4, false);
        assert_eq!(final_store.value(work), Some(&Value::int(0)));
        assert_eq!(metrics.commits, 12);
        assert_eq!(metrics.retries, 0, "identity tasks must not conflict");
    }

    #[test]
    fn sequence_detection_yields_virtual_speedup() {
        let (store, tasks, _) = identity_setup(16);
        let (_, baseline) = sequential_baseline(store.clone(), &tasks);
        let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());
        let (_, metrics) = simulate(store, &tasks, &det, 4, false);
        let speedup = baseline / metrics.virtual_wall;
        // Conservative threshold: the sim measures real CPU times, which
        // are noisy when the test box is loaded.
        assert!(
            speedup > 1.2,
            "4 virtual threads over identity tasks should speed up, got {speedup:.2}"
        );
    }

    #[test]
    fn write_set_detection_serializes_in_virtual_time() {
        let (store, tasks, _) = identity_setup(16);
        let (_, baseline) = sequential_baseline(store.clone(), &tasks);
        let det: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
        let (_, metrics) = simulate(store, &tasks, &det, 4, false);
        assert!(metrics.retries > 0, "write-set must abort identity tasks");
        let speedup = baseline / metrics.virtual_wall;
        assert!(
            speedup < 1.5,
            "write-set retries should burn the parallelism, got {speedup:.2}"
        );
    }

    #[test]
    fn ordered_simulation_matches_sequential_state() {
        // Order-sensitive read-modify-write tasks.
        let mut store = Store::new();
        let x = store.alloc("x", Value::int(1));
        let mk_tasks = || -> Vec<Task> {
            (1..=6)
                .map(|i| {
                    Task::new(move |tx: &mut janus_core::TxView| {
                        let v = tx.read_int(x);
                        tx.write(x, v * 3 + i);
                    })
                })
                .collect()
        };
        let (seq_store, _) = Janus::run_sequential(store.clone(), &mk_tasks());
        let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());
        let (sim_store, metrics) = simulate(store, &mk_tasks(), &det, 3, true);
        assert_eq!(sim_store.value(x), seq_store.value(x));
        assert_eq!(metrics.commits, 6);
    }

    #[test]
    fn sharded_simulation_matches_state_and_overlaps_disjoint_commits() {
        // 16 tasks over 16 disjoint-class locations: every commit touches
        // its own shard (mod collisions), so per-shard locks overlap
        // commits that the single global lock serializes.
        let mut store = Store::new();
        let locs: Vec<_> = (0..16)
            .map(|i| store.alloc(format!("cls{i}").as_str(), Value::int(0)))
            .collect();
        let mk_tasks = || -> Vec<Task> {
            locs.iter()
                .map(|&l| {
                    Task::new(move |tx: &mut janus_core::TxView| {
                        tx.add(l, 1);
                        janus_workloads::local_work(20_000);
                    })
                })
                .collect()
        };
        let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());
        let (s1, m1) = simulate_sharded(store.clone(), &mk_tasks(), &det, 8, 1);
        let (s16, m16) = simulate_sharded(store.clone(), &mk_tasks(), &det, 8, 16);
        for &l in &locs {
            assert_eq!(s1.value(l), Some(&Value::int(1)));
            assert_eq!(s16.value(l), s1.value(l));
        }
        assert_eq!(m1.commits, 16);
        assert_eq!(m16.commits, 16);
        assert_eq!(m16.retries, 0, "disjoint tasks never conflict");
        // One shard degenerates to the global-lock simulator's timeline
        // discipline; 16 shards must not be slower.
        assert!(
            m16.virtual_wall <= m1.virtual_wall * 1.5,
            "sharded commits must not serialize worse: {} vs {}",
            m16.virtual_wall,
            m1.virtual_wall
        );
    }

    #[test]
    fn one_virtual_thread_is_serial() {
        let (store, tasks, work) = identity_setup(5);
        let det: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
        let (final_store, metrics) = simulate(store, &tasks, &det, 1, false);
        assert_eq!(final_store.value(work), Some(&Value::int(0)));
        assert_eq!(metrics.retries, 0, "no concurrency, no conflicts");
    }
}
