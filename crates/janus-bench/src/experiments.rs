//! Experiment drivers for the paper's tables and figures.

use std::sync::Arc;
use std::time::Instant;

use janus_core::{Janus, PanicPolicy, RunStats, Store, Task};
use janus_detect::{
    CachedSequenceDetector, ConflictDetector, MapState, SequenceDetector, WriteSetDetector,
};
use janus_fault::FaultPlan;
use janus_log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus_relational::Value;
use janus_train::{train, CommutativityCache, FrozenCache, TrainConfig};
use janus_workloads::{all_workloads, training_runs, InputSpec, Workload};

use crate::sim::{sequential_baseline, simulate};

/// The thread counts of Figures 9 and 10.
pub const THREAD_GRID: [usize; 5] = [1, 2, 4, 6, 8];

/// One measured point of the Figure 9/10 grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Detector label ("write-set" / "sequence").
    pub detector: &'static str,
    /// Virtual threads.
    pub threads: usize,
    /// Virtual-time speedup over the sequential baseline.
    pub speedup: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub retries: u64,
    /// Whether the final state passed the workload's check.
    pub check_ok: bool,
}

impl GridPoint {
    /// Retries per transaction (Figure 10's metric).
    pub fn retry_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.retries as f64 / self.commits as f64
        }
    }
}

/// The production input used for the grid: the first Table 6 production
/// input, optionally scaled down for quick runs.
pub fn grid_input(workload: &dyn Workload, quick: bool) -> InputSpec {
    let input = workload.production_inputs()[0];
    if quick {
        InputSpec::new(input.scale.min(120), input.degree, input.seed)
    } else {
        input
    }
}

/// Trains the workload's commutativity cache (Figure 6's offline path).
pub fn trained_cache(workload: &dyn Workload, use_abstraction: bool) -> CommutativityCache {
    let runs = training_runs(workload);
    let (cache, _) = train(
        &runs,
        TrainConfig {
            use_abstraction,
            verify_symbolic: false,
        },
    );
    cache
}

/// Runs the Figure 9/10 grid: every workload, write-set vs cached
/// sequence-based detection, across [`THREAD_GRID`] virtual threads.
pub fn speedup_retry_grid(quick: bool) -> Vec<GridPoint> {
    let mut out = Vec::new();
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, quick);
        let scenario = w.build(&input);
        let (_, baseline) = sequential_baseline(scenario.store, &scenario.tasks);
        let cache = Arc::new(trained_cache(w, true).freeze());
        for &threads in &THREAD_GRID {
            for (label, detector) in detector_pair(w, &cache) {
                let scenario = w.build(&input);
                let (final_store, metrics) = simulate(
                    scenario.store,
                    &scenario.tasks,
                    &detector,
                    threads,
                    w.ordered(),
                );
                out.push(GridPoint {
                    workload: w.name(),
                    detector: label,
                    threads,
                    speedup: baseline / metrics.virtual_wall.max(1e-12),
                    commits: metrics.commits,
                    retries: metrics.retries,
                    check_ok: (scenario.check)(&final_store),
                });
            }
        }
    }
    out
}

/// The two detectors of the §7 comparison, sharing one trained cache
/// (frozen: the measured path is the lock-free production form).
fn detector_pair(
    workload: &dyn Workload,
    cache: &Arc<FrozenCache>,
) -> Vec<(&'static str, Arc<dyn ConflictDetector>)> {
    vec![
        ("write-set", Arc::new(WriteSetDetector::new())),
        (
            "sequence",
            Arc::new(CachedSequenceDetector::with_relaxations(
                Arc::clone(cache),
                workload.relaxations(),
            )),
        ),
    ]
}

/// One row of Figure 11: unique-query cache miss rates at 8 threads,
/// with and without sequence abstraction.
#[derive(Debug, Clone)]
pub struct MissRow {
    /// Workload name.
    pub workload: &'static str,
    /// Unique hits/misses with Kleene-cross abstraction.
    pub with_abstraction: (u64, u64),
    /// Unique hits/misses without abstraction.
    pub without_abstraction: (u64, u64),
}

impl MissRow {
    fn rate(counts: (u64, u64)) -> Option<f64> {
        let total = counts.0 + counts.1;
        (total > 0).then(|| 100.0 * counts.1 as f64 / total as f64)
    }

    /// Miss rate with abstraction, in percent.
    pub fn miss_with(&self) -> Option<f64> {
        Self::rate(self.with_abstraction)
    }

    /// Miss rate without abstraction, in percent.
    pub fn miss_without(&self) -> Option<f64> {
        Self::rate(self.without_abstraction)
    }
}

/// Runs the Figure 11 experiment: for each workload, train with and
/// without abstraction, run the production inputs on 8 virtual threads,
/// and report unique-query miss rates.
pub fn figure11(quick: bool) -> Vec<MissRow> {
    let mut out = Vec::new();
    for workload in all_workloads() {
        let w = workload.as_ref();
        let mut counts = [(0u64, 0u64); 2];
        for (slot, use_abstraction) in [(0, true), (1, false)] {
            let cache = trained_cache(w, use_abstraction).freeze();
            let detector = Arc::new(CachedSequenceDetector::with_relaxations(
                cache,
                w.relaxations(),
            ));
            let dyn_det: Arc<dyn ConflictDetector> = detector.clone();
            let inputs = if quick {
                vec![grid_input(w, true)]
            } else {
                w.production_inputs()
            };
            for input in inputs {
                let scenario = w.build(&input);
                let (_, _) = simulate(scenario.store, &scenario.tasks, &dyn_det, 8, w.ordered());
            }
            counts[slot] = detector.oracle().stats().unique_counts();
        }
        out.push(MissRow {
            workload: w.name(),
            with_abstraction: counts[0],
            without_abstraction: counts[1],
        });
    }
    out
}

/// Per-class conflict attribution under write-set detection at 8 virtual
/// threads — the data behind §7.2's discussion of which shared structures
/// serialize each benchmark.
pub fn conflict_classes(quick: bool) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, quick);
        let detector = Arc::new(WriteSetDetector::new());
        let dyn_det: Arc<dyn ConflictDetector> = detector.clone();
        let scenario = w.build(&input);
        let _ = simulate(scenario.store, &scenario.tasks, &dyn_det, 8, w.ordered());
        for (class, n) in detector.stats().conflicts_by_class().into_iter().take(4) {
            out.push((w.name().to_string(), class.label().to_string(), n));
        }
    }
    out
}

/// Table 5 rows: benchmark characteristics.
pub fn table5() -> Vec<Vec<String>> {
    all_workloads()
        .iter()
        .map(|w| {
            vec![
                w.name().to_string(),
                w.source().to_string(),
                w.description().to_string(),
                w.patterns().join(", "),
            ]
        })
        .collect()
}

/// Table 6 rows: training and production inputs.
pub fn table6() -> Vec<Vec<String>> {
    all_workloads()
        .iter()
        .map(|w| {
            let (kind, training, production) = w.input_description();
            vec![
                w.name().to_string(),
                kind.to_string(),
                training.to_string(),
                production.to_string(),
            ]
        })
        .collect()
}

/// One row of the commit-pipeline comparison: validation cost at one
/// window size, flat-reclone vs zero-copy-incremental, with four clock
/// advances observed mid-validation.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Committed segments in the window.
    pub segments: usize,
    /// Total operations in the window.
    pub window_ops: usize,
    /// Mean validation cost re-flattening and re-detecting from scratch
    /// at every clock advance, in seconds.
    pub flat_secs: f64,
    /// Mean validation cost of one incremental session extended with
    /// each delta, in seconds.
    pub incremental_secs: f64,
}

impl PipelineRow {
    /// How much cheaper incremental validation is.
    pub fn speedup(&self) -> f64 {
        self.flat_secs / self.incremental_secs.max(1e-12)
    }
}

/// Clock advances observed during one measured validation.
const PIPELINE_ADVANCES: usize = 4;

fn pipeline_add(loc: u64, delta: i64, v: &mut Value) -> Op {
    Op::execute(
        LocId(loc),
        ClassId::new("work"),
        OpKind::Scalar(ScalarOp::Add(delta)),
        v,
    )
    .0
}

fn pipeline_balanced_log(loc: u64, len: usize) -> Vec<Op> {
    let mut v = Value::int(0);
    (0..len / 2)
        .flat_map(|i| [i as i64 + 1, -(i as i64 + 1)])
        .map(|d| pipeline_add(loc, d, &mut v))
        .collect()
}

/// Measures validation cost vs. window size: the pre-pipeline
/// flat-reclone strategy (every clock advance flattens `[begin, now)`
/// into a fresh `Vec<Op>` and re-detects from scratch) against the
/// zero-copy incremental session (decompose-once segments, delta-only
/// re-validation). Most segments touch locations foreign to the
/// transaction, so the per-location index lets the incremental path skip
/// them entirely — its cost stays sublinear in the window.
pub fn commit_pipeline(quick: bool) -> Vec<PipelineRow> {
    const SEG_OPS: usize = 8;
    let iters = if quick { 40 } else { 200 };
    let sizes: &[usize] = if quick {
        &[8, 32, 128]
    } else {
        &[8, 32, 128, 512]
    };

    let mut entry = MapState::default();
    for loc in 0..9 {
        entry.0.insert(LocId(loc), Value::int(0));
    }
    let txn_ops = pipeline_balanced_log(0, SEG_OPS);
    let txn = CommittedLog::new(txn_ops.clone());
    let det = SequenceDetector::new();

    let mut out = Vec::new();
    for &n in sizes {
        let segs: Vec<Arc<CommittedLog>> = (0..n)
            .map(|i| {
                let loc = if i % 4 == 0 { 0 } else { 1 + (i % 8) as u64 };
                Arc::new(CommittedLog::new(pipeline_balanced_log(loc, SEG_OPS)))
            })
            .collect();
        let cut = |j: usize| n * j / PIPELINE_ADVANCES;

        let t0 = Instant::now();
        for _ in 0..iters {
            for j in 1..=PIPELINE_ADVANCES {
                let window: Vec<Op> = segs[..cut(j)]
                    .iter()
                    .flat_map(|s| s.ops().iter().cloned())
                    .collect();
                std::hint::black_box(det.detect_ops(&entry, &txn_ops, &window));
            }
        }
        let flat_secs = t0.elapsed().as_secs_f64() / iters as f64;

        let t0 = Instant::now();
        for _ in 0..iters {
            let mut session = det.begin_validation(&entry, &txn);
            for j in 1..=PIPELINE_ADVANCES {
                let delta = &segs[cut(j - 1)..cut(j)];
                std::hint::black_box(session.extend(&HistoryWindow::new(delta)));
            }
        }
        let incremental_secs = t0.elapsed().as_secs_f64() / iters as f64;

        out.push(PipelineRow {
            segments: n,
            window_ops: n * SEG_OPS,
            flat_secs,
            incremental_secs,
        });
    }
    out
}

/// Runs every workload through the real threaded runtime under write-set
/// detection with the lifecycle recorder attached, returning each
/// workload's name, recorded trace and run statistics. The traces drive
/// the `figures --attribution` report: which classes and locations cause
/// the aborts that serialize each benchmark.
pub fn attribution_traces(quick: bool) -> Vec<(String, janus_obs::Trace, RunStats)> {
    let threads = if quick { 4 } else { 8 };
    let mut out = Vec::new();
    for workload in all_workloads() {
        let w = workload.as_ref();
        let input = grid_input(w, quick);
        let scenario = w.build(&input);
        let recorder = janus_obs::Recorder::new();
        let det: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
        let outcome = Janus::new(det)
            .threads(threads)
            .ordered(w.ordered())
            .recorder(Arc::clone(&recorder))
            .run(scenario.store, scenario.tasks);
        out.push((w.name().to_string(), recorder.finish(), outcome.stats));
    }
    // One chaos entry: the first workload re-run under seeded fault
    // injection with panic isolation, so the attribution report also
    // exercises the `Failed` abort ledger (faults injected, tasks
    // failed, and the split abort counts all flow through the trace).
    if let Some(workload) = all_workloads().into_iter().next() {
        let w = workload.as_ref();
        let input = grid_input(w, quick);
        let scenario = w.build(&input);
        let recorder = janus_obs::Recorder::new();
        let det: Arc<dyn ConflictDetector> = Arc::new(WriteSetDetector::new());
        let outcome = Janus::new(det)
            .threads(threads)
            .ordered(w.ordered())
            .panic_policy(PanicPolicy::Isolate)
            .faults(Arc::new(FaultPlan::seeded(42, 0.05)))
            .recorder(Arc::clone(&recorder))
            .run(scenario.store, scenario.tasks);
        out.push((
            format!("{} (faulted: seed 42, rate 0.05, isolate)", w.name()),
            recorder.finish(),
            outcome.stats,
        ));
    }
    out
}

/// Runs a contended workload through the real threaded runtime and
/// returns its [`RunStats`], whose detection-cost counters (ops scanned,
/// delta re-validations, zero-copy windows) quantify what the pipeline
/// actually did during live validation.
pub fn pipeline_counters(quick: bool) -> (RunStats, janus_core::ShardReport) {
    use std::sync::atomic::{AtomicU64, Ordering};

    let n_tasks = if quick { 24 } else { 96 };
    let threads = 4usize;
    let mut store = Store::new();
    let work = store.alloc("work", Value::int(0));
    // Half the tasks contend on the shared counter; the other half run
    // on private locations with disjoint footprints — the segments they
    // commit are exactly what the fingerprint prefilter dismisses in
    // O(1) during everyone else's validation.
    let privates: Vec<LocId> = (0..n_tasks)
        .map(|i| store.alloc(ClassId::new(format!("private{i}")), Value::int(0)))
        .collect();
    // A first wave of `threads` transactions holds at a spin barrier
    // until all of them have begun, so they genuinely overlap and each
    // validates against its peers' committed segments. Without this, a
    // machine with fewer cores than workers timeslices each task to
    // commit within its slice and every validation window is empty —
    // the counters would measure the scheduler, not the pipeline.
    let begun = Arc::new(AtomicU64::new(0));
    let wave = threads.min(n_tasks) as u64;
    let tasks: Vec<Task> = (1..=n_tasks as i64)
        .map(|w| {
            let mine = privates[(w - 1) as usize];
            let shared = w % 2 == 0;
            let begun = Arc::clone(&begun);
            Task::new(move |tx| {
                if shared {
                    tx.add(work, w);
                }
                tx.add(mine, w);
                begun.fetch_add(1, Ordering::SeqCst);
                while begun.load(Ordering::SeqCst) < wave {
                    std::thread::yield_now();
                }
                janus_workloads::local_work(20_000);
                if shared {
                    tx.add(work, -w);
                }
            })
        })
        .collect();
    let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());
    let outcome = Janus::new(det).threads(threads).run(store, tasks);
    (outcome.stats, outcome.shard_stats)
}

/// One mode of the block-pipeline comparison: the `batch.*` report plus
/// the measured stream wall clock.
pub struct BlockPoint {
    /// `"barrier"` or `"pipelined"`.
    pub mode: &'static str,
    /// Stream wall clock, seconds.
    pub wall_secs: f64,
    /// The pipeline's `batch.*` counters.
    pub report: janus_block::BatchReport,
}

impl BlockPoint {
    /// Committed transactions per second over the stream.
    pub fn txns_per_s(&self) -> f64 {
        self.report.txns_committed as f64 / self.wall_secs
    }
}

/// Streams service-sized blocks (one transaction per worker, each with
/// an I/O-shaped think time) through the [`janus_block::BlockExecutor`]
/// with and without pipelining. The barrier mode fully drains each
/// block before the next starts; the pipelined mode overlaps block N+1
/// with block N's validation and commit.
pub fn block_pipeline(quick: bool) -> Vec<BlockPoint> {
    use janus_block::{BlockExecutor, PipelineMode};

    let threads = 4usize;
    let blocks = if quick { 12 } else { 32 };
    let think = std::time::Duration::from_micros(if quick { 600 } else { 1000 });
    [PipelineMode::Barrier, PipelineMode::Pipelined]
        .into_iter()
        .map(|mode| {
            let mut store = Store::new();
            let hot = store.alloc("hot", Value::int(0));
            let janus = Janus::new(Arc::new(SequenceDetector::new()) as Arc<dyn ConflictDetector>)
                .threads(threads);
            let mut exec = BlockExecutor::new(janus, store, mode);
            let t0 = Instant::now();
            for b in 0..blocks as i64 {
                let tasks: Vec<Task> = (0..threads as i64)
                    .map(|t| {
                        Task::new(move |tx| {
                            std::thread::sleep(think);
                            tx.add(hot, b * 10 + t);
                        })
                    })
                    .collect();
                exec.submit(tasks);
            }
            exec.drain();
            let wall = t0.elapsed();
            let point = BlockPoint {
                mode: match mode {
                    PipelineMode::Barrier => "barrier",
                    PipelineMode::Pipelined => "pipelined",
                },
                wall_secs: wall.as_secs_f64(),
                report: exec.stats().report(exec.stream_wall_micros()),
            };
            let (store, _, _) = exec.finish();
            let expected: i64 = (0..blocks as i64)
                .flat_map(|b| (0..threads as i64).map(move |t| b * 10 + t))
                .sum();
            assert_eq!(
                store.value(hot).and_then(Value::as_int),
                Some(expected),
                "block stream must commit every transaction exactly once"
            );
            point
        })
        .collect()
}

/// Aggregate headline numbers from a grid (speedups and retry ratios at
/// the given thread count).
pub fn headline(grid: &[GridPoint], threads: usize) -> Headline {
    let pick = |detector: &str| -> Vec<&GridPoint> {
        grid.iter()
            .filter(|p| p.detector == detector && p.threads == threads)
            .collect()
    };
    let mean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let seq = pick("sequence");
    let ws = pick("write-set");
    Headline {
        threads,
        seq_mean_speedup: mean(&seq.iter().map(|p| p.speedup).collect::<Vec<_>>()),
        seq_max_speedup: seq.iter().map(|p| p.speedup).fold(0.0, f64::max),
        ws_mean_speedup: mean(&ws.iter().map(|p| p.speedup).collect::<Vec<_>>()),
        seq_mean_retry_ratio: mean(&seq.iter().map(|p| p.retry_ratio()).collect::<Vec<_>>()),
        ws_mean_retry_ratio: mean(&ws.iter().map(|p| p.retry_ratio()).collect::<Vec<_>>()),
    }
}

/// The paper's headline aggregates (compare §7.2).
#[derive(Debug, Clone)]
pub struct Headline {
    /// Thread count the aggregates are taken at.
    pub threads: usize,
    /// Mean sequence-based speedup (paper: 1.5x at 8 threads).
    pub seq_mean_speedup: f64,
    /// Max sequence-based speedup (paper: ~2.5x, JFileSync).
    pub seq_max_speedup: f64,
    /// Mean write-set speedup (paper: 0.6x).
    pub ws_mean_speedup: f64,
    /// Mean sequence retries/txn (paper: 0.07).
    pub seq_mean_retry_ratio: f64,
    /// Mean write-set retries/txn (paper: 1.51 — 22x more).
    pub ws_mean_retry_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_five_rows() {
        assert_eq!(table5().len(), 5);
        assert_eq!(table6().len(), 5);
    }

    #[test]
    fn grid_input_quick_caps_scale() {
        for w in all_workloads() {
            let q = grid_input(w.as_ref(), true);
            assert!(q.scale <= 120);
            let f = grid_input(w.as_ref(), false);
            assert!(f.scale >= q.scale);
        }
    }

    #[test]
    fn headline_aggregation() {
        let grid = vec![
            GridPoint {
                workload: "a",
                detector: "sequence",
                threads: 8,
                speedup: 2.0,
                commits: 10,
                retries: 1,
                check_ok: true,
            },
            GridPoint {
                workload: "a",
                detector: "write-set",
                threads: 8,
                speedup: 0.5,
                commits: 10,
                retries: 20,
                check_ok: true,
            },
        ];
        let h = headline(&grid, 8);
        assert!((h.seq_mean_speedup - 2.0).abs() < 1e-9);
        assert!((h.ws_mean_retry_ratio - 2.0).abs() < 1e-9);
        assert!((h.seq_mean_retry_ratio - 0.1).abs() < 1e-9);
    }
}
