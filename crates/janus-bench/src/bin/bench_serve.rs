//! Sustained-throughput serve benchmark emitting `BENCH_serve.json`.
//!
//! Emulates a block-execution *service*: a stream of small client
//! blocks (one transaction per worker thread), each transaction doing
//! an I/O-shaped think-time sleep followed by a Zipfian-hot transfer
//! between accounts. The stream runs twice over identical inputs —
//! once with a strict batch barrier (block N+1 starts only after block
//! N fully finished) and once through the depth-2 pipeline (block
//! N+1's execution overlaps block N's validation and commit, commits
//! fenced by the cross-batch footprint gate).
//!
//! Because the think time dominates and the pipeline hides it under
//! the predecessor's commit phase, pipelined throughput approaches 2x
//! the barrier's even when every block touches the same hot accounts —
//! the gate parks only the *commit*, never the overlapped execution.
//! The timeline is real (threads really sleep and really commit); this
//! measures service latency hiding, not CPU parallelism, so it holds
//! on a single-core container.
//!
//! The binary gates itself: pipelined throughput must be >= 1.3x
//! barrier, every transaction must commit exactly once (none lost to
//! shedding or duplicated by retries), and transfers must conserve the
//! total balance.
//!
//! With `--wal [POLICY]` the pipelined stream additionally runs with
//! the commit journal attached — once at the given group-commit policy
//! (default `every-n:8`) and once at `always` — and the journal
//! overhead lands in a `wal_overhead` section of the JSON. Gate:
//! group-commit durability must keep >= 0.7x of the no-WAL pipelined
//! throughput.
//!
//! Usage: `bench-serve [--quick] [--wal [POLICY]] [OUT.json]`
//! (default `BENCH_serve.json`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use janus_block::{BlockExecutor, BlockStatus, PipelineMode};
use janus_core::{Janus, Store, Task};
use janus_detect::SequenceDetector;
use janus_log::LocId;
use janus_relational::Value;
use janus_wal::{FsyncPolicy, Wal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: usize = 64;
const THREADS: usize = 4;
const ZIPF_S: f64 = 1.2;

/// Cumulative Zipf(s) distribution over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=n)
        .map(|r| {
            acc += 1.0 / (r as f64).powf(s);
            acc
        })
        .collect();
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn sample_zipf(rng: &mut SmallRng, cdf: &[f64]) -> usize {
    let u = (rng.gen_range(0u64..u64::MAX) as f64) / (u64::MAX as f64);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// The block stream: `blocks` blocks of `per_block` transfer
/// transactions each. Deterministic in `seed`, so both modes replay
/// the identical stream.
fn build_blocks(
    seed: u64,
    blocks: usize,
    per_block: usize,
    accounts: &[LocId],
    think: Duration,
) -> Vec<Vec<Task>> {
    let cdf = zipf_cdf(accounts.len(), ZIPF_S);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..blocks)
        .map(|_| {
            (0..per_block)
                .map(|_| {
                    let src = accounts[sample_zipf(&mut rng, &cdf)];
                    let dst = accounts[rng.gen_range(0..accounts.len())];
                    let amt = rng.gen_range(1i64..10);
                    Task::new(move |tx| {
                        // The service-shaped part: an external call
                        // (fraud check, disk append) per transaction.
                        std::thread::sleep(think);
                        tx.add(src, -amt);
                        tx.add(dst, amt);
                    })
                })
                .collect()
        })
        .collect()
}

struct ModeResult {
    mode: &'static str,
    wall: Duration,
    txns_committed: u64,
    blocks_failed: u64,
    gate_waits: u64,
    overlap_permille: u64,
    p50_us: u64,
    p99_us: u64,
    /// (block seq, seconds since stream start at retirement, cumulative
    /// commits) — the txn/s-over-time curve.
    rows: Vec<(u64, f64, u64)>,
}

impl ModeResult {
    fn txns_per_s(&self) -> f64 {
        self.txns_committed as f64 / self.wall.as_secs_f64()
    }
}

fn run_mode(mode: PipelineMode, blocks: Vec<Vec<Task>>) -> ModeResult {
    run_mode_wal(mode, blocks, None)
}

/// [`run_mode`] with an optional commit journal attached: every commit
/// is framed and appended under the given fsync policy, and the journal
/// is flushed with the final drain (the same promise `janus-serve`
/// makes before printing `drained`).
fn run_mode_wal(
    mode: PipelineMode,
    blocks: Vec<Vec<Task>>,
    wal_cfg: Option<(PathBuf, FsyncPolicy)>,
) -> ModeResult {
    let mut store = Store::new();
    let accounts: Vec<LocId> = (0..ACCOUNTS)
        .map(|i| store.alloc(format!("acct{i}").as_str(), Value::int(0)))
        .collect();
    // Rebind the tasks onto this store's fresh locations: the stream
    // builder allocated against a prototype store, and LocIds are only
    // meaningful per store. (Allocation order is identical, so ids
    // coincide; the assert keeps that honest.)
    assert_eq!(accounts.len(), ACCOUNTS);

    let mut janus = Janus::new(Arc::new(SequenceDetector::new())).threads(THREADS);
    let wal = wal_cfg.map(|(dir, policy)| {
        let _ = std::fs::remove_dir_all(&dir);
        Wal::open(&dir, policy, 0).expect("open wal")
    });
    if let Some(wal) = &wal {
        janus = janus.commit_sink(wal.sink());
    }
    let mut exec = BlockExecutor::new(janus, store, mode);
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut cum = 0u64;
    let mut failed = 0u64;
    let note = |outcomes: Vec<janus_block::BlockOutcome>,
                rows: &mut Vec<(u64, f64, u64)>,
                cum: &mut u64,
                failed: &mut u64| {
        for o in outcomes {
            if o.status == BlockStatus::Failed {
                *failed += 1;
            }
            *cum += o.commits();
            rows.push((o.seq, t0.elapsed().as_secs_f64(), *cum));
        }
    };
    for block in blocks {
        let submitted = exec.submit(block);
        note(submitted.retired, &mut rows, &mut cum, &mut failed);
    }
    note(exec.drain(), &mut rows, &mut cum, &mut failed);
    if let Some(wal) = &wal {
        wal.flush().expect("flush wal");
    }
    let wall = t0.elapsed();

    let report = exec.stats().report(exec.stream_wall_micros());
    let latency = exec.stats().latency_histogram();
    let (store, _, tail) = exec.finish();
    assert!(tail.is_empty());
    // Conservation: transfers are zero-sum, so the books must balance.
    let total: i64 = accounts
        .iter()
        .map(|&a| store.value(a).and_then(Value::as_int).unwrap_or(0))
        .sum();
    assert_eq!(total, 0, "transfer stream must conserve the total balance");

    ModeResult {
        mode: match mode {
            PipelineMode::Barrier => "barrier",
            PipelineMode::Pipelined => "pipelined",
        },
        wall,
        txns_committed: report.txns_committed,
        blocks_failed: failed,
        gate_waits: report.gate_waits,
        overlap_permille: report.overlap_permille,
        p50_us: latency.percentile(50.0),
        p99_us: latency.percentile(99.0),
        rows,
    }
}

fn mode_json(r: &ModeResult) -> String {
    let mut rows = String::new();
    for (i, (seq, elapsed, cum)) in r.rows.iter().enumerate() {
        rows.push_str(&format!(
            "      {{\"block\": {seq}, \"elapsed_s\": {elapsed:.4}, \"cum_commits\": {cum}, \
             \"txns_per_s_so_far\": {:.1}}}{}\n",
            if *elapsed > 0.0 {
                *cum as f64 / elapsed
            } else {
                0.0
            },
            if i + 1 == r.rows.len() { "" } else { "," },
        ));
    }
    format!(
        "{{\n    \"wall_s\": {:.4},\n    \"txns_committed\": {},\n    \"txns_per_s\": {:.1},\n    \
         \"blocks_failed\": {},\n    \"gate_waits\": {},\n    \"overlap_permille\": {},\n    \
         \"batch_latency_us_p50\": {},\n    \"batch_latency_us_p99\": {},\n    \"rows\": [\n{rows}    ]\n  }}",
        r.wall.as_secs_f64(),
        r.txns_committed,
        r.txns_per_s(),
        r.blocks_failed,
        r.gate_waits,
        r.overlap_permille,
        r.p50_us,
        r.p99_us,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--wal` optionally eats a following policy token, so the out-path
    // scan must skip whatever `--wal` consumed.
    let mut wal_policy: Option<FsyncPolicy> = None;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--wal" => {
                wal_policy = Some(FsyncPolicy::EveryN(8));
                if let Some(next) = iter.peek() {
                    if let Ok(p) = next.parse::<FsyncPolicy>() {
                        wal_policy = Some(p);
                        iter.next();
                    }
                }
            }
            other if !other.starts_with("--") => out_path = other.to_string(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: bench-serve [--quick] [--wal [POLICY]] [OUT.json]");
                std::process::exit(2);
            }
        }
    }

    let blocks_n = if quick { 16 } else { 48 };
    let per_block = THREADS; // one txn per worker: service-sized blocks
    let think = Duration::from_micros(if quick { 800 } else { 1200 });
    let seed = 20120611; // PLDI 2012

    // Identical streams for both modes: rebuild from the same seed
    // against identically-allocated stores.
    let proto: Vec<LocId> = {
        let mut s = Store::new();
        (0..ACCOUNTS)
            .map(|i| s.alloc(format!("acct{i}").as_str(), Value::int(0)))
            .collect()
    };
    let expected = (blocks_n * per_block) as u64;

    let barrier = run_mode(
        PipelineMode::Barrier,
        build_blocks(seed, blocks_n, per_block, &proto, think),
    );
    let pipelined = run_mode(
        PipelineMode::Pipelined,
        build_blocks(seed, blocks_n, per_block, &proto, think),
    );

    for r in [&barrier, &pipelined] {
        assert_eq!(r.blocks_failed, 0, "{}: no block may fail", r.mode);
        assert_eq!(
            r.txns_committed, expected,
            "{}: every transaction commits exactly once",
            r.mode
        );
        eprintln!(
            "{:>9}: wall={:7.2?}  {:>7.1} txn/s  p50={}us p99={}us  gate_waits={}  \
             overlap={}permille",
            r.mode,
            r.wall,
            r.txns_per_s(),
            r.p50_us,
            r.p99_us,
            r.gate_waits,
            r.overlap_permille,
        );
    }
    let speedup = pipelined.txns_per_s() / barrier.txns_per_s();

    // The durability tax: rerun the identical pipelined stream with the
    // journal attached — once at the group-commit policy, once at
    // `always` — and compare against the no-WAL pipelined run.
    let wal_section = wal_policy.map(|policy| {
        let scratch = PathBuf::from("target/tmp");
        let group = run_mode_wal(
            PipelineMode::Pipelined,
            build_blocks(seed, blocks_n, per_block, &proto, think),
            Some((scratch.join("bench-wal-group"), policy)),
        );
        let always = run_mode_wal(
            PipelineMode::Pipelined,
            build_blocks(seed, blocks_n, per_block, &proto, think),
            Some((scratch.join("bench-wal-always"), FsyncPolicy::Always)),
        );
        for r in [&group, &always] {
            assert_eq!(r.blocks_failed, 0, "wal run: no block may fail");
            assert_eq!(
                r.txns_committed, expected,
                "wal run: every transaction commits exactly once"
            );
        }
        let group_ratio = group.txns_per_s() / pipelined.txns_per_s();
        let always_ratio = always.txns_per_s() / pipelined.txns_per_s();
        eprintln!(
            "wal overhead ({policy}): group={:.1} txn/s ({:.0}% of no-wal), \
             always={:.1} txn/s ({:.0}% of no-wal)",
            group.txns_per_s(),
            group_ratio * 100.0,
            always.txns_per_s(),
            always_ratio * 100.0,
        );
        (policy, group, always, group_ratio, always_ratio)
    });

    let wal_json = match &wal_section {
        None => String::new(),
        Some((policy, group, always, group_ratio, always_ratio)) => format!(
            "  \"wal_overhead\": {{\n  \"policy\": \"{policy}\",\n  \
             \"group_commit_ratio\": {group_ratio:.3},\n  \"always_ratio\": {always_ratio:.3},\n  \
             \"off\": {},\n  \"group_commit\": {},\n  \"always\": {}\n  }},\n",
            mode_json(&pipelined),
            mode_json(group),
            mode_json(always),
        ),
    };
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"timeline\": \"real\",\n  \
         \"workload\": \"zipfian transfer service (s={ZIPF_S}, think={}us)\",\n  \
         \"threads\": {THREADS},\n  \"accounts\": {ACCOUNTS},\n  \"blocks\": {blocks_n},\n  \
         \"txns_per_block\": {per_block},\n  \"speedup_pipelined_vs_barrier\": {speedup:.3},\n\
         {wal_json}  \"barrier\": {},\n  \"pipelined\": {}\n}}\n",
        think.as_micros(),
        mode_json(&barrier),
        mode_json(&pipelined),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("pipelined vs barrier: {speedup:.2}x");
    println!("wrote {out_path}");

    // Gate: the pipeline must buy a sustained-throughput win on the
    // serve workload (acceptance floor 1.3x; expected ~1.8x).
    assert!(
        speedup >= 1.3,
        "pipelined/barrier throughput ratio below gate: {speedup:.2}"
    );
    // Gate: group-commit durability may cost at most 30% of the no-WAL
    // pipelined throughput (the think time dominates; the journal
    // append is buffered and fsyncs amortize across the group).
    if let Some((policy, _, _, group_ratio, _)) = &wal_section {
        assert!(
            *group_ratio >= 0.7,
            "wal group-commit ({policy}) keeps only {:.0}% of no-wal throughput (gate 70%)",
            group_ratio * 100.0
        );
    }
}
