//! Work-stealing lane benchmark emitting `BENCH_steal.json`.
//!
//! Two workloads isolate the dispatch layer from detection and commit
//! contention — every task writes its own private location, so no task
//! ever aborts and wall clock is pure dispatch:
//!
//! * **hot-queue** — affinity routing piles every task onto one
//!   worker's lane (identical footprints). Without stealing the lane
//!   owner runs the whole batch serially; with stealing the idle
//!   workers halve the hot queue among themselves. Task bodies *sleep*
//!   rather than spin, so the speedup materializes even on a one-core
//!   container (the waiting overlaps like I/O), and the measured ratio
//!   reflects the dispatch layer, not the host's core count.
//! * **uniform** — round-robin placement spreads the batch evenly;
//!   stealing has nothing useful to move and must stay out of the way.
//!
//! Gates (asserted in-binary and re-checked by CI from the JSON):
//! stealing ≥ 1.5× the sealed-lane baseline on hot-queue, ≥ 0.95× on
//! uniform, and every configuration commits every transaction exactly
//! once onto the expected final store.
//!
//! Usage: `bench-steal [--quick] [OUT.json]` (default `BENCH_steal.json`).

use std::sync::Arc;
use std::time::Duration;

use janus_core::{Janus, Store, Task, TxView};
use janus_detect::WriteSetDetector;
use janus_relational::Value;
use janus_sched::{Affinity, ExactFootprints, SchedulePolicy, WorkSteal};

/// `n` conflict-free sleepy tasks: task `i` sleeps `work` then bumps its
/// own location. Disjoint write sets ⇒ zero aborts ⇒ the run's wall
/// clock is dispatch plus sleep overlap, nothing else.
fn disjoint_sleepers(n: usize, work: Duration) -> (Store, Vec<Task>, Vec<janus_log::LocId>) {
    let mut store = Store::new();
    let locs: Vec<_> = (0..n)
        .map(|i| store.alloc(format!("d{i}").as_str(), Value::int(0)))
        .collect();
    let tasks = locs
        .iter()
        .map(|&loc| {
            Task::new(move |tx: &mut TxView| {
                std::thread::sleep(work);
                let v = tx.read_int(loc);
                tx.write(loc, v + 1);
            })
        })
        .collect();
    (store, tasks, locs)
}

struct Row {
    workload: &'static str,
    stealing: bool,
    wall: Duration,
    commits: u64,
    steal_batches: u64,
    stolen_tasks: u64,
    parks_with_work: u64,
}

/// Best-of-`reps` run of one configuration; panics unless every task
/// commits exactly once and the final store is exact.
fn measure(
    workload: &'static str,
    stealing: bool,
    policy: &dyn Fn() -> Arc<dyn SchedulePolicy>,
    n: usize,
    work: Duration,
    threads: usize,
    reps: usize,
) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..reps {
        let (store, tasks, locs) = disjoint_sleepers(n, work);
        let outcome = Janus::new(Arc::new(WriteSetDetector::new()))
            .threads(threads)
            .schedule(policy())
            .run(store, tasks);
        assert_eq!(
            outcome.stats.commits, n as u64,
            "{workload} stealing={stealing}: every task commits exactly once"
        );
        assert_eq!(outcome.stats.retries, 0, "disjoint tasks never retry");
        for &l in &locs {
            assert_eq!(
                outcome.store.value(l),
                Some(&Value::int(1)),
                "{workload} stealing={stealing}: lost or duplicated transaction at {l}"
            );
        }
        let row = Row {
            workload,
            stealing,
            wall: outcome.stats.wall,
            commits: outcome.stats.commits,
            steal_batches: outcome.sched.steal.batches,
            stolen_tasks: outcome.sched.steal.stolen_tasks,
            parks_with_work: outcome.sched.steal.parks_with_work,
        };
        if best.as_ref().is_none_or(|b| row.wall < b.wall) {
            best = Some(row);
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_steal.json".to_string());

    let n = if quick { 96 } else { 160 };
    let work = Duration::from_micros(if quick { 250 } else { 400 });
    let threads = 4usize;
    // Task bodies sleep, so wall jitter is scheduler noise; best-of-5
    // keeps the uniform ratio (expected ~1.0) out of the noise floor.
    let reps = 5usize;

    // Hot queue: identical footprints route the whole batch to one lane.
    let hot_fp = vec![vec![0u64]; n];
    let hot = |fp: Vec<Vec<u64>>, steal: bool| -> Arc<dyn SchedulePolicy> {
        let a = Affinity::new(Arc::new(ExactFootprints(fp)));
        Arc::new(if steal { a } else { a.without_stealing() })
    };
    let rows = vec![
        measure(
            "hot-queue",
            true,
            &|| hot(hot_fp.clone(), true),
            n,
            work,
            threads,
            reps,
        ),
        measure(
            "hot-queue",
            false,
            &|| hot(hot_fp.clone(), false),
            n,
            work,
            threads,
            reps,
        ),
        measure(
            "uniform",
            true,
            &|| Arc::new(WorkSteal::new(20120611)),
            n,
            work,
            threads,
            reps,
        ),
        measure(
            "uniform",
            false,
            &|| Arc::new(WorkSteal::new(20120611).without_stealing()),
            n,
            work,
            threads,
            reps,
        ),
    ];

    let wall_of = |workload: &str, stealing: bool| -> f64 {
        rows.iter()
            .find(|r| r.workload == workload && r.stealing == stealing)
            .map(|r| r.wall.as_secs_f64())
            .expect("measured configuration")
    };
    // Ratios are sealed-lane wall over stealing wall: > 1 means the
    // thieves paid for themselves.
    let hot_ratio = wall_of("hot-queue", false) / wall_of("hot-queue", true);
    let uniform_ratio = wall_of("uniform", false) / wall_of("uniform", true);
    let hot_steals = rows
        .iter()
        .find(|r| r.workload == "hot-queue" && r.stealing)
        .map(|r| r.steal_batches)
        .unwrap_or(0);

    let mut json = String::from("{\n  \"bench\": \"steal\",\n  \"timeline\": \"real\",\n");
    json.push_str(&format!(
        "  \"tasks\": {n},\n  \"threads\": {threads},\n  \
         \"task_sleep_us\": {},\n  \"hot_ratio\": {hot_ratio:.3},\n  \
         \"uniform_ratio\": {uniform_ratio:.3},\n  \"rows\": [\n",
        work.as_micros()
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"stealing\": {}, \"wall_s\": {:.6}, \
             \"commits\": {}, \"steal_batches\": {}, \"stolen_tasks\": {}, \
             \"parks_with_work\": {}}}{}\n",
            r.workload,
            r.stealing,
            r.wall.as_secs_f64(),
            r.commits,
            r.steal_batches,
            r.stolen_tasks,
            r.parks_with_work,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_steal.json");

    for r in &rows {
        eprintln!(
            "{:9} stealing={:5}  wall={:9.4}ms  commits={}  batches={:3}  \
             moved={:3}  parks-with-work={}",
            r.workload,
            r.stealing,
            r.wall.as_secs_f64() * 1e3,
            r.commits,
            r.steal_batches,
            r.stolen_tasks,
            r.parks_with_work,
        );
    }
    println!(
        "hot-queue speedup {hot_ratio:.2}x ({hot_steals} steal batches), \
         uniform ratio {uniform_ratio:.2}x"
    );
    println!("wrote {out_path} ({} configs)", rows.len());

    // Gates. The hot-queue bound is the satellite's success metric: idle
    // lanes must at least halve the serial drain (1.5x leaves headroom
    // for dispatch overhead); on uniform queues stealing must cost at
    // most 5%.
    assert!(
        hot_ratio >= 1.5,
        "hot-queue stealing speedup below gate: {hot_ratio:.2}x"
    );
    assert!(
        uniform_ratio >= 0.95,
        "uniform stealing overhead above gate: {uniform_ratio:.2}x"
    );
    assert!(hot_steals > 0, "hot-queue run never stole");
}
