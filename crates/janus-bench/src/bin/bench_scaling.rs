//! Commit-throughput scaling sweep emitting `BENCH_scaling.json`.
//!
//! Measures how commit throughput scales with thread count on a
//! *disjoint-shard* workload — every task touches locations of its own
//! class, so tasks never conflict and the only serialization left is the
//! store's commit path. With the sharded store, disjoint commits go
//! through different shard locks and overlap; the sweep quantifies that
//! by comparing 2-thread and 16-thread throughput at several shard
//! counts.
//!
//! The host may be a single-core container, so the sweep runs on the
//! virtual-time simulator (the DESIGN.md substitution policy): task
//! bodies, detection and replay execute for real and are timed with a
//! monotonic clock, while the parallel timeline — including the
//! per-shard commit locks — is simulated. The JSON labels this honestly
//! (`"timeline": "virtual"`); ratios between configs are the meaningful
//! signal, absolute times are informational.
//!
//! Usage: `bench-scaling [--quick] [OUT.json]` (default
//! `BENCH_scaling.json`).

use std::sync::Arc;

use janus_bench::sim::{sequential_baseline, simulate_sharded};
use janus_core::{Store, Task, TxView};
use janus_detect::{ConflictDetector, SequenceDetector};
use janus_relational::Value;

/// One class (and thus one shard residue) per task group, `ops` locations
/// each: thread counts up to the group count can commit fully disjointly.
/// Each task writes all of its group's locations, so commit-time replay
/// carries real weight and the commit lock — global vs per-shard — is
/// what the sweep actually measures.
fn disjoint_setup(
    classes: usize,
    tasks_per_class: usize,
    ops: usize,
    work: u64,
) -> (Store, Vec<Task>) {
    let mut store = Store::new();
    let locs: Vec<Vec<_>> = (0..classes)
        .map(|c| {
            (0..ops)
                .map(|_| store.alloc(format!("group{c}").as_str(), Value::int(0)))
                .collect()
        })
        .collect();
    let tasks = (0..classes * tasks_per_class)
        .map(|i| {
            let mine = locs[i % classes].clone();
            Task::new(move |tx: &mut TxView| {
                for &loc in &mine {
                    tx.add(loc, 1);
                }
                janus_workloads::local_work(work);
            })
        })
        .collect();
    (store, tasks)
}

struct Row {
    threads: usize,
    shards: usize,
    commits: u64,
    retries: u64,
    virtual_wall: f64,
    throughput: f64,
    speedup_vs_seq: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    let classes = 16usize;
    let tasks_per_class = if quick { 4 } else { 12 };
    let ops = 16usize;
    let work: u64 = if quick { 15_000 } else { 40_000 };
    let thread_grid: &[usize] = &[1, 2, 4, 8, 16];
    let shard_grid: &[usize] = &[1, 8, 64];

    let (store, tasks) = disjoint_setup(classes, tasks_per_class, ops, work);
    let (_, seq_wall) = sequential_baseline(store.clone(), &tasks);
    let det: Arc<dyn ConflictDetector> = Arc::new(SequenceDetector::new());

    // Body/replay costs are measured with a monotonic clock on a
    // possibly loaded box; the minimum wall over a few repetitions is
    // the standard noise-free estimate.
    let reps = 3;
    let mut rows = Vec::new();
    for &shards in shard_grid {
        for &threads in thread_grid {
            let mut best: Option<janus_bench::sim::SimMetrics> = None;
            for _ in 0..reps {
                let (_, m) = simulate_sharded(store.clone(), &tasks, &det, threads, shards);
                assert_eq!(m.commits, tasks.len() as u64, "every task commits");
                if best
                    .as_ref()
                    .is_none_or(|b| m.virtual_wall < b.virtual_wall)
                {
                    best = Some(m);
                }
            }
            let m = best.expect("at least one repetition");
            rows.push(Row {
                threads,
                shards,
                commits: m.commits,
                retries: m.retries,
                virtual_wall: m.virtual_wall,
                throughput: m.commits as f64 / m.virtual_wall,
                speedup_vs_seq: seq_wall / m.virtual_wall,
            });
        }
    }

    let ratio_at = |shards: usize, hi: usize, lo: usize| -> f64 {
        let pick = |t: usize| {
            rows.iter()
                .find(|r| r.shards == shards && r.threads == t)
                .map(|r| r.throughput)
                .unwrap_or(0.0)
        };
        pick(hi) / pick(lo)
    };
    let scaling_16v2_sharded = ratio_at(64, 16, 2);
    let scaling_16v2_single = ratio_at(1, 16, 2);

    let mut json = String::from(
        "{\n  \"bench\": \"scaling\",\n  \"timeline\": \"virtual\",\n  \
         \"workload\": \"disjoint-shard (16 classes, add-only)\",\n",
    );
    json.push_str(&format!(
        "  \"sequential_wall_s\": {seq_wall:.6},\n  \
         \"scaling_16v2_sharded\": {scaling_16v2_sharded:.3},\n  \
         \"scaling_16v2_single_lock\": {scaling_16v2_single:.3},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"shards\": {}, \"commits\": {}, \"retries\": {}, \
             \"virtual_wall_s\": {:.6}, \"throughput_commits_per_s\": {:.1}, \
             \"speedup_vs_seq\": {:.3}}}{}\n",
            r.threads,
            r.shards,
            r.commits,
            r.retries,
            r.virtual_wall,
            r.throughput,
            r.speedup_vs_seq,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_scaling.json");

    for r in &rows {
        eprintln!(
            "threads={:2} shards={:2}  commits={:3} retries={:2}  wall={:.4}s  \
             {:>9.1} commits/s  speedup={:5.2}",
            r.threads,
            r.shards,
            r.commits,
            r.retries,
            r.virtual_wall,
            r.throughput,
            r.speedup_vs_seq,
        );
    }
    println!(
        "16-vs-2-thread throughput ratio: {scaling_16v2_sharded:.2}x sharded (64), \
         {scaling_16v2_single:.2}x single lock"
    );
    println!("wrote {out_path} ({} configs)", rows.len());

    // Gate: near-linear scaling on disjoint shards is the tentpole's
    // success metric — 16 threads must out-commit 2 threads by >= 6x
    // with the sharded store (and the single-lock baseline must not).
    assert!(
        scaling_16v2_sharded >= 6.0,
        "sharded 16-vs-2-thread ratio below gate: {scaling_16v2_sharded:.2}"
    );
}
