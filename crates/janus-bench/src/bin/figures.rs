//! Regenerates every table and figure of the JANUS evaluation (§7).
//!
//! ```text
//! figures [--table5] [--table6] [--fig9] [--fig10] [--fig11] [--classes]
//!         [--pipeline] [--attribution] [--contention] [--durability]
//!         [--all] [--quick]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--quick` scales the
//! production inputs down for smoke runs.

use janus_bench::contention::{contention_sweep, ContentionPoint};
use janus_bench::experiments::{
    attribution_traces, block_pipeline, commit_pipeline, conflict_classes, figure11, headline,
    pipeline_counters, speedup_retry_grid, table5, table6, GridPoint, THREAD_GRID,
};
use std::sync::Arc;

use janus_bench::report::{bar, f2, pct, render_table};
use janus_core::{Janus, Store, Task};
use janus_detect::SequenceDetector;
use janus_fault::{CrashSite, FaultKind, FaultPlan, FaultSite};
use janus_obs::{text_report, MetricsRegistry};
use janus_relational::Value;
use janus_wal::{recover, FsyncPolicy, Wal};

/// The faulted attribution entry injects panics on purpose; keep their
/// backtraces out of the report. Genuine panics still print.
fn quiet_injected_panics() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("janus-fault:"));
        if !injected {
            hook(info);
        }
    }));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let quick = has("--quick");
    let all = has("--all")
        || !(has("--table5")
            || has("--table6")
            || has("--fig9")
            || has("--fig10")
            || has("--fig11")
            || has("--classes")
            || has("--pipeline")
            || has("--attribution")
            || has("--contention")
            || has("--durability"));

    if all || has("--table5") {
        println!("== Table 5: benchmark characteristics ==");
        println!(
            "{}",
            render_table(
                &["name", "source", "description", "prevalent patterns"],
                &table5()
            )
        );
    }

    if all || has("--table6") {
        println!("== Table 6: training and production inputs ==");
        println!(
            "{}",
            render_table(
                &["name", "input", "training data", "production data"],
                &table6()
            )
        );
    }

    let need_grid = all || has("--fig9") || has("--fig10");
    let grid: Vec<GridPoint> = if need_grid {
        eprintln!("running the Figure 9/10 grid (quick={quick})...");
        speedup_retry_grid(quick)
    } else {
        Vec::new()
    };

    if all || has("--fig9") {
        println!("== Figure 9: speedup vs sequential (virtual-time simulation) ==");
        let max_speedup = grid.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
        let mut rows = Vec::new();
        for p in &grid {
            rows.push(vec![
                p.workload.to_string(),
                p.detector.to_string(),
                p.threads.to_string(),
                f2(p.speedup),
                bar(p.speedup, max_speedup, 24),
                if p.check_ok { "ok" } else { "WRONG" }.to_string(),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["workload", "detector", "threads", "speedup", "", "state"],
                &rows
            )
        );
        let h = headline(&grid, *THREAD_GRID.last().expect("non-empty grid"));
        println!(
            "headline @ {} threads: sequence mean speedup {} (max {}), write-set mean {}",
            h.threads,
            f2(h.seq_mean_speedup),
            f2(h.seq_max_speedup),
            f2(h.ws_mean_speedup),
        );
        println!("paper @ 8 threads: sequence mean 1.5x (max ~2.5x), write-set mean 0.6x\n");
    }

    if all || has("--fig10") {
        println!("== Figure 10: retries per transaction ==");
        let mut rows = Vec::new();
        for p in &grid {
            rows.push(vec![
                p.workload.to_string(),
                p.detector.to_string(),
                p.threads.to_string(),
                p.retries.to_string(),
                f2(p.retry_ratio()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["workload", "detector", "threads", "retries", "retries/txn"],
                &rows
            )
        );
        let h = headline(&grid, *THREAD_GRID.last().expect("non-empty grid"));
        let factor = if h.seq_mean_retry_ratio > 0.0 {
            h.ws_mean_retry_ratio / h.seq_mean_retry_ratio
        } else {
            f64::INFINITY
        };
        println!(
            "headline @ {} threads: sequence {} retries/txn, write-set {} ({}x more)",
            h.threads,
            f2(h.seq_mean_retry_ratio),
            f2(h.ws_mean_retry_ratio),
            if factor.is_finite() {
                f2(factor)
            } else {
                "inf".to_string()
            },
        );
        println!("paper @ 8 threads: sequence 0.07, write-set 1.51 (22x more)\n");
    }

    if all || has("--classes") {
        eprintln!("attributing write-set conflicts to classes (quick={quick})...");
        println!("== Conflicting shared structures under write-set detection @ 8 threads ==");
        let rows: Vec<Vec<String>> = conflict_classes(quick)
            .into_iter()
            .map(|(w, c, n)| vec![w, c, n.to_string()])
            .collect();
        println!(
            "{}",
            render_table(&["workload", "class", "conflicting cells"], &rows)
        );
    }

    if all || has("--pipeline") {
        eprintln!("running the commit-pipeline comparison (quick={quick})...");
        println!("== Commit pipeline: validation cost vs window size (4 clock advances) ==");
        let rows: Vec<Vec<String>> = commit_pipeline(quick)
            .iter()
            .map(|r| {
                vec![
                    r.segments.to_string(),
                    r.window_ops.to_string(),
                    format!("{:.1}", r.flat_secs * 1e6),
                    format!("{:.1}", r.incremental_secs * 1e6),
                    f2(r.speedup()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "segments",
                    "window ops",
                    "flat-reclone (us)",
                    "incremental (us)",
                    "speedup"
                ],
                &rows
            )
        );
        let (s, shards) = pipeline_counters(quick);
        println!(
            "live run @ 4 threads: {} commits, {} retries, {} windows served zero-copy, \
             {} delta re-validations, {} ops scanned",
            s.commits, s.retries, s.zero_copy_windows, s.delta_revalidations, s.detect_ops_scanned,
        );
        println!(
            "fingerprint fast path: {} segments skipped in O(1), {} segments scanned",
            s.fastpath_segments_skipped, s.fastpath_segments_scanned,
        );
        let busy: Vec<String> = shards
            .0
            .iter()
            .filter(|sh| sh.commits > 0 || sh.pruned > 0)
            .map(|sh| {
                format!(
                    "s{}: {} commits, {} pruned, lock-wait p99<={}ns",
                    sh.shard,
                    sh.commits,
                    sh.pruned,
                    sh.lock_wait_ns.percentile(99.0)
                )
            })
            .collect();
        println!(
            "sharded store: {} of {} shards active ({}); merged lock-wait {}",
            busy.len(),
            shards.0.len(),
            busy.join("; "),
            shards.lock_wait_ns().render(),
        );
        println!("(flat-reclone re-copies the whole window at every clock advance; the pipeline scans only deltas)\n");

        eprintln!("running the block-pipeline comparison (quick={quick})...");
        println!("== Block pipeline: barrier vs depth-2 pipelined stream (real timeline) ==");
        let points = block_pipeline(quick);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.mode.to_string(),
                    format!("{:.1}ms", p.wall_secs * 1e3),
                    format!("{:.0}", p.txns_per_s()),
                    p.report.gate_waits.to_string(),
                    p.report.overlapped_commits.to_string(),
                    format!("{}", p.report.overlap_permille),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "mode",
                    "wall",
                    "txn/s",
                    "gate waits",
                    "overlapped commits",
                    "overlap (permille)"
                ],
                &rows
            )
        );
        if let [barrier, pipelined] = points.as_slice() {
            println!(
                "block-pipeline headline: {}x sustained throughput from overlapping execution \
                 with the predecessor's commit\n",
                f2(pipelined.txns_per_s() / barrier.txns_per_s()),
            );
        }
    }

    if all || has("--attribution") {
        eprintln!("recording lifecycle traces under write-set detection (quick={quick})...");
        println!("== Abort attribution: lifecycle traces under write-set detection ==");
        quiet_injected_panics();
        for (name, trace, stats) in attribution_traces(quick) {
            let consistent = trace.count("commit") == stats.commits
                && trace.count("abort") == stats.retries + stats.tasks_failed
                && trace.check_well_formed().is_ok();
            println!(
                "-- {name} (trace consistency: {}) --",
                if consistent { "ok" } else { "BROKEN" }
            );
            if stats.faults_injected > 0 || stats.tasks_failed > 0 {
                println!(
                    "robustness: {} faults injected, {} tasks failed, {} budget escalations, {} watchdog fires",
                    stats.faults_injected,
                    stats.tasks_failed,
                    stats.retry_budget_escalations,
                    stats.watchdog_fires,
                );
            }
            println!("{}", text_report(&trace, 5));
        }
    }

    if all || has("--contention") {
        eprintln!("running the contention sweep (quick={quick})...");
        println!("== Contention sweep: scheduling policies on the hotspot workload ==");
        let points = contention_sweep(quick);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{}%", p.hot_pct),
                    p.policy.to_string(),
                    if p.degrade { "on" } else { "off" }.to_string(),
                    p.retries.to_string(),
                    f2(p.retry_ratio()),
                    f2(p.wall_vs_sequential()),
                    p.degrade_windows.to_string(),
                    if p.check_ok { "ok" } else { "WRONG" }.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "hot",
                    "policy",
                    "degrade",
                    "retries",
                    "retries/txn",
                    "wall/seq",
                    "deg windows",
                    "state"
                ],
                &rows
            )
        );
        // Headline: how much of fifo's retry storm the adaptive policies
        // remove at the hottest setting.
        let ratio_of = |policy: &str| {
            points
                .iter()
                .filter(|p| p.policy == policy && !p.degrade && p.hot_pct == 100)
                .map(ContentionPoint::retry_ratio)
                .next()
                .unwrap_or(0.0)
        };
        println!(
            "headline @ 100% hot: fifo {} retries/txn, backoff {}, affinity {}\n",
            f2(ratio_of("fifo")),
            f2(ratio_of("backoff")),
            f2(ratio_of("affinity")),
        );
    }

    if all || has("--fig11") {
        eprintln!("running the Figure 11 experiment (quick={quick})...");
        println!("== Figure 11: unique-query cache miss rate @ 8 threads ==");
        let rows: Vec<Vec<String>> = figure11(quick)
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    pct(r.miss_with()),
                    pct(r.miss_without()),
                    format!("{}/{}", r.with_abstraction.0, r.with_abstraction.1),
                    format!("{}/{}", r.without_abstraction.0, r.without_abstraction.1),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "workload",
                    "miss (abs)",
                    "miss (no abs)",
                    "hits/misses (abs)",
                    "hits/misses (no abs)"
                ],
                &rows
            )
        );
        println!("paper: ≤17% average miss rate with abstraction (worst 30%), 38% without (worst ~80%)\n");
    }

    if all || has("--durability") {
        eprintln!("running the durability demo (journal, mid-write kill, recovery)...");
        println!("== Durability: commit journal, mid-write kill, recovery ==");
        let dir = std::path::Path::new("target/tmp/figures-wal");
        let _ = std::fs::remove_dir_all(dir);
        let accounts_n = 16usize;
        let tasks_n: usize = if quick { 16 } else { 48 };
        let crash_at = (tasks_n / 2) as u64;

        // Every boot reconstructs the same base store; only the journal
        // carries history across the kill.
        let mk_store = || {
            let mut s = Store::new();
            let locs: Vec<_> = (0..accounts_n)
                .map(|i| s.alloc(format!("acct{i}").as_str(), Value::int(0)))
                .collect();
            (s, locs)
        };

        // Run 1: a transfer stream journaled under group commit, with a
        // deterministic kill landing mid-write of one ticket's record.
        let (store, locs) = mk_store();
        let plan = Arc::new(FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CrashPoint,
            subject: crash_at,
            attempt: CrashSite::PostAppendPreFsync.attempt(),
        }]));
        let wal = Wal::open_with_faults(dir, FsyncPolicy::EveryN(4), 0, Some(plan))
            .expect("open journal");
        let tasks: Vec<Task> = (0..tasks_n)
            .map(|i| {
                let src = locs[i % accounts_n];
                let dst = locs[(i * 7 + 3) % accounts_n];
                Task::new(move |tx| {
                    tx.add(src, -5);
                    tx.add(dst, 5);
                })
            })
            .collect();
        let _ = Janus::new(Arc::new(SequenceDetector::new()))
            .threads(4)
            .commit_sink(wal.sink())
            .run(store, tasks);
        println!(
            "run 1: {tasks_n} transfers journaled under every-n:4; the process dies mid-write \
             of ticket {crash_at}'s record"
        );
        drop(wal);

        // Run 2: recover from the journal, then shut down cleanly
        // (snapshot, truncate, clean marker).
        let (base, locs2) = mk_store();
        let rec = recover(dir, base).expect("recover");
        let balance: i64 = locs2
            .iter()
            .map(|&l| rec.store.value(l).and_then(Value::as_int).unwrap_or(0))
            .sum();
        println!(
            "run 2: recovered commit_seq={} ({} commits replayed, {} torn tail truncated, \
             balance conserved: {})",
            rec.commit_seq,
            rec.commits_replayed,
            rec.torn_tail_truncations,
            if balance == 0 { "ok" } else { "BROKEN" },
        );
        let wal2 =
            Wal::open(dir, FsyncPolicy::EveryN(4), rec.commit_seq).expect("open after recovery");
        wal2.stats().note_recovery(&rec);
        wal2.snapshot_and_truncate(&rec.store).expect("snapshot");
        wal2.mark_clean().expect("clean marker");
        let mut m = MetricsRegistry::new();
        m.absorb(wal2.stats().as_ref());
        println!("-- wal counters (run 2: recovery, snapshot, clean shutdown) --");
        println!("{}", m.render());
        drop(wal2);

        // Run 3: the clean marker and snapshot make the next boot
        // trivial — nothing to replay, no tail to scan.
        let again = recover(dir, mk_store().0).expect("recover again");
        println!(
            "run 3: clean={} snapshot={:?} commit_seq={} records_replayed={} — the snapshot \
             absorbed the history\n",
            again.clean,
            again.snapshot_seq,
            again.commit_seq,
            again.commits_replayed + again.skips_replayed,
        );
    }
}
