//! Quick fast-path sweep emitting machine-readable `BENCH_fastpath.json`.
//!
//! CI runs this on every push and uploads the JSON as an artifact, so the
//! perf trajectory of the fingerprint prefilter accumulates a baseline
//! future PRs can diff against. Each config records the detector, the
//! workload pole (disjoint vs overlapping footprints), whether the
//! prefilter was enabled, the exact validation work performed (ops
//! scanned, segments skipped / scanned — deterministic) and the measured
//! wall-clock per validation pass (environment-dependent, informational).
//!
//! Usage: `bench-fastpath [--quick] [OUT.json]` (default `BENCH_fastpath.json`).

use std::sync::Arc;
use std::time::Instant;

use janus_detect::{ConflictDetector, MapState, SequenceDetector, WriteSetDetector};
use janus_log::{ClassId, CommittedLog, HistoryWindow, LocId, Op, OpKind, ScalarOp};
use janus_relational::Value;

fn footprint_log(locs: impl Iterator<Item = u64>) -> Vec<Op> {
    let mut out = Vec::new();
    for loc in locs {
        let mut v = Value::int(0);
        for delta in [1i64, -1] {
            out.push(
                Op::execute(
                    LocId(loc),
                    ClassId::new(format!("c{}", loc / 4)),
                    OpKind::Scalar(ScalarOp::Add(delta)),
                    &mut v,
                )
                .0,
            );
        }
    }
    out
}

fn history(n_segments: usize, overlap: bool) -> Vec<Arc<CommittedLog>> {
    (0..n_segments as u64)
        .map(|i| {
            let locs = if overlap {
                0..4u64
            } else {
                1_000 + i * 4..1_000 + i * 4 + 4
            };
            Arc::new(CommittedLog::new(footprint_log(locs)))
        })
        .collect()
}

struct Row {
    detector: &'static str,
    workload: &'static str,
    prefilter: bool,
    segments: usize,
    ops_scanned: u64,
    segments_skipped: u64,
    segments_scanned: u64,
    nanos_per_pass: f64,
}

fn measure(
    detector: &'static str,
    make: &dyn Fn() -> Box<dyn ConflictDetector>,
    workload: &'static str,
    prefilter: bool,
    n_segments: usize,
    iters: u32,
) -> Row {
    let entry = MapState::default();
    let txn = CommittedLog::new(footprint_log(0..8));
    let segments = history(n_segments, workload == "overlap");
    let window = HistoryWindow::new(&segments);
    let det = make();

    // One instrumented pass for the deterministic counters.
    let ops0 = det.stats().ops_scanned();
    let skip0 = det.stats().segments_skipped();
    let scan0 = det.stats().segments_scanned();
    det.begin_validation(&entry, &txn).extend(&window);
    let ops_scanned = det.stats().ops_scanned() - ops0;
    let segments_skipped = det.stats().segments_skipped() - skip0;
    let segments_scanned = det.stats().segments_scanned() - scan0;

    // Warm, then time the validation pass.
    for _ in 0..iters / 4 {
        det.begin_validation(&entry, &txn).extend(&window);
    }
    let start = Instant::now();
    for _ in 0..iters {
        det.begin_validation(&entry, &txn).extend(&window);
    }
    let nanos_per_pass = start.elapsed().as_nanos() as f64 / f64::from(iters);

    Row {
        detector,
        workload,
        prefilter,
        segments: n_segments,
        ops_scanned,
        segments_skipped,
        segments_scanned,
        nanos_per_pass,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_fastpath.json".to_string());

    let segment_counts: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    let iters: u32 = if quick { 200 } else { 1_000 };

    #[allow(clippy::type_complexity)]
    let detectors: [(&'static str, Box<dyn Fn(bool) -> Box<dyn ConflictDetector>>); 2] = [
        (
            "write-set",
            Box::new(|p| Box::new(WriteSetDetector::new().prefilter(p))),
        ),
        (
            "sequence",
            Box::new(|p| Box::new(SequenceDetector::new().prefilter(p))),
        ),
    ];

    let mut rows = Vec::new();
    for (name, make) in &detectors {
        for workload in ["disjoint", "overlap"] {
            for &n_segments in segment_counts {
                for prefilter in [true, false] {
                    rows.push(measure(
                        name,
                        &|| make(prefilter),
                        workload,
                        prefilter,
                        n_segments,
                        iters,
                    ));
                }
            }
        }
    }

    let mut json = String::from("{\n  \"bench\": \"fastpath\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"detector\": \"{}\", \"workload\": \"{}\", \"prefilter\": {}, \
             \"segments\": {}, \"ops_scanned\": {}, \"segments_skipped\": {}, \
             \"segments_scanned\": {}, \"nanos_per_pass\": {:.1}}}{}\n",
            r.detector,
            r.workload,
            r.prefilter,
            r.segments,
            r.ops_scanned,
            r.segments_skipped,
            r.segments_scanned,
            r.nanos_per_pass,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_fastpath.json");

    // Human-readable echo plus a sanity gate: the disjoint workload must
    // actually exercise the skip path, otherwise the artifact is lying.
    let mut skipped_disjoint = 0u64;
    for r in &rows {
        eprintln!(
            "{:9} {:8} prefilter={:5} segments={:3}  ops={:5} skipped={:3} scanned={:3}  {:>10.0} ns/pass",
            r.detector,
            r.workload,
            r.prefilter,
            r.segments,
            r.ops_scanned,
            r.segments_skipped,
            r.segments_scanned,
            r.nanos_per_pass,
        );
        if r.workload == "disjoint" && r.prefilter {
            skipped_disjoint += r.segments_skipped;
        }
    }
    assert!(
        skipped_disjoint > 0,
        "fingerprint prefilter skipped nothing on disjoint footprints"
    );
    println!("wrote {out_path} ({} configs)", rows.len());
}
