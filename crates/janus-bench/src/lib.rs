//! The JANUS experiment harness: regenerates every table and figure of
//! the paper's evaluation (§7).
//!
//! * [`sim`] — a virtual-time multicore simulator used for Figure 9 when
//!   the host exposes fewer cores than the experiment needs: tasks,
//!   conflict checks and commits all execute *for real* and are timed;
//!   only the parallel timeline is simulated, with the exact Figure 7
//!   protocol semantics.
//! * [`experiments`] — drivers for Tables 5 & 6 and Figures 9–11.
//! * [`contention`] — the scheduling-policy contention sweep (hotspot
//!   workload, fifo vs backoff vs affinity, with/without degradation).
//! * [`report`] — plain-text table rendering for the `figures` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod experiments;
pub mod report;
pub mod sim;
