//! Plain-text table rendering for experiment reports.

/// Renders a fixed-width table with a header row and a separator.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a proportional bar of at most `width` cells ('█' blocks; at
/// least one block for any positive value).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if value <= 0.0 || value.is_nan() || max <= 0.0 || max.is_nan() {
        return String::new();
    }
    let cells = ((value / max) * width as f64).round() as usize;
    "█".repeat(cells.clamp(1, width))
}

/// Formats an optional percentage.
pub fn pct(x: Option<f64>) -> String {
    match x {
        Some(p) => format!("{p:.1}%"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(Some(16.67)), "16.7%");
        assert_eq!(pct(None), "-");
    }

    #[test]
    fn bars_are_proportional_and_clamped() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(
            bar(0.01, 10.0, 10).chars().count(),
            1,
            "positive => visible"
        );
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10, "clamped to width");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
