//! Abstraction specifications for shared data structures (§6 and §3
//! stage 1 of the JANUS paper).
//!
//! The user maps each concrete data structure to its relational
//! representation: the semantic state is a set of relations, and the
//! structure's operations are expressed with the relational primitives of
//! Table 2. The `BitSet` of Figure 3, for instance, becomes a 2-ary
//! relation from integral indices to booleans; `get` is a select query,
//! and `set` removes the matching tuple and inserts the new one — which
//! [`janus_relational::Relation::insert`] does in one step thanks to the
//! functional dependency.
//!
//! Each type here is such a specification: a typed handle over one (or
//! two) shared locations, whose methods emit the relational model of the
//! corresponding ADT operation through [`janus_core::TxView`]. Conflict
//! detection then reasons about the *abstract* state, suppressing the
//! spurious conflicts a concrete realization (arrays, hash buckets,
//! resize counters) would exhibit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod canvas;
mod counter;
mod map;
mod maxreg;
mod stack;

pub use bitset::BitSetAdt;
pub use canvas::Canvas;
pub use counter::{Cell, Counter};
pub use map::MapAdt;
pub use maxreg::MaxRegister;
pub use stack::StackList;
