//! A drawing surface modelling Weka's `Graphics2D` usage (Figure 5).

use std::sync::Arc;

use janus_core::{Store, TxView};
use janus_log::{LocId, OpResult};
use janus_relational::{Fd, Formula, RelOp, Relation, Scalar, Schema, Tuple, Value};

/// A shared canvas: a brush-color cell plus a pixel relation
/// `{(x, y, color)}` with the functional dependency `(x, y) → color`.
///
/// `set_color` blind-writes the brush; drawing primitives read the brush
/// (covered — every Weka iteration sets the color before drawing) and
/// insert one tuple per pixel. Two transactions painting an overlapping
/// pixel conflict only if they paint it *different* colors — the
/// equal-writes pattern.
#[derive(Debug, Clone)]
pub struct Canvas {
    brush: LocId,
    pixels: LocId,
    schema: Arc<Schema>,
}

impl Canvas {
    /// Allocates a canvas with a default black (0) brush.
    pub fn alloc(store: &mut Store, class: &str) -> Self {
        let schema = Schema::with_fd(&["x", "y", "color"], Fd::new(&[0, 1], &[2]));
        let pixels = store.alloc(
            format!("{class}.pixels").as_str(),
            Value::Rel(Relation::empty(Arc::clone(&schema))),
        );
        let brush = store.alloc(format!("{class}.brush").as_str(), Value::int(0));
        Canvas {
            brush,
            pixels,
            schema,
        }
    }

    /// The pixel-relation location.
    pub fn pixels_loc(&self) -> LocId {
        self.pixels
    }

    /// The brush location.
    pub fn brush_loc(&self) -> LocId {
        self.brush
    }

    /// Sets the brush color (`g.setColor(c)`).
    pub fn set_color(&self, tx: &mut TxView, color: i64) {
        tx.write(self.brush, color);
    }

    /// The current brush color (observing; covered if `set_color` was
    /// called earlier in the same transaction).
    pub fn color(&self, tx: &mut TxView) -> i64 {
        tx.read_int(self.brush)
    }

    /// Paints one pixel with the current brush color.
    pub fn plot(&self, tx: &mut TxView, x: i64, y: i64) {
        let c = self.color(tx);
        tx.rel(
            self.pixels,
            RelOp::insert(Tuple::new(vec![
                Scalar::Int(x),
                Scalar::Int(y),
                Scalar::Int(c),
            ])),
        );
    }

    /// Draws an axis-aligned line (`g.drawLine`), painting every pixel on
    /// the segment with the brush color.
    pub fn draw_line(&self, tx: &mut TxView, x1: i64, y1: i64, x2: i64, y2: i64) {
        let steps = (x2 - x1).abs().max((y2 - y1).abs());
        if steps == 0 {
            self.plot(tx, x1, y1);
            return;
        }
        for i in 0..=steps {
            let x = x1 + (x2 - x1) * i / steps;
            let y = y1 + (y2 - y1) * i / steps;
            self.plot(tx, x, y);
        }
    }

    /// Fills an axis-aligned rectangle (`g.fillOval`'s stand-in),
    /// painting every covered pixel.
    pub fn fill_rect(&self, tx: &mut TxView, x: i64, y: i64, w: i64, h: i64) {
        for dx in 0..w {
            for dy in 0..h {
                self.plot(tx, x + dx, y + dy);
            }
        }
    }

    /// Reads one pixel's color, if painted (observing).
    pub fn pixel(&self, tx: &mut TxView, x: i64, y: i64) -> Option<i64> {
        let f = Formula::eq(0, x).and(Formula::eq(1, y));
        match tx.rel(self.pixels, RelOp::select(f)) {
            OpResult::Tuples(ts) => ts.first().and_then(|t| t.get(2).as_int()),
            _ => None,
        }
    }

    /// The number of painted pixels in a store (outside any transaction).
    pub fn painted(&self, store: &Store) -> usize {
        store
            .value(self.pixels)
            .and_then(Value::as_rel)
            .map(Relation::len)
            .expect("pixels location holds a relation")
    }

    /// The schema (exposed for tests and specs).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::{Janus, Task};
    use janus_detect::SequenceDetector;

    #[test]
    fn drawing_primitives() {
        let mut store = Store::new();
        let cv = Canvas::alloc(&mut store, "graph");
        let h = cv.clone();
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            h.set_color(tx, 7);
            h.plot(tx, 1, 1);
            h.draw_line(tx, 0, 0, 3, 0);
            h.fill_rect(tx, 10, 10, 2, 2);
            assert_eq!(h.pixel(tx, 1, 1), Some(7));
            assert_eq!(h.pixel(tx, 2, 0), Some(7));
            assert_eq!(h.pixel(tx, 11, 11), Some(7));
            assert_eq!(h.pixel(tx, 50, 50), None);
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        // plot(1,1) + 4 line pixels + 4 rect pixels
        assert_eq!(cv.painted(&final_store), 9);
    }

    #[test]
    fn equal_color_overlap_does_not_conflict() {
        // Two tasks painting the same pixel the same color: the
        // equal-writes pattern admits them concurrently.
        let mut store = Store::new();
        let cv = Canvas::alloc(&mut store, "graph");
        let tasks: Vec<Task> = (0..6)
            .map(|_| {
                let h = cv.clone();
                Task::new(move |tx: &mut TxView| {
                    h.set_color(tx, 3);
                    h.plot(tx, 5, 5);
                })
            })
            .collect();
        let janus = Janus::new(std::sync::Arc::new(SequenceDetector::new())).threads(3);
        let outcome = janus.run(store, tasks);
        assert_eq!(cv.painted(&outcome.store), 1);
        assert_eq!(outcome.stats.retries, 0, "equal writes must not conflict");
    }

    #[test]
    fn different_color_overlap_conflicts() {
        let mut store = Store::new();
        let cv = Canvas::alloc(&mut store, "graph");
        let tasks: Vec<Task> = (0..4)
            .map(|i| {
                let h = cv.clone();
                Task::new(move |tx: &mut TxView| {
                    h.set_color(tx, i as i64);
                    h.plot(tx, 5, 5);
                })
            })
            .collect();
        let janus = Janus::new(std::sync::Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, tasks);
        assert_eq!(cv.painted(&outcome.store), 1);
        // Some serialization had to happen; the run still terminates with
        // one of the colors winning.
        assert_eq!(outcome.stats.commits, 4);
    }
}
