//! A max-register: the semantic lifting of `if (v > reg) reg = v`.
//!
//! JGraphT's greedy coloring tracks the largest color assigned so far
//! (Figure 3). Written as a read-compare-write, the bookkeeping creates a
//! read-after-write dependence on every iteration — the paper treats the
//! reads as *spurious* and suppresses them with a relaxation. A max
//! register goes one better: the update is expressed as a blind
//! commutative `max`, so concurrent updates never conflict at all and no
//! relaxation is needed. This is the kind of semantic re-modelling that
//! abstraction specifications exist for.

use janus_core::{Store, TxView};
use janus_log::LocId;
use janus_relational::Value;

/// A shared integer register supporting blind `max` updates.
///
/// # Example
///
/// ```
/// use janus_adt::MaxRegister;
/// use janus_core::{Janus, Store, Task};
/// use janus_detect::SequenceDetector;
/// use std::sync::Arc;
///
/// let mut store = Store::new();
/// let max_color = MaxRegister::alloc(&mut store, "maxColor", 1);
/// let tasks: Vec<Task> = [3i64, 7, 5]
///     .into_iter()
///     .map(|c| Task::new(move |tx| max_color.bump(tx, c)))
///     .collect();
/// let outcome = Janus::new(Arc::new(SequenceDetector::new())).run(store, tasks);
/// assert_eq!(max_color.value(&outcome.store), 7);
/// assert_eq!(outcome.stats.retries, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxRegister {
    loc: LocId,
}

impl MaxRegister {
    /// Allocates a max register with an initial value.
    pub fn alloc(store: &mut Store, class: &str, initial: i64) -> Self {
        MaxRegister {
            loc: store.alloc(class, Value::int(initial)),
        }
    }

    /// The underlying location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Raises the register to at least `value` (blind, commutative).
    pub fn bump(&self, tx: &mut TxView, value: i64) {
        tx.max_with(self.loc, value);
    }

    /// Reads the current maximum (observing — creates a RAW dependence
    /// on concurrent bumps, as any real read must).
    pub fn get(&self, tx: &mut TxView) -> i64 {
        tx.read_int(self.loc)
    }

    /// The register's value in a store (outside any transaction).
    pub fn value(&self, store: &Store) -> i64 {
        store
            .value(self.loc)
            .and_then(Value::as_int)
            .expect("max register holds an integer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::{Janus, Task};
    use janus_detect::{SequenceDetector, WriteSetDetector};
    use std::sync::Arc;

    #[test]
    fn bump_keeps_the_maximum() {
        let mut store = Store::new();
        let reg = MaxRegister::alloc(&mut store, "m", 10);
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            reg.bump(tx, 5); // below: no effect
            reg.bump(tx, 42);
            reg.bump(tx, 17); // below the new max
            assert_eq!(reg.get(tx), 42);
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        assert_eq!(reg.value(&final_store), 42);
    }

    #[test]
    fn concurrent_bumps_never_conflict_under_sequence_detection() {
        let mut store = Store::new();
        let reg = MaxRegister::alloc(&mut store, "maxColor", 0);
        let tasks: Vec<Task> = (1..=16)
            .map(|i| Task::new(move |tx: &mut TxView| reg.bump(tx, (i * 7) % 13)))
            .collect();
        let janus = Janus::new(Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, tasks);
        assert_eq!(outcome.stats.retries, 0, "blind max updates commute");
        assert_eq!(reg.value(&outcome.store), 12);
    }

    #[test]
    fn write_set_still_flags_bump_overlaps() {
        // The same workload under the write-set baseline: max is
        // footprint-level read+write, so overlaps conflict. (Whether any
        // overlap materializes depends on scheduling; assert only the
        // ordering between the two detectors.)
        let run = |seq: bool| -> u64 {
            let mut store = Store::new();
            let reg = MaxRegister::alloc(&mut store, "m", 0);
            let tasks: Vec<Task> = (1..=12)
                .map(|i| Task::new(move |tx: &mut TxView| reg.bump(tx, i)))
                .collect();
            let detector: Arc<dyn janus_detect::ConflictDetector> = if seq {
                Arc::new(SequenceDetector::new())
            } else {
                Arc::new(WriteSetDetector::new())
            };
            Janus::new(detector)
                .threads(4)
                .run(store, tasks)
                .stats
                .retries
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn bump_then_read_is_covered_only_by_const() {
        // A read after a bump still observes the entry state (the bump
        // does not pin the value), so tasks that read the register do
        // conflict with concurrent higher bumps — exactly as they must.
        let mut store = Store::new();
        let reg = MaxRegister::alloc(&mut store, "m", 0);
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            reg.bump(tx, 3);
            let _ = reg.get(tx);
        })];
        let (_, run) = Janus::run_sequential(store, &tasks);
        let ops: Vec<&janus_log::Op> = run.task_logs[0].iter().collect();
        let summary = janus_train::summarize(&janus_log::CellKey::Whole, &ops);
        assert!(summary.exposed, "read after max is still entry-dependent");
    }
}
