//! The `Map` abstraction specification.

use std::sync::Arc;

use janus_core::{Store, TxView};
use janus_log::{LocId, OpResult};
use janus_relational::{Fd, Formula, Key, RelOp, Relation, Scalar, Schema, Tuple, Value};

/// A shared map encoded as the relation `{(key, value)}` with the
/// functional dependency `key → value`.
///
/// Conflict detection is per key: two transactions touching different
/// keys never meet in a conflict query (the decomposition of Figure 8
/// splits the relation's history by key). This is the structure behind
/// PMD's `RuleContext` attributes and JGraphT's `color` array.
#[derive(Debug, Clone)]
pub struct MapAdt {
    loc: LocId,
    schema: Arc<Schema>,
}

impl MapAdt {
    /// Allocates an empty map.
    pub fn alloc(store: &mut Store, class: &str) -> Self {
        let schema = Schema::with_fd(&["key", "value"], Fd::new(&[0], &[1]));
        let loc = store.alloc(class, Value::Rel(Relation::empty(Arc::clone(&schema))));
        MapAdt { loc, schema }
    }

    /// Allocates a map pre-populated with entries.
    pub fn alloc_with(
        store: &mut Store,
        class: &str,
        entries: impl IntoIterator<Item = (Scalar, Scalar)>,
    ) -> Self {
        let schema = Schema::with_fd(&["key", "value"], Fd::new(&[0], &[1]));
        let rel = Relation::from_tuples(
            Arc::clone(&schema),
            entries.into_iter().map(|(k, v)| Tuple::new(vec![k, v])),
        );
        let loc = store.alloc(class, Value::Rel(rel));
        MapAdt { loc, schema }
    }

    /// The underlying location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Binds `key` to `value` (displacing any previous binding).
    pub fn put(&self, tx: &mut TxView, key: impl Into<Scalar>, value: impl Into<Scalar>) {
        tx.rel(
            self.loc,
            RelOp::insert(Tuple::new(vec![key.into(), value.into()])),
        );
    }

    /// The value bound to `key`, if any.
    pub fn get(&self, tx: &mut TxView, key: impl Into<Scalar>) -> Option<Scalar> {
        match tx.rel(self.loc, RelOp::select(Formula::Eq(0, key.into()))) {
            OpResult::Tuples(ts) => ts.first().map(|t| t.get(1).clone()),
            _ => None,
        }
    }

    /// Whether `key` is bound.
    pub fn contains(&self, tx: &mut TxView, key: impl Into<Scalar>) -> bool {
        self.get(tx, key).is_some()
    }

    /// Removes any binding of `key`.
    pub fn remove(&self, tx: &mut TxView, key: impl Into<Scalar>) {
        tx.rel(self.loc, RelOp::RemoveKey(Key::new(vec![key.into()])));
    }

    /// The map contents in a store (outside any transaction).
    pub fn entries(&self, store: &Store) -> Vec<(Scalar, Scalar)> {
        store
            .value(self.loc)
            .and_then(Value::as_rel)
            .expect("map location holds a relation")
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).clone()))
            .collect()
    }

    /// The schema (exposed for tests and specs).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::{Janus, Task};
    use janus_detect::SequenceDetector;

    #[test]
    fn put_get_remove() {
        let mut store = Store::new();
        let m = MapAdt::alloc(&mut store, "attrs");
        let h = m.clone();
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            assert_eq!(h.get(tx, 1i64), None);
            h.put(tx, 1i64, 10i64);
            assert_eq!(h.get(tx, 1i64), Some(Scalar::Int(10)));
            h.put(tx, 1i64, 20i64);
            assert_eq!(h.get(tx, 1i64), Some(Scalar::Int(20)));
            h.remove(tx, 1i64);
            assert!(!h.contains(tx, 1i64));
            h.put(tx, 2i64, 5i64);
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        assert_eq!(
            m.entries(&final_store),
            vec![(Scalar::Int(2), Scalar::Int(5))]
        );
    }

    #[test]
    fn disjoint_keys_run_conflict_free_in_parallel() {
        let mut store = Store::new();
        let m = MapAdt::alloc(&mut store, "color");
        let tasks: Vec<Task> = (0..16)
            .map(|i| {
                let h = m.clone();
                Task::new(move |tx: &mut TxView| {
                    h.put(tx, i as i64, (i * 10) as i64);
                })
            })
            .collect();
        let janus = Janus::new(std::sync::Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, tasks);
        assert_eq!(
            outcome
                .store
                .value(m.loc())
                .unwrap()
                .as_rel()
                .unwrap()
                .len(),
            16
        );
        assert_eq!(outcome.stats.retries, 0, "disjoint keys must not conflict");
    }

    #[test]
    fn prepopulated_map() {
        let mut store = Store::new();
        let m = MapAdt::alloc_with(&mut store, "m", [(Scalar::Int(1), Scalar::Int(10))]);
        assert_eq!(m.entries(&store).len(), 1);
    }
}
