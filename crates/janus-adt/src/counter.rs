//! Scalar abstractions: counters and cells.

use janus_core::{Store, TxView};
use janus_log::LocId;
use janus_relational::{Scalar, Value};

/// A shared integer counter supporting blind increments — the `work`
/// variable of Figure 1. `add`/`sub` are semantically commutative
/// (reduction pattern); balanced add/sub pairs form the identity pattern.
///
/// # Example
///
/// ```
/// use janus_adt::Counter;
/// use janus_core::{Janus, Store, Task};
/// use janus_detect::SequenceDetector;
/// use std::sync::Arc;
///
/// let mut store = Store::new();
/// let work = Counter::alloc(&mut store, "work", 0);
/// let tasks = vec![Task::new(move |tx| {
///     work.add(tx, 5);
///     work.sub(tx, 5);
/// })];
/// let outcome = Janus::new(Arc::new(SequenceDetector::new())).run(store, tasks);
/// assert_eq!(work.value(&outcome.store), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    loc: LocId,
}

impl Counter {
    /// Allocates a counter with an initial value.
    pub fn alloc(store: &mut Store, class: &str, initial: i64) -> Self {
        Counter {
            loc: store.alloc(class, Value::int(initial)),
        }
    }

    /// The underlying location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Adds a delta without observing the result (blind update).
    pub fn add(&self, tx: &mut TxView, delta: i64) {
        tx.add(self.loc, delta);
    }

    /// Subtracts a delta without observing the result.
    pub fn sub(&self, tx: &mut TxView, delta: i64) {
        tx.add(self.loc, -delta);
    }

    /// Reads the current value (an observing operation).
    pub fn get(&self, tx: &mut TxView) -> i64 {
        tx.read_int(self.loc)
    }

    /// The counter's value in a store (outside any transaction).
    pub fn value(&self, store: &Store) -> i64 {
        store
            .value(self.loc)
            .and_then(Value::as_int)
            .expect("counter location holds an integer")
    }
}

/// A shared scalar cell with blind writes and reads — the building block
/// of the shared-as-local (write then read) and spurious-reads patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    loc: LocId,
}

impl Cell {
    /// Allocates a cell with an initial value.
    pub fn alloc(store: &mut Store, class: &str, initial: impl Into<Scalar>) -> Self {
        Cell {
            loc: store.alloc(class, Value::Scalar(initial.into())),
        }
    }

    /// The underlying location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Blind-writes the cell.
    pub fn set(&self, tx: &mut TxView, value: impl Into<Scalar>) {
        tx.write(self.loc, value);
    }

    /// Reads the cell.
    pub fn get(&self, tx: &mut TxView) -> Scalar {
        tx.read(self.loc)
    }

    /// The cell's value in a store (outside any transaction).
    pub fn value(&self, store: &Store) -> Scalar {
        store
            .value(self.loc)
            .and_then(|v| v.as_scalar().cloned())
            .expect("cell location holds a scalar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::Janus;

    #[test]
    fn counter_blind_updates() {
        let mut store = Store::new();
        let c = Counter::alloc(&mut store, "c", 10);
        let tasks = vec![janus_core::Task::new(move |tx: &mut TxView| {
            c.add(tx, 5);
            c.sub(tx, 3);
        })];
        let (final_store, run) = Janus::run_sequential(store, &tasks);
        assert_eq!(c.value(&final_store), 12);
        // Blind adds do not observe: log contains two ops, neither a read.
        assert_eq!(run.task_logs[0].len(), 2);
        assert!(run.task_logs[0]
            .iter()
            .all(|op| !janus_detect::observes(op)));
    }

    #[test]
    fn counter_get_observes() {
        let mut store = Store::new();
        let c = Counter::alloc(&mut store, "c", 7);
        let tasks = vec![janus_core::Task::new(move |tx: &mut TxView| {
            assert_eq!(c.get(tx), 7);
        })];
        let (_, run) = Janus::run_sequential(store, &tasks);
        assert!(janus_detect::observes(&run.task_logs[0][0]));
    }

    #[test]
    fn cell_roundtrip() {
        let mut store = Store::new();
        let c = Cell::alloc(&mut store, "name", "initial");
        let tasks = vec![janus_core::Task::new(move |tx: &mut TxView| {
            c.set(tx, "updated");
            assert_eq!(c.get(tx), Scalar::str("updated"));
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        assert_eq!(c.value(&final_store), Scalar::str("updated"));
    }
}
