//! The `BitSet` abstraction specification (§3 stage 1, Figure 3).

use std::sync::Arc;

use janus_core::{Store, TxView};
use janus_log::{LocId, OpResult};
use janus_relational::Relation;
use janus_relational::{Fd, Formula, RelOp, Scalar, Schema, Tuple, Value};

/// A shared bit set encoded as the 2-ary relation `{(index, bit)}` with
/// the functional dependency `index → bit`.
///
/// `get` is a select query pinned on the index; `set` is an insert (which
/// displaces the previous tuple for the index); `clear` replaces the
/// whole relation with the empty one — a blind whole-object write, so a
/// cleared-then-used bit set is shared-as-local (JGraphT's `usedColors`).
#[derive(Debug, Clone)]
pub struct BitSetAdt {
    loc: LocId,
    schema: Arc<Schema>,
}

impl BitSetAdt {
    /// Allocates an empty bit set.
    pub fn alloc(store: &mut Store, class: &str) -> Self {
        let schema = Schema::with_fd(&["index", "bit"], Fd::new(&[0], &[1]));
        let loc = store.alloc(class, Value::Rel(Relation::empty(Arc::clone(&schema))));
        BitSetAdt { loc, schema }
    }

    /// The underlying location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Sets the bit at `index` to `value`.
    pub fn set(&self, tx: &mut TxView, index: i64, value: bool) {
        tx.rel(
            self.loc,
            RelOp::insert(Tuple::new(vec![Scalar::Int(index), Scalar::Bool(value)])),
        );
    }

    /// Whether the bit at `index` is set (absent indices read as false).
    pub fn get(&self, tx: &mut TxView, index: i64) -> bool {
        match tx.rel(self.loc, RelOp::select(Formula::eq(0, index))) {
            OpResult::Tuples(ts) => ts.first().and_then(|t| t.get(1).as_bool()).unwrap_or(false),
            _ => false,
        }
    }

    /// Clears every bit.
    pub fn clear(&self, tx: &mut TxView) {
        tx.rel(self.loc, RelOp::Clear);
    }

    /// The number of explicitly stored bits (for assertions).
    pub fn stored_bits(&self, store: &Store) -> usize {
        store
            .value(self.loc)
            .and_then(Value::as_rel)
            .map(Relation::len)
            .expect("bitset location holds a relation")
    }

    /// The schema (exposed for tests and specs).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::{Janus, Task};

    #[test]
    fn set_get_clear() {
        let mut store = Store::new();
        let bits = BitSetAdt::alloc(&mut store, "usedColors");
        let b = bits.clone();
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            assert!(!b.get(tx, 3));
            b.set(tx, 3, true);
            assert!(b.get(tx, 3));
            b.set(tx, 3, false);
            assert!(!b.get(tx, 3));
            b.set(tx, 5, true);
            b.clear(tx);
            assert!(!b.get(tx, 5));
            b.set(tx, 7, true);
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        assert_eq!(bits.stored_bits(&final_store), 1);
    }

    #[test]
    fn clear_then_use_is_unexposed() {
        // The shared-as-local discipline: clear first, then set/get.
        let mut store = Store::new();
        let bits = BitSetAdt::alloc(&mut store, "usedColors");
        let b = bits.clone();
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            b.clear(tx);
            b.set(tx, 1, true);
            let _ = b.get(tx, 1);
            let _ = b.get(tx, 2);
        })];
        let (_, run) = Janus::run_sequential(store, &tasks);
        // Under a whole-object view, every observation is covered by the
        // leading clear.
        let ops: Vec<&janus_log::Op> = run.task_logs[0].iter().collect();
        let summary = janus_train::summarize(&janus_log::CellKey::Whole, &ops);
        assert!(!summary.exposed);
        assert!(summary.determined.is_const());
    }
}
