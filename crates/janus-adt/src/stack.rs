//! The stack-discipline list of JFileSync's progress monitor (Figure 2).

use std::sync::Arc;

use janus_core::{Store, TxView};
use janus_log::{LocId, OpResult};
use janus_relational::{Fd, Formula, Key, RelOp, Relation, Scalar, Schema, Tuple, Value};

/// A shared list used as a stack: `monitor.itemsStarted.add(x)` pushes,
/// `remove(size()-1)` pops.
///
/// Encoded as the relation `{(index, value)}` with `index → value`, plus
/// a scalar `size` cell. A balanced push/pop pair is the *identity*
/// pattern on both locations: the size cell sees `read; write(s+1); ...;
/// read; write(s)` (equal writes against any concurrent balanced task),
/// and each index cell sees `insert; remove-key` (constant-absent).
#[derive(Debug, Clone)]
pub struct StackList {
    items: LocId,
    size: LocId,
    schema: Arc<Schema>,
}

impl StackList {
    /// Allocates an empty stack list. Two locations are created:
    /// `<class>.items` and `<class>.size`.
    pub fn alloc(store: &mut Store, class: &str) -> Self {
        let schema = Schema::with_fd(&["index", "value"], Fd::new(&[0], &[1]));
        let items = store.alloc(
            format!("{class}.items").as_str(),
            Value::Rel(Relation::empty(Arc::clone(&schema))),
        );
        let size = store.alloc(format!("{class}.size").as_str(), Value::int(0));
        StackList {
            items,
            size,
            schema,
        }
    }

    /// The items location.
    pub fn items_loc(&self) -> LocId {
        self.items
    }

    /// The size location.
    pub fn size_loc(&self) -> LocId {
        self.size
    }

    /// The current number of elements (observing).
    pub fn size(&self, tx: &mut TxView) -> i64 {
        tx.read_int(self.size)
    }

    /// Pushes a value (`add`).
    pub fn push(&self, tx: &mut TxView, value: impl Into<Scalar>) {
        let s = tx.read_int(self.size);
        tx.rel(
            self.items,
            RelOp::insert(Tuple::new(vec![Scalar::Int(s), value.into()])),
        );
        tx.write(self.size, s + 1);
    }

    /// Pops the last value (`remove(size()-1)`), returning it.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop(&self, tx: &mut TxView) -> Scalar {
        let s = tx.read_int(self.size);
        assert!(s > 0, "pop from empty stack list");
        let top = s - 1;
        let value = match tx.rel(self.items, RelOp::select(Formula::eq(0, top))) {
            OpResult::Tuples(ts) => ts
                .first()
                .map(|t| t.get(1).clone())
                .expect("top of stack exists"),
            _ => unreachable!("select returns tuples"),
        };
        tx.rel(self.items, RelOp::RemoveKey(Key::scalar(top)));
        tx.write(self.size, top);
        value
    }

    /// The stack depth in a store (outside any transaction).
    pub fn depth(&self, store: &Store) -> i64 {
        store
            .value(self.size)
            .and_then(Value::as_int)
            .expect("size location holds an integer")
    }

    /// The schema (exposed for tests and specs).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::{Janus, Task};
    use janus_detect::SequenceDetector;

    #[test]
    fn push_pop_roundtrip() {
        let mut store = Store::new();
        let st = StackList::alloc(&mut store, "monitor.itemsWeight");
        let h = st.clone();
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            h.push(tx, 10i64);
            h.push(tx, 20i64);
            assert_eq!(h.size(tx), 2);
            assert_eq!(h.pop(tx), Scalar::Int(20));
            assert_eq!(h.pop(tx), Scalar::Int(10));
            assert_eq!(h.size(tx), 0);
        })];
        let (final_store, _) = Janus::run_sequential(store, &tasks);
        assert_eq!(st.depth(&final_store), 0);
    }

    #[test]
    fn balanced_tasks_commute_under_sequence_detection() {
        // The JFileSync identity pattern: every task pushes then pops, so
        // concurrent balanced tasks never really conflict.
        let mut store = Store::new();
        let st = StackList::alloc(&mut store, "monitor.itemsStarted");
        let tasks: Vec<Task> = (0..8)
            .map(|i| {
                let h = st.clone();
                Task::new(move |tx: &mut TxView| {
                    h.push(tx, (i * 10) as i64);
                    h.pop(tx);
                })
            })
            .collect();
        let janus = Janus::new(std::sync::Arc::new(SequenceDetector::new())).threads(4);
        let outcome = janus.run(store, tasks);
        assert_eq!(st.depth(&outcome.store), 0);
    }

    #[test]
    #[should_panic(expected = "empty stack")]
    fn pop_empty_panics() {
        let mut store = Store::new();
        let st = StackList::alloc(&mut store, "s");
        let tasks = vec![Task::new(move |tx: &mut TxView| {
            st.pop(tx);
        })];
        let _ = Janus::run_sequential(store, &tasks);
    }
}
