//! Property tests for the conflict detectors.

use janus_detect::{
    conflict_cell, ConflictDetector, MapState, Relaxation, SequenceDetector, WriteSetDetector,
};
use janus_log::{CellKey, ClassId, LocId, Op, OpKind, ScalarOp};
use janus_relational::{Scalar, Value};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum K {
    Read,
    Add(i64),
    Write(i64),
    Max(i64),
}

fn kind(k: K) -> OpKind {
    match k {
        K::Read => OpKind::Scalar(ScalarOp::Read),
        K::Add(d) => OpKind::Scalar(ScalarOp::Add(d)),
        K::Write(v) => OpKind::Scalar(ScalarOp::Write(Scalar::Int(v))),
        K::Max(v) => OpKind::Scalar(ScalarOp::Max(v)),
    }
}

fn k_strategy() -> impl Strategy<Value = K> {
    prop_oneof![
        Just(K::Read),
        (-2i64..3).prop_map(K::Add),
        (0i64..3).prop_map(K::Write),
        (0i64..3).prop_map(K::Max),
    ]
}

fn mk_ops(ks: &[K], entry: i64) -> Vec<Op> {
    let mut v = Value::int(entry);
    ks.iter()
        .map(|&k| Op::execute(LocId(0), ClassId::new("x"), kind(k), &mut v).0)
        .collect()
}

/// Ground truth for blind (read-free) histories: replay both orders.
fn replays_equal(a: &[Op], b: &[Op], entry: i64) -> bool {
    let run = |first: &[Op], second: &[Op]| {
        let mut v = Value::int(entry);
        for op in first.iter().chain(second) {
            op.kind.apply(&mut v);
        }
        v
    };
    run(a, b) == run(b, a)
}

proptest! {
    /// Refinement: every conflict the sequence detector reports, the
    /// write-set detector reports too.
    #[test]
    fn sequence_refines_write_set(
        ka in proptest::collection::vec(k_strategy(), 0..6),
        kb in proptest::collection::vec(k_strategy(), 0..6),
        entry in -2i64..3,
    ) {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        let a = mk_ops(&ka, entry);
        let b = mk_ops(&kb, entry);
        let seq = SequenceDetector::new().detect_ops(&state, &a, &b);
        let ws = WriteSetDetector::new().detect_ops(&state, &a, &b);
        prop_assert!(!seq || ws, "{ka:?} vs {kb:?} at {entry}");
    }

    /// Validity: an empty conflict history never conflicts, under either
    /// detector.
    #[test]
    fn empty_history_is_valid(
        ka in proptest::collection::vec(k_strategy(), 0..8),
        entry in -2i64..3,
    ) {
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        let a = mk_ops(&ka, entry);
        prop_assert!(!SequenceDetector::new().detect_ops(&state, &a, &[]));
        prop_assert!(!WriteSetDetector::new().detect_ops(&state, &a, &[]));
    }

    /// Soundness on blind histories: if the sequence detector clears a
    /// pair of read-free histories, the two orders really produce the
    /// same final value.
    #[test]
    fn no_conflict_implies_commutes_for_blind_histories(
        ka in proptest::collection::vec(k_strategy(), 0..6),
        kb in proptest::collection::vec(k_strategy(), 0..6),
        entry in -2i64..3,
    ) {
        prop_assume!(ka.iter().chain(&kb).all(|k| !matches!(k, K::Read)));
        let mut state = MapState::default();
        state.0.insert(LocId(0), Value::int(entry));
        let a = mk_ops(&ka, entry);
        let b = mk_ops(&kb, entry);
        if !SequenceDetector::new().detect_ops(&state, &a, &b) {
            prop_assert!(replays_equal(&a, &b, entry), "{ka:?} vs {kb:?} at {entry}");
        }
    }

    /// Symmetry: `CONFLICT` is symmetric in its two histories.
    #[test]
    fn conflict_cell_is_symmetric(
        ka in proptest::collection::vec(k_strategy(), 0..6),
        kb in proptest::collection::vec(k_strategy(), 0..6),
        entry in -2i64..3,
    ) {
        let entry_value = Value::int(entry);
        let a = mk_ops(&ka, entry);
        let b = mk_ops(&kb, entry);
        let ra: Vec<&Op> = a.iter().collect();
        let rb: Vec<&Op> = b.iter().collect();
        prop_assert_eq!(
            conflict_cell(&entry_value, &CellKey::Whole, &ra, &rb, Relaxation::default()),
            conflict_cell(&entry_value, &CellKey::Whole, &rb, &ra, Relaxation::default())
        );
    }

    /// Relaxation monotonicity: weakening the checks can only remove
    /// conflicts.
    #[test]
    fn relaxations_are_monotone(
        ka in proptest::collection::vec(k_strategy(), 0..6),
        kb in proptest::collection::vec(k_strategy(), 0..6),
        entry in -2i64..3,
    ) {
        let entry_value = Value::int(entry);
        let a = mk_ops(&ka, entry);
        let b = mk_ops(&kb, entry);
        let ra: Vec<&Op> = a.iter().collect();
        let rb: Vec<&Op> = b.iter().collect();
        let strict = conflict_cell(&entry_value, &CellKey::Whole, &ra, &rb, Relaxation::default());
        for relax in [Relaxation::raw(), Relaxation::waw()] {
            let relaxed = conflict_cell(&entry_value, &CellKey::Whole, &ra, &rb, relax);
            prop_assert!(!relaxed || strict, "relaxation added a conflict");
        }
    }
}
