//! Conflict detection for JANUS (§5 of the paper).
//!
//! The ideal conflict test is an explicit commutativity check: transaction
//! `t` with operation sequence `b`, whose conflict history (the operations
//! committed while it ran) is `a`, conflicts iff `⟦a·b⟧(s0) ≠ ⟦b·a⟧(s0)`
//! where `s0` is `t`'s entry state. This crate implements three
//! approximations of that check, all driven by the same per-location
//! decomposition of [`janus_log::decompose`]:
//!
//! * [`WriteSetDetector`] — the standard STM baseline: a conflict is any
//!   common location that one side writes. Implemented as a strict subset
//!   of the sequence machinery so comparisons between the two are
//!   implementation-fair (§7.1).
//! * [`SequenceDetector`] — the *online* sequence-based check of Figure 8:
//!   for every common location, `SAMEREAD` over every read prefix of both
//!   subsequences plus a final `COMMUTE` over the composite effect. Exact
//!   but expensive — the paper deems it "unlikely to be acceptable in
//!   performance", which is why it exists here chiefly as the reference
//!   oracle and ablation baseline.
//! * [`CachedSequenceDetector`] — the production configuration: answers
//!   per-location queries from a commutativity cache built by offline
//!   training (a [`SequenceOracle`], implemented by `janus-train`),
//!   falling back to the write-set test on a miss.
//!
//! [`Relaxation`]/[`RelaxationSpec`] carry the user-provided consistency
//! relaxations of §5.3 (tolerating RAW and/or WAW conflicts per data
//! structure) and the automatic WAW-tolerance inference for out-of-order
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod projection;
mod relax;

pub use detector::{
    CachedSequenceDetector, ConflictDetector, DetectorStats, EntryState, MapState,
    SequenceDetector, SequenceOracle, ValidationSession, WriteSetDetector,
};
pub use projection::{
    cell_value, commute, conflict_cell, conflict_cell_attributed, last_write, net_delta, observes,
    read_prefixes, replay_cell, same_read, CellValue,
};
pub use relax::{infer_waw_tolerance, Relaxation, RelaxationSpec};
