//! The conflict-detector implementations: write-set baseline, online
//! sequence-based detection, and cached sequence-based detection with
//! write-set fallback.
//!
//! All three detectors share one incremental engine: a
//! [`ValidationSession`] opened once per validation attempt consumes
//! committed history as zero-copy [`HistoryWindow`]s of pre-decomposed
//! [`CommittedLog`] segments. The first `extend` validates the initial
//! window; if the commit clock advances before the transaction wins the
//! write lock, later `extend`s feed only the *delta* segments, and the
//! session rechecks exactly the locations those deltas touch — verdicts
//! for untouched locations cannot change, because a cell's verdict
//! depends only on the transaction's and the committed history's
//! subsequences for that cell.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use janus_log::{CellKey, ClassId, CommittedLog, HistoryWindow, LocId, Op};
use janus_obs::{CheckReason, EventKind, RingHandle, Verdict};
use janus_relational::{Key, Value};

use crate::projection::conflict_cell_attributed;
use crate::{Relaxation, RelaxationSpec};

/// Read access to a transaction's entry state (`t.SharedSnapshot` in
/// Figure 7): the value each shared location had when the transaction
/// began. Conflict queries are evaluated in this state (`G` in Figure 8).
pub trait EntryState {
    /// The value of `loc` in the entry state, if the location exists.
    fn value_of(&self, loc: LocId) -> Option<Value>;
}

/// A simple map-backed [`EntryState`], convenient for tests and offline
/// (training-time) evaluation.
#[derive(Debug, Clone, Default)]
pub struct MapState(pub BTreeMap<LocId, Value>);

impl EntryState for MapState {
    fn value_of(&self, loc: LocId) -> Option<Value> {
        self.0.get(&loc).cloned()
    }
}

/// Number of class-attribution shards. Threads are assigned stripes
/// round-robin, so on typical worker counts each thread owns its stripe
/// outright and the hot-path lock is never contended.
const CLASS_SHARDS: usize = 16;

/// The stripe this thread records class conflicts into. Assigned once
/// per thread, round-robin — per-thread sharding without a global
/// registry of threads.
fn class_shard() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % CLASS_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Counters describing a detector's activity. All counters are monotone
/// and thread-safe; they are shared by reference with the runtime's
/// statistics reporting.
#[derive(Debug)]
pub struct DetectorStats {
    /// `DETECTCONFLICTS` invocations (validation sessions opened).
    pub queries: AtomicU64,
    /// Queries that reported a conflict.
    pub conflicts: AtomicU64,
    /// Per-cell queries answered by the commutativity cache.
    pub cache_hits: AtomicU64,
    /// Per-cell queries that missed the cache and fell back to the
    /// write-set test.
    pub cache_misses: AtomicU64,
    /// Operations handed to per-cell conflict checks (both sides). The
    /// cost driver of detection: incremental re-validation exists to keep
    /// this from growing quadratically with the history window.
    pub ops_scanned: AtomicU64,
    /// Per-cell verdicts rendered (every judge invocation, pass or
    /// conflict) — the denominator of abort attribution, and the count
    /// recorded `per_cell_check` trace events must match.
    pub cells_checked: AtomicU64,
    /// History segments admitted past the fingerprint prefilter and
    /// handed to per-location checking.
    pub segments_scanned: AtomicU64,
    /// History segments dismissed in O(1) because their footprint
    /// fingerprint is disjoint from the transaction's.
    pub segments_skipped: AtomicU64,
    /// Conflicting cells attributed to the class of their location —
    /// the data behind "which data structure serializes this benchmark"
    /// discussions (§7.2). Striped per thread: the hot path locks only
    /// this thread's (practically uncontended) shard; snapshots merge
    /// all shards.
    by_class: [std::sync::Mutex<BTreeMap<ClassId, u64>>; CLASS_SHARDS],
}

impl Default for DetectorStats {
    fn default() -> Self {
        DetectorStats {
            queries: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            ops_scanned: AtomicU64::new(0),
            cells_checked: AtomicU64::new(0),
            segments_scanned: AtomicU64::new(0),
            segments_skipped: AtomicU64::new(0),
            by_class: std::array::from_fn(|_| std::sync::Mutex::new(BTreeMap::new())),
        }
    }
}

impl DetectorStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        DetectorStats::default()
    }

    /// Snapshot of (queries, conflicts, hits, misses).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.conflicts.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Operations scanned by per-cell conflict checks so far.
    pub fn ops_scanned(&self) -> u64 {
        self.ops_scanned.load(Ordering::Relaxed)
    }

    /// Per-cell verdicts rendered so far.
    pub fn cells_checked(&self) -> u64 {
        self.cells_checked.load(Ordering::Relaxed)
    }

    /// Segments admitted past the fingerprint prefilter so far.
    pub fn segments_scanned(&self) -> u64 {
        self.segments_scanned.load(Ordering::Relaxed)
    }

    /// Segments dismissed by the fingerprint prefilter so far.
    pub fn segments_skipped(&self) -> u64 {
        self.segments_skipped.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.conflicts.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.ops_scanned.store(0, Ordering::Relaxed);
        self.cells_checked.store(0, Ordering::Relaxed);
        self.segments_scanned.store(0, Ordering::Relaxed);
        self.segments_skipped.store(0, Ordering::Relaxed);
        for shard in &self.by_class {
            shard.lock().expect("stats mutex").clear();
        }
    }

    /// Attributes one conflicting cell to a location class. Locks only
    /// the calling thread's shard.
    pub fn record_class_conflict(&self, class: &ClassId) {
        *self.by_class[class_shard()]
            .lock()
            .expect("stats mutex")
            .entry(class.clone())
            .or_insert(0) += 1;
    }

    /// Conflicting cells per class, most conflicted first (all shards
    /// merged).
    pub fn conflicts_by_class(&self) -> Vec<(ClassId, u64)> {
        let mut merged: BTreeMap<ClassId, u64> = BTreeMap::new();
        for shard in &self.by_class {
            for (c, n) in shard.lock().expect("stats mutex").iter() {
                *merged.entry(c.clone()).or_insert(0) += n;
            }
        }
        let mut v: Vec<(ClassId, u64)> = merged.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

impl janus_obs::Snapshot for DetectorStats {
    fn source(&self) -> &'static str {
        "detector"
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let (queries, conflicts, cache_hits, cache_misses) = self.snapshot();
        let mut v = vec![
            ("queries".to_string(), queries),
            ("conflicts".to_string(), conflicts),
            ("cache_hits".to_string(), cache_hits),
            ("cache_misses".to_string(), cache_misses),
            ("ops_scanned".to_string(), self.ops_scanned()),
            ("cells_checked".to_string(), self.cells_checked()),
            ("segments_scanned".to_string(), self.segments_scanned()),
            ("segments_skipped".to_string(), self.segments_skipped()),
        ];
        for (class, n) in self.conflicts_by_class() {
            v.push((format!("by_class.{}", class.label()), n));
        }
        v
    }
}

/// An in-progress, incrementally extensible conflict validation for one
/// transaction attempt.
///
/// Committed history reaches the session monotonically: the first
/// [`extend`](ValidationSession::extend) carries the window
/// `[begin, now)`, later ones carry only the delta `[validated_to, now)`
/// observed when the commit clock advanced mid-validation. A conflict
/// verdict is sticky — once `true`, every later call returns `true`
/// without scanning.
pub trait ValidationSession {
    /// Feeds the next run of committed segments into the session and
    /// returns whether any conflict has been detected so far.
    fn extend(&mut self, delta: &HistoryWindow<'_>) -> bool;

    /// Whether a conflict has been detected so far.
    fn conflicted(&self) -> bool;
}

/// A conflict-detection algorithm, pluggable into the Figure 7 protocol.
///
/// A detector is *sound* if it never misses a real non-commutativity and
/// *valid* if it reports no conflict for an empty conflict history
/// (Theorem 4.1's requirements).
pub trait ConflictDetector: Send + Sync {
    /// Opens an incremental validation session for one transaction
    /// attempt, recording one `per_cell_check` trace event per judged
    /// cell into `obs` when it is present. `txn` is the transaction's own
    /// log, pre-decomposed; the committed history is fed in through
    /// [`ValidationSession::extend`].
    fn begin_validation_traced<'a>(
        &'a self,
        entry: &'a dyn EntryState,
        txn: &'a CommittedLog,
        obs: Option<&'a RingHandle>,
    ) -> Box<dyn ValidationSession + 'a>;

    /// [`begin_validation_traced`](ConflictDetector::begin_validation_traced)
    /// without tracing.
    fn begin_validation<'a>(
        &'a self,
        entry: &'a dyn EntryState,
        txn: &'a CommittedLog,
    ) -> Box<dyn ValidationSession + 'a> {
        self.begin_validation_traced(entry, txn, None)
    }

    /// `DETECTCONFLICTS(t.SharedSnapshot, t.Log, window)`: whether the
    /// transaction's operations conflict with the committed window. The
    /// window is zero-copy — no operation is cloned and no committed log
    /// is re-decomposed.
    fn detect(
        &self,
        entry: &dyn EntryState,
        txn: &CommittedLog,
        window: HistoryWindow<'_>,
    ) -> bool {
        self.begin_validation(entry, txn).extend(&window)
    }

    /// Convenience over raw operation slices (tests, training-time
    /// evaluation): wraps both sides in throwaway [`CommittedLog`]s.
    fn detect_ops(&self, entry: &dyn EntryState, txn: &[Op], committed: &[Op]) -> bool {
        let txn = CommittedLog::new(txn.to_vec());
        let committed = [Arc::new(CommittedLog::new(committed.to_vec()))];
        self.detect(entry, &txn, HistoryWindow::new(&committed))
    }

    /// A short human-readable name ("write-set", "sequence", ...).
    fn name(&self) -> &'static str;

    /// The detector's activity counters.
    fn stats(&self) -> &DetectorStats;
}

/// The per-cell verdict function of one detector — the only part that
/// differs between the write-set, online-sequence and cached-sequence
/// algorithms. Everything around it (decomposition reuse, common-cell
/// iteration, incremental re-validation) is shared.
trait CellJudge: Sync {
    /// The detector's counters.
    fn judge_stats(&self) -> &DetectorStats;

    /// Whether sessions may dismiss history segments whose footprint
    /// fingerprint is disjoint from the transaction's (on by default;
    /// the equivalence tests and benchmarks turn it off to compare
    /// against exhaustive scanning).
    fn prefilter_enabled(&self) -> bool;

    /// Whether the cell's subsequences conflict, plus the rule that
    /// decided the verdict (for abort attribution). Class attribution,
    /// counter updates and trace events are handled centrally by the
    /// session.
    fn judge(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
    ) -> (bool, CheckReason);
}

/// The shared incremental engine: accumulates committed segments and
/// rechecks only the locations each delta touches.
struct Session<'a, D: ?Sized> {
    judge: &'a D,
    entry: &'a dyn EntryState,
    txn: &'a CommittedLog,
    /// Accumulated committed segments, in commit order. `Arc` clones, so
    /// the session stays valid even if the runtime's history is pruned
    /// concurrently.
    segments: Vec<Arc<CommittedLog>>,
    conflicted: bool,
    /// Whether to intersect footprint fingerprints before admitting a
    /// delta segment (cached from the judge at open time).
    prefilter: bool,
    /// The owning worker's event ring, when lifecycle tracing is on.
    obs: Option<&'a RingHandle>,
}

/// Opens a session over a per-cell judge, counting the query.
fn open_session<'a, D: CellJudge>(
    judge: &'a D,
    entry: &'a dyn EntryState,
    txn: &'a CommittedLog,
    obs: Option<&'a RingHandle>,
) -> Box<dyn ValidationSession + 'a> {
    judge.judge_stats().queries.fetch_add(1, Ordering::Relaxed);
    Box::new(Session {
        judge,
        entry,
        txn,
        segments: Vec::new(),
        conflicted: false,
        prefilter: judge.prefilter_enabled(),
        obs,
    })
}

impl<D: CellJudge + ?Sized> Session<'_, D> {
    /// Runs one per-cell judgement and handles everything around it:
    /// counter updates, class attribution for conflicting cells, and the
    /// `per_cell_check` trace event. The event's `class` clone is an
    /// `Arc` bump — the traced path allocates nothing per check.
    fn judge_cell(
        &self,
        loc: LocId,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        t_ops: &[&Op],
        c_ops: &[&Op],
    ) -> bool {
        let stats = self.judge.judge_stats();
        let ops_scanned = (t_ops.len() + c_ops.len()) as u64;
        stats.ops_scanned.fetch_add(ops_scanned, Ordering::Relaxed);
        stats.cells_checked.fetch_add(1, Ordering::Relaxed);
        let (hit, reason) = self.judge.judge(class, entry, cell, t_ops, c_ops);
        if hit {
            stats.record_class_conflict(class);
        }
        if let Some(obs) = self.obs {
            obs.record(EventKind::PerCellCheck {
                loc,
                class: class.clone(),
                verdict: if hit {
                    Verdict::Conflict
                } else {
                    Verdict::Pass
                },
                reason,
                ops_scanned,
            });
        }
        hit
    }

    /// Re-evaluates every common cell of one location against the *full*
    /// accumulated committed subsequence for that location. Sound because
    /// a cell's verdict is a function of the two subsequences alone; the
    /// caller only invokes this for locations a new delta touched.
    fn check_loc(&self, loc: LocId) -> bool {
        let ht = self.txn.loc(loc).expect("dirty location is txn-touched");
        // Fold the accumulated committed subsequence for this location
        // out of the per-segment indices (no decomposition happens here —
        // every segment was decomposed once, at commit time).
        let mut c_has_whole = false;
        let mut c_ops: Vec<&Op> = Vec::new();
        let mut c_per_key: BTreeMap<&Key, Vec<&Op>> = BTreeMap::new();
        for seg in &self.segments {
            let Some(dc) = seg.loc(loc) else { continue };
            c_has_whole |= dc.has_whole;
            seg.resolve(&dc.ops, &mut c_ops);
            for (k, idxs) in &dc.per_key {
                seg.resolve(idxs, c_per_key.entry(k).or_default());
            }
        }
        if c_ops.is_empty() {
            return false;
        }
        let entry_value = self.entry.value_of(loc);
        if ht.has_whole || c_has_whole {
            let mut t_ops: Vec<&Op> = Vec::with_capacity(ht.ops.len());
            self.txn.resolve(&ht.ops, &mut t_ops);
            self.judge_cell(
                loc,
                &ht.class,
                entry_value.as_ref(),
                &CellKey::Whole,
                &t_ops,
                &c_ops,
            )
        } else {
            for (key, t_idxs) in &ht.per_key {
                let Some(c_key_ops) = c_per_key.get(key) else {
                    continue;
                };
                let mut t_ops: Vec<&Op> = Vec::with_capacity(t_idxs.len());
                self.txn.resolve(t_idxs, &mut t_ops);
                let cell = CellKey::Key(key.clone());
                // The subsequences of a per-key cell only touch that key,
                // so sequence evaluation may run against a relation pruned
                // to the key — avoiding whole-object clones per replay.
                let pruned = entry_value.as_ref().map(|v| prune_to_key(v, key));
                if self.judge_cell(loc, &ht.class, pruned.as_ref(), &cell, &t_ops, c_key_ops) {
                    return true;
                }
            }
            false
        }
    }
}

impl<D: CellJudge + ?Sized> ValidationSession for Session<'_, D> {
    fn extend(&mut self, delta: &HistoryWindow<'_>) -> bool {
        if self.conflicted {
            return true;
        }
        let stats = self.judge.judge_stats();
        let txn_fp = *self.txn.fingerprint();
        // The dirty set: locations the delta touches *and* the
        // transaction touches. Only their verdicts can change; private
        // locations and unshared keys never meet (§5.3's projection).
        let mut dirty: BTreeSet<LocId> = BTreeSet::new();
        for seg in delta.segments() {
            // Fingerprint prefilter: a segment whose footprint is
            // provably disjoint from the transaction's can never
            // contribute an operation to any cell check (check_loc only
            // folds segments that index a txn-touched location), so it
            // is dismissed in O(1) — and not accumulated, keeping later
            // re-validations over `self.segments` shorter too. False
            // positives merely fall through to the per-location walk.
            if self.prefilter && !txn_fp.may_intersect(seg.fingerprint()) {
                stats.segments_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            stats.segments_scanned.fetch_add(1, Ordering::Relaxed);
            for loc in seg.index().locs.keys() {
                if self.txn.loc(*loc).is_some() {
                    dirty.insert(*loc);
                }
            }
            self.segments.push(Arc::clone(seg));
        }
        for loc in dirty {
            if self.check_loc(loc) {
                self.conflicted = true;
                self.judge
                    .judge_stats()
                    .conflicts
                    .fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn conflicted(&self) -> bool {
        self.conflicted
    }
}

/// Restricts a relational value to the tuples under one key (identity on
/// scalars). Sound for per-key subsequences, whose operations neither
/// read nor write any other key.
fn prune_to_key(value: &Value, key: &janus_relational::Key) -> Value {
    match value {
        Value::Rel(r) => {
            let mut pruned = janus_relational::Relation::empty(r.schema().clone());
            if let Some(t) = r.lookup(key) {
                pruned.insert(t);
            }
            Value::Rel(pruned)
        }
        Value::Scalar(_) => value.clone(),
    }
}

/// Whether the subsequence has an *exposed* read: a read whose footprint
/// is not covered by the subsequence's own earlier writes. A read of a
/// cell the transaction already wrote observes its own buffered value, so
/// — as in write-buffering STMs — it does not enter the read set.
fn has_exposed_read(ops: &[&Op]) -> bool {
    let mut written = janus_relational::CellSet::Empty;
    for op in ops {
        if !op.footprint.read.is_empty() && !op.footprint.read.subset_of(&written) {
            return true;
        }
        written.extend(&op.footprint.write);
    }
    false
}

/// The write-set conflict test for one cell's subsequences, optionally
/// weakened by a relaxation (used both by the baseline detector, with the
/// strict relaxation, and as the cache-miss fallback).
fn write_set_cell(txn: &[&Op], committed: &[&Op], relax: Relaxation) -> bool {
    let t_writes = txn.iter().any(|op| op.is_write());
    let c_writes = committed.iter().any(|op| op.is_write());
    let t_reads = has_exposed_read(txn);
    let c_reads = has_exposed_read(committed);
    let rw = (t_reads && c_writes) || (c_reads && t_writes);
    let ww = t_writes && c_writes;
    (rw && !relax.tolerate_raw) || (ww && !relax.tolerate_waw)
}

/// The standard write-set detector: a conflict is a common location (or
/// key) that one of the histories writes and the other accesses.
///
/// Implemented over the same decomposition machinery as the
/// sequence-based detector — "the write-set-based algorithm is
/// implemented as a subset of its sequence-based counterpart, which
/// cancels out differences due to implementation choices" (§7.1).
#[derive(Debug)]
pub struct WriteSetDetector {
    stats: DetectorStats,
    prefilter: bool,
}

impl Default for WriteSetDetector {
    fn default() -> Self {
        WriteSetDetector {
            stats: DetectorStats::new(),
            prefilter: true,
        }
    }
}

impl WriteSetDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        WriteSetDetector::default()
    }

    /// Enables or disables the footprint-fingerprint prefilter (on by
    /// default).
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }
}

impl CellJudge for WriteSetDetector {
    fn judge_stats(&self) -> &DetectorStats {
        &self.stats
    }

    fn prefilter_enabled(&self) -> bool {
        self.prefilter
    }

    fn judge(
        &self,
        _class: &ClassId,
        _entry: Option<&Value>,
        _cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
    ) -> (bool, CheckReason) {
        let hit = write_set_cell(txn, committed, Relaxation::strict());
        (hit, CheckReason::WritesetOverlap)
    }
}

impl ConflictDetector for WriteSetDetector {
    fn begin_validation_traced<'a>(
        &'a self,
        entry: &'a dyn EntryState,
        txn: &'a CommittedLog,
        obs: Option<&'a RingHandle>,
    ) -> Box<dyn ValidationSession + 'a> {
        open_session(self, entry, txn, obs)
    }

    fn name(&self) -> &'static str {
        "write-set"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

/// The online sequence-based detector: evaluates `SAMEREAD`/`COMMUTE`
/// directly (Figure 8) on every conflict query.
///
/// Exact, but each query costs a full re-evaluation of both subsequences;
/// the paper keeps this mode for completeness and uses the cached
/// detector in production. We benchmark it as ablation D3.
#[derive(Debug)]
pub struct SequenceDetector {
    relax: RelaxationSpec,
    stats: DetectorStats,
    prefilter: bool,
}

impl Default for SequenceDetector {
    fn default() -> Self {
        SequenceDetector::with_relaxations(RelaxationSpec::default())
    }
}

impl SequenceDetector {
    /// Creates the detector with no relaxations.
    pub fn new() -> Self {
        SequenceDetector::default()
    }

    /// Creates the detector with the given relaxation specification.
    pub fn with_relaxations(relax: RelaxationSpec) -> Self {
        SequenceDetector {
            relax,
            stats: DetectorStats::new(),
            prefilter: true,
        }
    }

    /// Enables or disables the footprint-fingerprint prefilter (on by
    /// default).
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }
}

impl CellJudge for SequenceDetector {
    fn judge_stats(&self) -> &DetectorStats {
        &self.stats
    }

    fn prefilter_enabled(&self) -> bool {
        self.prefilter
    }

    fn judge(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
    ) -> (bool, CheckReason) {
        let relax = self.relax.effective(class, txn, committed);
        match entry {
            Some(v) => conflict_cell_attributed(v, cell, txn, committed, relax),
            // No entry value (location unknown to the snapshot):
            // conservatively fall back to the write-set test.
            None => (
                write_set_cell(txn, committed, relax),
                CheckReason::WritesetOverlap,
            ),
        }
    }
}

impl ConflictDetector for SequenceDetector {
    fn begin_validation_traced<'a>(
        &'a self,
        entry: &'a dyn EntryState,
        txn: &'a CommittedLog,
        obs: Option<&'a RingHandle>,
    ) -> Box<dyn ValidationSession + 'a> {
        open_session(self, entry, txn, obs)
    }

    fn name(&self) -> &'static str {
        "sequence-online"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

/// The interface to a commutativity cache populated by offline training
/// (§5.1). `janus-train` provides the implementation.
pub trait SequenceOracle: Send + Sync {
    /// Answers one per-cell conflict query from the cache: `Some(true)` if
    /// the cached condition says the subsequences conflict, `Some(false)`
    /// if it proves they do not, `None` on a cache miss. `relax` is the
    /// effective relaxation for the pair: checks it tolerates must be
    /// skipped.
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool>;
}

impl<T: SequenceOracle + ?Sized> SequenceOracle for std::sync::Arc<T> {
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool> {
        (**self).query(class, entry, cell, txn, committed, relax)
    }
}

/// The production detector: per-cell queries are answered from a trained
/// commutativity cache; misses fall back to the write-set test (§5.1,
/// Figure 6).
pub struct CachedSequenceDetector<O> {
    oracle: O,
    relax: RelaxationSpec,
    stats: DetectorStats,
    faults: Option<std::sync::Arc<janus_fault::FaultPlan>>,
    prefilter: bool,
}

impl<O: SequenceOracle> CachedSequenceDetector<O> {
    /// Creates the detector over a trained oracle.
    pub fn new(oracle: O) -> Self {
        CachedSequenceDetector::with_relaxations(oracle, RelaxationSpec::default())
    }

    /// Creates the detector with relaxations.
    pub fn with_relaxations(oracle: O, relax: RelaxationSpec) -> Self {
        CachedSequenceDetector {
            oracle,
            relax,
            stats: DetectorStats::new(),
            faults: None,
            prefilter: true,
        }
    }

    /// Enables or disables the footprint-fingerprint prefilter (on by
    /// default).
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Attaches a fault plan: [`janus_fault::FaultKind::CacheMiss`]
    /// sites (addressed by [`janus_fault::stable_key`] of the class
    /// label) skip the oracle entirely, forcing the write-set fallback —
    /// a chaos probe for degraded detection. With no plan attached (the
    /// default), the query path pays one branch on `None`.
    pub fn with_faults(mut self, plan: std::sync::Arc<janus_fault::FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

impl<O: SequenceOracle> CellJudge for CachedSequenceDetector<O> {
    fn judge_stats(&self) -> &DetectorStats {
        &self.stats
    }

    fn prefilter_enabled(&self) -> bool {
        self.prefilter
    }

    fn judge(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
    ) -> (bool, CheckReason) {
        let relax = self.relax.effective(class, txn, committed);
        if relax.tolerate_raw && relax.tolerate_waw {
            // Everything the cell check could flag is tolerated.
            return (false, CheckReason::Commute);
        }
        if let Some(plan) = &self.faults {
            // Forced miss: the oracle is never consulted, so the
            // write-set fallback decides — sound (it can only add
            // conflicts), merely less precise.
            if plan.should_inject(
                janus_fault::FaultKind::CacheMiss,
                janus_fault::stable_key(class.label()),
                0,
            ) {
                self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                return (
                    write_set_cell(txn, committed, relax),
                    CheckReason::CacheMiss,
                );
            }
        }
        match self.oracle.query(class, entry, cell, txn, committed, relax) {
            Some(answer) => {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                (answer, CheckReason::Commute)
            }
            None => {
                self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                (
                    write_set_cell(txn, committed, relax),
                    CheckReason::CacheMiss,
                )
            }
        }
    }
}

impl<O: SequenceOracle> ConflictDetector for CachedSequenceDetector<O> {
    fn begin_validation_traced<'a>(
        &'a self,
        entry: &'a dyn EntryState,
        txn: &'a CommittedLog,
        obs: Option<&'a RingHandle>,
    ) -> Box<dyn ValidationSession + 'a> {
        open_session(self, entry, txn, obs)
    }

    fn name(&self) -> &'static str {
        "sequence-cached"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{OpKind, ScalarOp};
    use janus_relational::Scalar;

    fn mk_ops(loc: u64, class: &str, kinds: Vec<OpKind>, entry: &mut MapState) -> Vec<Op> {
        let v = entry.0.entry(LocId(loc)).or_insert_with(|| Value::int(0));
        let mut v = v.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(loc), ClassId::new(class), k, &mut v).0)
            .collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn read() -> OpKind {
        OpKind::Scalar(ScalarOp::Read)
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    #[test]
    fn write_set_flags_identity_sequences() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "work", vec![add(2), add(-2)], &mut s);
        let b = mk_ops(0, "work", vec![add(3), add(-3)], &mut s);
        let ws = WriteSetDetector::new();
        assert!(ws.detect_ops(&s, &a, &b), "write-set is conservative");
        let seq = SequenceDetector::new();
        assert!(
            !seq.detect_ops(&s, &a, &b),
            "sequence detection sees the identity"
        );
    }

    #[test]
    fn validity_empty_history_never_conflicts() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1), read()], &mut s);
        let empty: Vec<Op> = Vec::new();
        for det in [
            &WriteSetDetector::new() as &dyn ConflictDetector,
            &SequenceDetector::new(),
        ] {
            assert!(
                !det.detect_ops(&s, &a, &empty),
                "{} must be valid",
                det.name()
            );
        }
    }

    #[test]
    fn disjoint_locations_never_conflict() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1)], &mut s);
        let b = mk_ops(1, "y", vec![write(2)], &mut s);
        assert!(!WriteSetDetector::new().detect_ops(&s, &a, &b));
        assert!(!SequenceDetector::new().detect_ops(&s, &a, &b));
    }

    #[test]
    fn sequence_conflicts_subset_of_write_set() {
        // Soundness-direction sanity: anything the sequence detector
        // flags, the write-set detector flags too.
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let cases: Vec<(Vec<OpKind>, Vec<OpKind>)> = vec![
            (vec![add(1)], vec![read()]),
            (vec![write(1)], vec![write(2)]),
            (vec![read(), write(1)], vec![write(1)]),
            (vec![add(5), add(-5)], vec![read(), add(2)]),
        ];
        for (ka, kb) in cases {
            let a = mk_ops(0, "x", ka, &mut s);
            let b = mk_ops(0, "x", kb, &mut s);
            let seq_conflict = SequenceDetector::new().detect_ops(&s, &a, &b);
            let ws_conflict = WriteSetDetector::new().detect_ops(&s, &a, &b);
            assert!(
                !seq_conflict || ws_conflict,
                "sequence flagged a conflict write-set missed"
            );
        }
    }

    #[test]
    fn stats_count_queries_and_conflicts() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1)], &mut s);
        let b = mk_ops(0, "x", vec![write(2)], &mut s);
        let det = WriteSetDetector::new();
        det.detect_ops(&s, &a, &b);
        det.detect_ops(&s, &a, &[]);
        let (q, c, _, _) = det.stats().snapshot();
        assert_eq!((q, c), (2, 1));
        assert!(det.stats().ops_scanned() > 0, "cell checks scanned ops");
        det.stats().reset();
        assert_eq!(det.stats().snapshot(), (0, 0, 0, 0));
        assert_eq!(det.stats().ops_scanned(), 0);
    }

    #[test]
    fn session_extends_incrementally_and_sticks() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "x", vec![read(), add(1)], &mut s);
        let ok_seg = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "x",
            vec![add(2), add(-2)],
            &mut s,
        )))];
        let bad_seg = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "x",
            vec![write(9)],
            &mut s,
        )))];
        let txn = CommittedLog::new(a);
        let det = SequenceDetector::new();
        let mut session = det.begin_validation(&s, &txn);
        assert!(!session.extend(&HistoryWindow::empty()));
        // A commuting delta: still no conflict.
        assert!(!session.extend(&HistoryWindow::new(&ok_seg)));
        assert!(!session.conflicted());
        // A conflicting delta (writes under an exposed read): conflict,
        // and the verdict is sticky from then on.
        assert!(session.extend(&HistoryWindow::new(&bad_seg)));
        assert!(session.conflicted());
        assert!(session.extend(&HistoryWindow::empty()), "verdict is sticky");
    }

    #[test]
    fn delta_on_foreign_location_is_not_rescanned() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(7), Value::int(0));
        let a = mk_ops(0, "x", vec![read(), read()], &mut s);
        let seg = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "x",
            vec![read()],
            &mut s,
        )))];
        let foreign = [Arc::new(CommittedLog::new(mk_ops(
            7,
            "y",
            vec![write(3)],
            &mut s,
        )))];
        let txn = CommittedLog::new(a);
        let det = WriteSetDetector::new();
        let mut session = det.begin_validation(&s, &txn);
        assert!(!session.extend(&HistoryWindow::new(&seg)));
        let scanned = det.stats().ops_scanned();
        // Delta touching only a location the transaction never accessed:
        // no cell check runs at all.
        assert!(!session.extend(&HistoryWindow::new(&foreign)));
        assert_eq!(
            det.stats().ops_scanned(),
            scanned,
            "foreign delta must not trigger any scan"
        );
    }

    #[test]
    fn prefilter_skips_disjoint_segments_without_changing_verdicts() {
        let mut s = MapState::default();
        for loc in 0..20 {
            s.0.insert(LocId(loc), Value::int(0));
        }
        let txn = CommittedLog::new(mk_ops(0, "mine", vec![read(), add(1)], &mut s));
        let segs: Vec<Arc<CommittedLog>> = (1..16)
            .map(|loc| {
                Arc::new(CommittedLog::new(mk_ops(
                    loc,
                    &format!("c{loc}"),
                    vec![write(1)],
                    &mut s,
                )))
            })
            .collect();
        let filtered = SequenceDetector::new();
        let unfiltered = SequenceDetector::new().prefilter(false);
        for det in [&filtered, &unfiltered] {
            let mut session = det.begin_validation(&s, &txn);
            assert!(!session.extend(&HistoryWindow::new(&segs)));
        }
        // The filtered detector dismissed every foreign segment in O(1);
        // the unfiltered one admitted them all and found the disjointness
        // the slow way. Identical verdicts either way.
        assert_eq!(
            filtered.stats().segments_scanned() + filtered.stats().segments_skipped(),
            segs.len() as u64
        );
        assert!(
            filtered.stats().segments_skipped() > 0,
            "foreign singleton segments must be fingerprint-skipped"
        );
        assert_eq!(unfiltered.stats().segments_skipped(), 0);
        assert_eq!(unfiltered.stats().segments_scanned(), segs.len() as u64);
        assert_eq!(filtered.stats().ops_scanned(), 0, "no cell overlapped");
        // A genuinely overlapping segment still gets through and
        // conflicts.
        let hot = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "mine",
            vec![write(9)],
            &mut s,
        )))];
        let mut session = filtered.begin_validation(&s, &txn);
        assert!(session.extend(&HistoryWindow::new(&hot)));
    }

    /// A trivial oracle: answers "no conflict" for classes named
    /// "known", misses otherwise.
    struct TestOracle;

    impl SequenceOracle for TestOracle {
        fn query(
            &self,
            class: &ClassId,
            _entry: Option<&Value>,
            _cell: &CellKey,
            _txn: &[&Op],
            _committed: &[&Op],
            _relax: Relaxation,
        ) -> Option<bool> {
            (class.label() == "known").then_some(false)
        }
    }

    #[test]
    fn cached_detector_hits_and_falls_back() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let det = CachedSequenceDetector::new(TestOracle);

        // Known class: cache answers no-conflict even though write-set
        // would flag it.
        let a = mk_ops(0, "known", vec![add(1), add(-1)], &mut s);
        let b = mk_ops(0, "known", vec![add(2), add(-2)], &mut s);
        assert!(!det.detect_ops(&s, &a, &b));

        // Unknown class: miss, write-set fallback flags the conflict.
        let a = mk_ops(1, "unknown", vec![add(1), add(-1)], &mut s);
        let b = mk_ops(1, "unknown", vec![add(2), add(-2)], &mut s);
        assert!(det.detect_ops(&s, &a, &b));

        let (_, _, hits, misses) = det.stats().snapshot();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn forced_cache_miss_skips_the_oracle() {
        use janus_fault::{stable_key, FaultKind, FaultPlan, FaultSite};

        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        // The oracle would answer "no conflict" for "known"; the forced
        // miss makes the write-set fallback flag the overlap instead.
        let plan = std::sync::Arc::new(FaultPlan::from_sites(vec![FaultSite {
            kind: FaultKind::CacheMiss,
            subject: stable_key("known"),
            attempt: 0,
        }]));
        let det = CachedSequenceDetector::new(TestOracle).with_faults(std::sync::Arc::clone(&plan));
        let a = mk_ops(0, "known", vec![add(1), add(-1)], &mut s);
        let b = mk_ops(0, "known", vec![add(2), add(-2)], &mut s);
        assert!(det.detect_ops(&s, &a, &b), "fallback flags the overlap");
        let (_, _, hits, misses) = det.stats().snapshot();
        assert_eq!((hits, misses), (0, 1), "the oracle was never consulted");
        assert_eq!(plan.stats().injected_of(FaultKind::CacheMiss), 1);
    }

    #[test]
    fn conflicts_are_attributed_to_classes() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let ws = WriteSetDetector::new();
        let a0 = mk_ops(0, "hot", vec![write(1)], &mut s);
        let b0 = mk_ops(0, "hot", vec![write(2)], &mut s);
        let a1 = mk_ops(1, "cold", vec![read()], &mut s);
        let b1 = mk_ops(1, "cold", vec![read()], &mut s);
        // Conflict on "hot" twice, never on "cold".
        ws.detect_ops(&s, &a0, &b0);
        ws.detect_ops(&s, &a0, &b0);
        let mut both_a = a1.clone();
        both_a.extend(a0.clone());
        let _ = ws.detect_ops(&s, &both_a, &b1); // cold-only overlap: no conflict
        let by_class = ws.stats().conflicts_by_class();
        assert_eq!(by_class.len(), 1);
        assert_eq!(by_class[0].0.label(), "hot");
        assert_eq!(by_class[0].1, 2);
        ws.stats().reset();
        assert!(ws.stats().conflicts_by_class().is_empty());
    }

    #[test]
    fn fully_relaxed_class_skips_cells() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let mut relax = RelaxationSpec::new();
        relax.relax(
            ClassId::new("scratch"),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true,
            },
        );
        let det = CachedSequenceDetector::with_relaxations(TestOracle, relax);
        let a = mk_ops(0, "scratch", vec![write(1), read()], &mut s);
        let b = mk_ops(0, "scratch", vec![write(2), read()], &mut s);
        assert!(!det.detect_ops(&s, &a, &b));
        let (_, _, hits, misses) = det.stats().snapshot();
        assert_eq!(
            (hits, misses),
            (0, 0),
            "relaxed cells never reach the oracle"
        );
    }

    #[test]
    fn traced_session_records_per_cell_checks() {
        use janus_obs::Recorder;

        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "hot", vec![read(), add(1)], &mut s);
        let ok_seg = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "hot",
            vec![add(2), add(-2)],
            &mut s,
        )))];
        let bad_seg = [Arc::new(CommittedLog::new(mk_ops(
            0,
            "hot",
            vec![write(9)],
            &mut s,
        )))];
        let txn = CommittedLog::new(a);
        let det = SequenceDetector::new();
        let rec = Recorder::new();
        {
            let h = rec.register("w0");
            let mut session = det.begin_validation_traced(&s, &txn, Some(&h));
            assert!(!session.extend(&HistoryWindow::new(&ok_seg)));
            assert!(session.extend(&HistoryWindow::new(&bad_seg)));
        }
        let trace = rec.finish();
        assert_eq!(trace.count("per_cell_check"), 2);
        assert_eq!(trace.conflict_checks(), 1);
        assert_eq!(det.stats().cells_checked(), 2, "events match the counter");
        let reasons: Vec<CheckReason> = trace
            .events()
            .filter_map(|e| match &e.kind {
                EventKind::PerCellCheck { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec![CheckReason::Commute, CheckReason::SameRead]);
    }

    #[test]
    fn ooo_inference_admits_shared_as_local_in_cached_fallback() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let relax = RelaxationSpec::new().with_ooo_inference();
        let det = CachedSequenceDetector::with_relaxations(TestOracle, relax);
        let a = mk_ops(0, "ctx.file", vec![write(1), read()], &mut s);
        let b = mk_ops(0, "ctx.file", vec![write(2), read()], &mut s);
        assert!(
            !det.detect_ops(&s, &a, &b),
            "covered-read WAW chain tolerated out of order"
        );
    }
}
