//! The conflict-detector implementations: write-set baseline, online
//! sequence-based detection, and cached sequence-based detection with
//! write-set fallback.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use janus_log::{decompose, CellKey, ClassId, LocId, Op};
use janus_relational::Value;

use crate::projection::conflict_cell;
use crate::{Relaxation, RelaxationSpec};

/// Read access to a transaction's entry state (`t.SharedSnapshot` in
/// Figure 7): the value each shared location had when the transaction
/// began. Conflict queries are evaluated in this state (`G` in Figure 8).
pub trait EntryState {
    /// The value of `loc` in the entry state, if the location exists.
    fn value_of(&self, loc: LocId) -> Option<Value>;
}

/// A simple map-backed [`EntryState`], convenient for tests and offline
/// (training-time) evaluation.
#[derive(Debug, Clone, Default)]
pub struct MapState(pub BTreeMap<LocId, Value>);

impl EntryState for MapState {
    fn value_of(&self, loc: LocId) -> Option<Value> {
        self.0.get(&loc).cloned()
    }
}

/// Counters describing a detector's activity. All counters are monotone
/// and thread-safe; they are shared by reference with the runtime's
/// statistics reporting.
#[derive(Debug, Default)]
pub struct DetectorStats {
    /// `DETECTCONFLICTS` invocations.
    pub queries: AtomicU64,
    /// Queries that reported a conflict.
    pub conflicts: AtomicU64,
    /// Per-cell queries answered by the commutativity cache.
    pub cache_hits: AtomicU64,
    /// Per-cell queries that missed the cache and fell back to the
    /// write-set test.
    pub cache_misses: AtomicU64,
    /// Conflicting cells attributed to the class of their location —
    /// the data behind "which data structure serializes this benchmark"
    /// discussions (§7.2).
    by_class: std::sync::Mutex<BTreeMap<ClassId, u64>>,
}

impl DetectorStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        DetectorStats::default()
    }

    /// Snapshot of (queries, conflicts, hits, misses).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.conflicts.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.conflicts.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.by_class.lock().expect("stats mutex").clear();
    }

    /// Attributes one conflicting cell to a location class.
    pub fn record_class_conflict(&self, class: &ClassId) {
        *self
            .by_class
            .lock()
            .expect("stats mutex")
            .entry(class.clone())
            .or_insert(0) += 1;
    }

    /// Conflicting cells per class, most conflicted first.
    pub fn conflicts_by_class(&self) -> Vec<(ClassId, u64)> {
        let mut v: Vec<(ClassId, u64)> = self
            .by_class
            .lock()
            .expect("stats mutex")
            .iter()
            .map(|(c, n)| (c.clone(), *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// A conflict-detection algorithm, pluggable into the Figure 7 protocol.
///
/// A detector is *sound* if it never misses a real non-commutativity and
/// *valid* if it reports no conflict for an empty conflict history
/// (Theorem 4.1's requirements).
pub trait ConflictDetector: Send + Sync {
    /// `DETECTCONFLICTS(t.SharedSnapshot, t.Log, ops_c)`: whether the
    /// transaction's operations conflict with the committed operations.
    fn detect(&self, entry: &dyn EntryState, txn: &[Op], committed: &[Op]) -> bool;

    /// A short human-readable name ("write-set", "sequence", ...).
    fn name(&self) -> &'static str;

    /// The detector's activity counters.
    fn stats(&self) -> &DetectorStats;
}

/// Iterates the common cells of the two decomposed histories, calling
/// `per_cell` for each; returns `true` as soon as any cell conflicts.
///
/// The iteration embodies §5.3's projection: private locations — those
/// appearing in only one history — are safely ignored, and within a
/// relational object only overlapping keys meet (unless whole-object
/// accesses force object granularity).
fn detect_common_cells(
    entry: &dyn EntryState,
    txn: &[Op],
    committed: &[Op],
    mut per_cell: impl FnMut(&ClassId, Option<&Value>, &CellKey, &[&Op], &[&Op]) -> bool,
) -> bool {
    let dt = decompose(txn.iter());
    let dc = decompose(committed.iter());
    for (loc, ht) in &dt {
        let Some(hc) = dc.get(loc) else { continue };
        let entry_value = entry.value_of(*loc);
        if ht.has_whole || hc.has_whole {
            let cell = CellKey::Whole;
            if per_cell(&ht.class, entry_value.as_ref(), &cell, &ht.ops, &hc.ops) {
                return true;
            }
        } else {
            for (key, t_ops) in &ht.per_key {
                let Some(c_ops) = hc.per_key.get(key) else {
                    continue;
                };
                let cell = CellKey::Key(key.clone());
                // The subsequences of a per-key cell only touch that key,
                // so sequence evaluation may run against a relation pruned
                // to the key — avoiding whole-object clones per replay.
                let pruned = entry_value.as_ref().map(|v| prune_to_key(v, key));
                if per_cell(&ht.class, pruned.as_ref(), &cell, t_ops, c_ops) {
                    return true;
                }
            }
        }
    }
    false
}

/// Restricts a relational value to the tuples under one key (identity on
/// scalars). Sound for per-key subsequences, whose operations neither
/// read nor write any other key.
fn prune_to_key(value: &Value, key: &janus_relational::Key) -> Value {
    match value {
        Value::Rel(r) => {
            let mut pruned = janus_relational::Relation::empty(r.schema().clone());
            if let Some(t) = r.lookup(key) {
                pruned.insert(t);
            }
            Value::Rel(pruned)
        }
        Value::Scalar(_) => value.clone(),
    }
}

/// Whether the subsequence has an *exposed* read: a read whose footprint
/// is not covered by the subsequence's own earlier writes. A read of a
/// cell the transaction already wrote observes its own buffered value, so
/// — as in write-buffering STMs — it does not enter the read set.
fn has_exposed_read(ops: &[&Op]) -> bool {
    let mut written = janus_relational::CellSet::Empty;
    for op in ops {
        if !op.footprint.read.is_empty() && !op.footprint.read.subset_of(&written) {
            return true;
        }
        written.extend(&op.footprint.write);
    }
    false
}

/// The write-set conflict test for one cell's subsequences, optionally
/// weakened by a relaxation (used both by the baseline detector, with the
/// strict relaxation, and as the cache-miss fallback).
fn write_set_cell(txn: &[&Op], committed: &[&Op], relax: Relaxation) -> bool {
    let t_writes = txn.iter().any(|op| op.is_write());
    let c_writes = committed.iter().any(|op| op.is_write());
    let t_reads = has_exposed_read(txn);
    let c_reads = has_exposed_read(committed);
    let rw = (t_reads && c_writes) || (c_reads && t_writes);
    let ww = t_writes && c_writes;
    (rw && !relax.tolerate_raw) || (ww && !relax.tolerate_waw)
}

/// The standard write-set detector: a conflict is a common location (or
/// key) that one of the histories writes and the other accesses.
///
/// Implemented over the same decomposition machinery as the
/// sequence-based detector — "the write-set-based algorithm is
/// implemented as a subset of its sequence-based counterpart, which
/// cancels out differences due to implementation choices" (§7.1).
#[derive(Debug, Default)]
pub struct WriteSetDetector {
    stats: DetectorStats,
}

impl WriteSetDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        WriteSetDetector::default()
    }
}

impl ConflictDetector for WriteSetDetector {
    fn detect(&self, entry: &dyn EntryState, txn: &[Op], committed: &[Op]) -> bool {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let conflict = detect_common_cells(entry, txn, committed, |class, _, _, t, c| {
            let hit = write_set_cell(t, c, Relaxation::strict());
            if hit {
                self.stats.record_class_conflict(class);
            }
            hit
        });
        if conflict {
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
        }
        conflict
    }

    fn name(&self) -> &'static str {
        "write-set"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

/// The online sequence-based detector: evaluates `SAMEREAD`/`COMMUTE`
/// directly (Figure 8) on every conflict query.
///
/// Exact, but each query costs a full re-evaluation of both subsequences;
/// the paper keeps this mode for completeness and uses the cached
/// detector in production. We benchmark it as ablation D3.
#[derive(Debug, Default)]
pub struct SequenceDetector {
    relax: RelaxationSpec,
    stats: DetectorStats,
}

impl SequenceDetector {
    /// Creates the detector with no relaxations.
    pub fn new() -> Self {
        SequenceDetector::default()
    }

    /// Creates the detector with the given relaxation specification.
    pub fn with_relaxations(relax: RelaxationSpec) -> Self {
        SequenceDetector {
            relax,
            stats: DetectorStats::new(),
        }
    }
}

impl ConflictDetector for SequenceDetector {
    fn detect(&self, entry: &dyn EntryState, txn: &[Op], committed: &[Op]) -> bool {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let conflict = detect_common_cells(entry, txn, committed, |class, value, cell, t, c| {
            let relax = self.relax.effective(class, t, c);
            let hit = match value {
                Some(v) => conflict_cell(v, cell, t, c, relax),
                // No entry value (location unknown to the snapshot):
                // conservatively fall back to the write-set test.
                None => write_set_cell(t, c, relax),
            };
            if hit {
                self.stats.record_class_conflict(class);
            }
            hit
        });
        if conflict {
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
        }
        conflict
    }

    fn name(&self) -> &'static str {
        "sequence-online"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

/// The interface to a commutativity cache populated by offline training
/// (§5.1). `janus-train` provides the implementation.
pub trait SequenceOracle: Send + Sync {
    /// Answers one per-cell conflict query from the cache: `Some(true)` if
    /// the cached condition says the subsequences conflict, `Some(false)`
    /// if it proves they do not, `None` on a cache miss. `relax` is the
    /// effective relaxation for the pair: checks it tolerates must be
    /// skipped.
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool>;
}

impl<T: SequenceOracle + ?Sized> SequenceOracle for std::sync::Arc<T> {
    fn query(
        &self,
        class: &ClassId,
        entry: Option<&Value>,
        cell: &CellKey,
        txn: &[&Op],
        committed: &[&Op],
        relax: Relaxation,
    ) -> Option<bool> {
        (**self).query(class, entry, cell, txn, committed, relax)
    }
}

/// The production detector: per-cell queries are answered from a trained
/// commutativity cache; misses fall back to the write-set test (§5.1,
/// Figure 6).
pub struct CachedSequenceDetector<O> {
    oracle: O,
    relax: RelaxationSpec,
    stats: DetectorStats,
}

impl<O: SequenceOracle> CachedSequenceDetector<O> {
    /// Creates the detector over a trained oracle.
    pub fn new(oracle: O) -> Self {
        CachedSequenceDetector {
            oracle,
            relax: RelaxationSpec::default(),
            stats: DetectorStats::new(),
        }
    }

    /// Creates the detector with relaxations.
    pub fn with_relaxations(oracle: O, relax: RelaxationSpec) -> Self {
        CachedSequenceDetector {
            oracle,
            relax,
            stats: DetectorStats::new(),
        }
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

impl<O: SequenceOracle> ConflictDetector for CachedSequenceDetector<O> {
    fn detect(&self, entry: &dyn EntryState, txn: &[Op], committed: &[Op]) -> bool {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let conflict = detect_common_cells(entry, txn, committed, |class, value, cell, t, c| {
            let relax = self.relax.effective(class, t, c);
            if relax.tolerate_raw && relax.tolerate_waw {
                // Everything the cell check could flag is tolerated.
                return false;
            }
            let hit = match self.oracle.query(class, value, cell, t, c, relax) {
                Some(answer) => {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    answer
                }
                None => {
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    write_set_cell(t, c, relax)
                }
            };
            if hit {
                self.stats.record_class_conflict(class);
            }
            hit
        });
        if conflict {
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
        }
        conflict
    }

    fn name(&self) -> &'static str {
        "sequence-cached"
    }

    fn stats(&self) -> &DetectorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_log::{OpKind, ScalarOp};
    use janus_relational::Scalar;

    fn mk_ops(loc: u64, class: &str, kinds: Vec<OpKind>, entry: &mut MapState) -> Vec<Op> {
        let v = entry
            .0
            .entry(LocId(loc))
            .or_insert_with(|| Value::int(0));
        let mut v = v.clone();
        kinds
            .into_iter()
            .map(|k| Op::execute(LocId(loc), ClassId::new(class), k, &mut v).0)
            .collect()
    }

    fn add(d: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Add(d))
    }

    fn read() -> OpKind {
        OpKind::Scalar(ScalarOp::Read)
    }

    fn write(v: i64) -> OpKind {
        OpKind::Scalar(ScalarOp::Write(Scalar::Int(v)))
    }

    #[test]
    fn write_set_flags_identity_sequences() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "work", vec![add(2), add(-2)], &mut s);
        let b = mk_ops(0, "work", vec![add(3), add(-3)], &mut s);
        let ws = WriteSetDetector::new();
        assert!(ws.detect(&s, &a, &b), "write-set is conservative");
        let seq = SequenceDetector::new();
        assert!(!seq.detect(&s, &a, &b), "sequence detection sees the identity");
    }

    #[test]
    fn validity_empty_history_never_conflicts() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1), read()], &mut s);
        let empty: Vec<Op> = Vec::new();
        for det in [&WriteSetDetector::new() as &dyn ConflictDetector, &SequenceDetector::new()]
        {
            assert!(!det.detect(&s, &a, &empty), "{} must be valid", det.name());
        }
    }

    #[test]
    fn disjoint_locations_never_conflict() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1)], &mut s);
        let b = mk_ops(1, "y", vec![write(2)], &mut s);
        assert!(!WriteSetDetector::new().detect(&s, &a, &b));
        assert!(!SequenceDetector::new().detect(&s, &a, &b));
    }

    #[test]
    fn sequence_conflicts_subset_of_write_set() {
        // Soundness-direction sanity: anything the sequence detector
        // flags, the write-set detector flags too.
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let cases: Vec<(Vec<OpKind>, Vec<OpKind>)> = vec![
            (vec![add(1)], vec![read()]),
            (vec![write(1)], vec![write(2)]),
            (vec![read(), write(1)], vec![write(1)]),
            (vec![add(5), add(-5)], vec![read(), add(2)]),
        ];
        for (ka, kb) in cases {
            let a = mk_ops(0, "x", ka, &mut s);
            let b = mk_ops(0, "x", kb, &mut s);
            let seq_conflict = SequenceDetector::new().detect(&s, &a, &b);
            let ws_conflict = WriteSetDetector::new().detect(&s, &a, &b);
            assert!(
                !seq_conflict || ws_conflict,
                "sequence flagged a conflict write-set missed"
            );
        }
    }

    #[test]
    fn stats_count_queries_and_conflicts() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let a = mk_ops(0, "x", vec![write(1)], &mut s);
        let b = mk_ops(0, "x", vec![write(2)], &mut s);
        let det = WriteSetDetector::new();
        det.detect(&s, &a, &b);
        det.detect(&s, &a, &[]);
        let (q, c, _, _) = det.stats().snapshot();
        assert_eq!((q, c), (2, 1));
        det.stats().reset();
        assert_eq!(det.stats().snapshot(), (0, 0, 0, 0));
    }

    /// A trivial oracle: answers "no conflict" for classes named
    /// "known", misses otherwise.
    struct TestOracle;

    impl SequenceOracle for TestOracle {
        fn query(
            &self,
            class: &ClassId,
            _entry: Option<&Value>,
            _cell: &CellKey,
            _txn: &[&Op],
            _committed: &[&Op],
            _relax: Relaxation,
        ) -> Option<bool> {
            (class.label() == "known").then_some(false)
        }
    }

    #[test]
    fn cached_detector_hits_and_falls_back() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let det = CachedSequenceDetector::new(TestOracle);

        // Known class: cache answers no-conflict even though write-set
        // would flag it.
        let a = mk_ops(0, "known", vec![add(1), add(-1)], &mut s);
        let b = mk_ops(0, "known", vec![add(2), add(-2)], &mut s);
        assert!(!det.detect(&s, &a, &b));

        // Unknown class: miss, write-set fallback flags the conflict.
        let a = mk_ops(1, "unknown", vec![add(1), add(-1)], &mut s);
        let b = mk_ops(1, "unknown", vec![add(2), add(-2)], &mut s);
        assert!(det.detect(&s, &a, &b));

        let (_, _, hits, misses) = det.stats().snapshot();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn conflicts_are_attributed_to_classes() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        s.0.insert(LocId(1), Value::int(0));
        let ws = WriteSetDetector::new();
        let a0 = mk_ops(0, "hot", vec![write(1)], &mut s);
        let b0 = mk_ops(0, "hot", vec![write(2)], &mut s);
        let a1 = mk_ops(1, "cold", vec![read()], &mut s);
        let b1 = mk_ops(1, "cold", vec![read()], &mut s);
        // Conflict on "hot" twice, never on "cold".
        ws.detect(&s, &a0, &b0);
        ws.detect(&s, &a0, &b0);
        let mut both_a = a1.clone();
        both_a.extend(a0.clone());
        let _ = ws.detect(&s, &both_a, &b1); // cold-only overlap: no conflict
        let by_class = ws.stats().conflicts_by_class();
        assert_eq!(by_class.len(), 1);
        assert_eq!(by_class[0].0.label(), "hot");
        assert_eq!(by_class[0].1, 2);
        ws.stats().reset();
        assert!(ws.stats().conflicts_by_class().is_empty());
    }

    #[test]
    fn fully_relaxed_class_skips_cells() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let mut relax = RelaxationSpec::new();
        relax.relax(
            ClassId::new("scratch"),
            Relaxation {
                tolerate_raw: true,
                tolerate_waw: true,
            },
        );
        let det = CachedSequenceDetector::with_relaxations(TestOracle, relax);
        let a = mk_ops(0, "scratch", vec![write(1), read()], &mut s);
        let b = mk_ops(0, "scratch", vec![write(2), read()], &mut s);
        assert!(!det.detect(&s, &a, &b));
        let (_, _, hits, misses) = det.stats().snapshot();
        assert_eq!((hits, misses), (0, 0), "relaxed cells never reach the oracle");
    }

    #[test]
    fn ooo_inference_admits_shared_as_local_in_cached_fallback() {
        let mut s = MapState::default();
        s.0.insert(LocId(0), Value::int(0));
        let relax = RelaxationSpec::new().with_ooo_inference();
        let det = CachedSequenceDetector::with_relaxations(TestOracle, relax);
        let a = mk_ops(0, "ctx.file", vec![write(1), read()], &mut s);
        let b = mk_ops(0, "ctx.file", vec![write(2), read()], &mut s);
        assert!(
            !det.detect(&s, &a, &b),
            "covered-read WAW chain tolerated out of order"
        );
    }
}
